"""Setup shim for legacy editable installs in offline environments.

The environment has no network access and no ``wheel`` package, so
PEP 517 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` with this shim works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Can You See Me Now?' (IMC 2021): a "
        "videoconferencing measurement harness and campaign engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
