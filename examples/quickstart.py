#!/usr/bin/env python3
"""Quickstart: measure streaming lag on one platform, like Section 4.2.

Deploys the paper's seven US VMs, creates a Zoom session hosted in
US-east broadcasting the blank-screen/periodic-flash feed, and prints
per-receiver streaming lag and endpoint RTTs -- the raw material of
Figures 4 and 8.

Run:  python examples/quickstart.py [zoom|webex|meet]
"""

import sys

from repro import SessionConfig, Testbed
from repro.core.lag import lag_statistics_ms
from repro.media.frames import FrameSpec


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "zoom"

    testbed = Testbed()
    testbed.deploy_group("US")
    names = testbed.registry.vm_names("US")
    host = "US-East"

    config = SessionConfig(
        duration_s=20.0,
        feed="flash",              # the Section 4.2 lag probe feed
        pad_fraction=0.0,
        content_spec=FrameSpec(160, 120, 15),
        probes=True,
        probe_count=15,
        probe_interval_s=1.0,
        gop_size=600,
    )

    print(f"Running one {platform} session, host={host}, N={len(names)} ...")
    artifacts = testbed.run_session(platform, names, host, config)

    print(f"\n{'receiver':12s} {'median lag':>11s} {'p90 lag':>9s} "
          f"{'RTT':>7s}  endpoint")
    for receiver in names:
        if receiver == host:
            continue
        stats = lag_statistics_ms(artifacts.lag_measurements(receiver))
        rtt = artifacts.mean_rtt_ms(receiver)
        endpoints = sorted(str(e) for e in
                           artifacts.discovered_endpoints(receiver))
        print(f"{receiver:12s} {stats['median']:9.1f}ms {stats['p90']:7.1f}ms "
              f"{rtt:5.1f}ms  {', '.join(endpoints)}")

    print("\nCompare with the paper: US lag 20-50 ms (Zoom), "
          "10-70 ms (Webex), 40-70 ms (Meet); Fig. 4 and Fig. 8.")


if __name__ == "__main__":
    main()
