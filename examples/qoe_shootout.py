#!/usr/bin/env python3
"""QoE shootout: the Section 4.3 protocol across all three platforms.

A US-east host broadcasts the padded low- and high-motion feeds to two
receivers; each receiver desktop-records the stream, the recordings are
cropped/resized/aligned, and PSNR/SSIM/VIFp are computed against the
injected video -- exactly the Figure 12 pipeline, at laptop scale.

Run:  python examples/qoe_shootout.py
"""

from repro import SessionConfig, Testbed
from repro.analysis.tables import TextTable
from repro.core.postprocess import score_recorded_video
from repro.media.frames import FrameSpec


def main() -> None:
    testbed = Testbed()
    for name in ("US-East", "US-East2", "US-West"):
        testbed.add_vm(name)
    names = ["US-East", "US-East2", "US-West"]

    table = TextTable(
        ["Platform", "Motion", "PSNR", "SSIM", "VIFp", "Down Mbps"]
    )
    for platform in ("zoom", "webex", "meet"):
        for motion in ("low", "high"):
            config = SessionConfig(
                duration_s=10.0,
                feed=motion,
                pad_fraction=0.15,        # the Fig. 13 padding
                content_spec=FrameSpec(160, 120, 15),
                probes=False,
                record_video=True,
                gop_size=30,
            )
            artifacts = testbed.run_session(platform, names, "US-East", config)
            report = score_recorded_video(
                artifacts.padded_feed,
                artifacts.recorders["US-West"].frames,
                max_frames=60,
            )
            rates = artifacts.rate_summary()
            table.add_row(
                [
                    platform,
                    motion,
                    f"{report.mean_psnr:.1f}",
                    f"{report.mean_ssim:.3f}",
                    f"{report.mean_vifp:.3f}",
                    f"{rates.mean_download_bps / 1e6:.2f}",
                ]
            )
            print(f"scored {platform}/{motion}")

    print()
    print(table.render())
    print(
        "\nPaper shapes to look for (Figs. 12, 15): every platform loses"
        "\nsignificant quality on the high-motion feed; Webex streams at"
        "\nthe highest rate; Zoom delivers its QoE at the lowest rate."
    )


if __name__ == "__main__":
    main()
