#!/usr/bin/env python3
"""Infrastructure mapping: where does each platform relay from?

Reproduces the Section 4.2 black-box methodology end to end: run
repeated sessions from both continents, let each client's monitor
discover its streaming endpoints from traffic, probe them for RTTs,
and infer the platforms' geographic footprints -- the evidence behind
Findings 1-2 and Figure 3.

Run:  python examples/infrastructure_map.py
"""

import numpy as np

from repro.analysis.tables import TextTable
from repro.experiments.endpoint_study import p2p_check, run_endpoint_study
from repro.experiments.lag_study import run_lag_scenario
from repro.experiments.scale import ExperimentScale
from repro.media.frames import FrameSpec

SCALE = ExperimentScale(
    sessions=3,
    lag_session_duration_s=10.0,
    content_spec=FrameSpec(128, 96, 12),
    probe_count=8,
)


def classify_rtt(rtt_ms: float, continent: str) -> str:
    """Rough location inference from an RTT, like the paper's analysis."""
    if continent == "Europe":
        if rtt_ms < 25:
            return "in-continent"
        if rtt_ms < 120:
            return "trans-Atlantic (US-east?)"
        return "US-central/west"
    return "near" if rtt_ms < 25 else "cross-country"


def main() -> None:
    print("Churn study: distinct endpoints per client over "
          f"{2 * SCALE.sessions} sessions")
    churn = TextTable(["Platform", "Endpoints/client", "Ports",
                       "Architecture"])
    for platform in ("zoom", "webex", "meet"):
        result = run_endpoint_study(
            platform, scale=SCALE, sessions=2 * SCALE.sessions
        )
        per_session = result.endpoints_per_session()
        architecture = (
            "single relay/session" if max(per_session) == 1
            else "per-client endpoints"
        )
        churn.add_row(
            [platform, f"{result.mean_endpoints_per_client():.1f}",
             sorted(result.ports), architecture]
        )
    print(churn.render())
    print(f"\nZoom two-party peer-to-peer mode: "
          f"{'confirmed' if p2p_check(scale=SCALE) else 'NOT observed'}")

    print("\nFootprint inference from endpoint RTTs (host CH, EU clients):")
    table = TextTable(["Platform", "Client", "RTT (ms)", "Inferred relay"])
    for platform in ("zoom", "webex", "meet"):
        result = run_lag_scenario(platform, "CH", "Europe", scale=SCALE)
        for client in sorted(result.rtts_ms):
            rtt = float(np.nanmean(result.rtts_ms[client]))
            table.add_row(
                [platform, client, f"{rtt:.1f}", classify_rtt(rtt, "Europe")]
            )
    print(table.render())
    print(
        "\nPaper's conclusions (Finding-2): Zoom and Webex are US-based"
        "\n(European RTTs at or above trans-Atlantic), with Zoom load-"
        "\nbalancing across multiple US sites; Meet's endpoints are"
        "\nin-continent, which is why its European lag is the lowest."
    )


if __name__ == "__main__":
    main()
