#!/usr/bin/env python3
"""Time-varying network conditions: the dynamics engine end to end.

Scripts two condition timelines on a receiving client -- a bandwidth
step-down/step-up ramp and a WiFi->LTE handover with a mid-session
outage -- and reports video QoE, download rate, freeze fraction and
shaper drops *per timeline phase*, so adaptation and recovery are
visible instead of averaged away.

Run:  python examples/dynamic_conditions.py
"""

from repro.analysis.tables import TextTable
from repro.experiments.dynamics_study import run_dynamics_cell
from repro.experiments.scale import ExperimentScale
from repro.media.frames import FrameSpec

SCALE = ExperimentScale(
    sessions=1,
    qoe_session_duration_s=20.0,
    content_spec=FrameSpec(160, 120, 15),
)


def main() -> None:
    for scenario in ("ramp", "handover"):
        table = TextTable(
            ["Phase", "PSNR (dB)", "SSIM", "Down (Mbps)", "Freeze", "Drops"]
        )
        cell = run_dynamics_cell("zoom", scenario, scale=SCALE)
        for report in cell.phases:
            table.add_row([
                report.name,
                f"{report.psnr_mean:.1f}",
                f"{report.ssim_mean:.3f}",
                f"{report.download_mbps:.2f}",
                f"{report.freeze_fraction:.2f}",
                report.shaper_dropped,
            ])
        print(f"\nzoom, {scenario} scenario (per timeline phase):")
        print(table.render())
    print(
        "\nExpected shapes: QoE collapses and freezes spike at the 250 Kbps"
        "\nfloor of the ramp, then recover on the way back up; the handover"
        "\noutage starves the download entirely for its ~300 ms, and the LTE"
        "\nregime settles lower than WiFi."
    )


if __name__ == "__main__":
    main()
