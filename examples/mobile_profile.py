#!/usr/bin/env python3
"""Mobile resource profiling: the Section 5 Android testbed.

A cloud host streams to a Samsung S10 and J3 behind residential WiFi;
the harness samples CPU every three seconds, meters the J3's battery,
and measures per-device data rates across the paper's UI scenarios
(full screen / gallery / camera on / screen off) -- Figure 19.

Run:  python examples/mobile_profile.py
"""

from repro.analysis.tables import TextTable
from repro.experiments.mobile_study import MOBILE_SCENARIOS, run_mobile_scenario
from repro.experiments.scale import ExperimentScale
from repro.media.frames import FrameSpec


def main() -> None:
    scale = ExperimentScale(
        sessions=1,
        qoe_session_duration_s=20.0,
        content_spec=FrameSpec(160, 120, 15),
    )

    table = TextTable(
        ["Platform", "Scenario", "S10 CPU%", "S10 Mbps",
         "J3 CPU%", "J3 Mbps", "J3 battery/h"]
    )
    for platform in ("zoom", "webex", "meet"):
        for scenario in MOBILE_SCENARIOS:
            result = run_mobile_scenario(platform, scenario, scale=scale)
            s10 = result.readings["S10"]
            j3 = result.readings["J3"]
            # Scale the measured discharge to a one-hour call.
            hourly = j3.discharge_mah * 3600.0 / scale.qoe_session_duration_s
            drain = hourly / 2600.0
            table.add_row(
                [
                    platform,
                    scenario,
                    f"{s10.median_cpu_pct:.0f}",
                    f"{s10.mean_rate_mbps:.2f}",
                    f"{j3.median_cpu_pct:.0f}",
                    f"{j3.mean_rate_mbps:.2f}",
                    f"{drain:.0%}",
                ]
            )
            print(f"profiled {platform}/{scenario}")

    print()
    print(table.render())
    print(
        "\nPaper shapes (Fig. 19): 2-3 cores in use everywhere; Meet is the"
        "\nmost bandwidth-hungry; gallery view halves Zoom's CPU and rate;"
        "\nscreen-off saves up to half the battery, except Webex's CPU"
        "\nstays ~125%. A one-hour camera-on call drains ~40% of the J3."
    )


if __name__ == "__main__":
    main()
