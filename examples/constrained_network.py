#!/usr/bin/env python3
"""Streaming under bandwidth constraints: the Section 4.4 experiment.

Applies tc/ifb-style ingress caps (250 Kbps - 1 Mbps) to a receiving
client, streams high-motion video plus speech audio through each
platform, and reports video PSNR and audio MOS-LQO -- Figures 17-18.

Run:  python examples/constrained_network.py
"""

from repro import SessionConfig, Testbed
from repro.analysis.tables import TextTable
from repro.core.postprocess import score_recorded_audio, score_recorded_video
from repro.media.frames import FrameSpec
from repro.units import kbps, mbps

CAPS = [kbps(250), kbps(500), mbps(1), None]
CAPPED = "US-East2"


def label(cap):
    if cap is None:
        return "Infinite"
    return f"{cap / 1e3:.0f}Kbps" if cap < 1e6 else f"{cap / 1e6:.0f}Mbps"


def main() -> None:
    video = TextTable(["Platform"] + [label(c) for c in CAPS])
    audio = TextTable(["Platform"] + [label(c) for c in CAPS])

    for platform in ("zoom", "webex", "meet"):
        testbed = Testbed()
        for name in ("US-East", CAPPED, "US-Central"):
            testbed.add_vm(name)
        names = ["US-East", CAPPED, "US-Central"]
        psnr_row, mos_row = [platform], [platform]
        for cap in CAPS:
            testbed.apply_bandwidth_cap(CAPPED, cap)
            config = SessionConfig(
                duration_s=20.0,
                feed="high",
                pad_fraction=0.15,
                audio=True,
                content_spec=FrameSpec(160, 120, 15),
                probes=False,
                record_video=True,
                record_audio=True,
                gop_size=30,
            )
            artifacts = testbed.run_session(platform, names, "US-East", config)
            report = score_recorded_video(
                artifacts.padded_feed,
                artifacts.recorders[CAPPED].frames,
                skip_leading=150,      # score the adapted steady state
                compute_vifp=False,
                max_frames=60,
            )
            flow = artifacts.wiring.audio_flow("US-East")
            mos = score_recorded_audio(
                artifacts.audio_source.read_duration(0, config.duration_s),
                artifacts.recorded_audio(CAPPED, flow),
            )
            psnr_row.append(f"{report.mean_psnr:.1f}")
            mos_row.append(f"{mos:.2f}")
            print(f"{platform} @ {label(cap)}: PSNR {report.mean_psnr:.1f}, "
                  f"MOS {mos:.2f}")
            testbed.apply_bandwidth_cap(CAPPED, None)
        video.add_row(psnr_row)
        audio.add_row(mos_row)

    print("\nVideo PSNR under download rate limits (Fig. 17):")
    print(video.render())
    print("\nAudio MOS-LQO under download rate limits (Fig. 18):")
    print(audio.render())
    print(
        "\nPaper shapes: Webex video stalls/disappears at <= 1 Mbps and its"
        "\naudio deteriorates below 500 Kbps; Zoom and Meet adapt, keeping"
        "\naudio MOS virtually constant."
    )


if __name__ == "__main__":
    main()
