"""Media senders: pacing, simulcast, adaptation plumbing."""

import pytest

from repro.clients.streamer import (
    AudioStreamer,
    ModelVideoStreamer,
    VideoStreamer,
)
from repro.errors import SessionError
from repro.media.audio import SpeechLikeSource
from repro.media.audio_codec import AudioCodecConfig
from repro.media.feeds import LowMotionFeed
from repro.media.frames import FrameSpec
from repro.net.capture import Direction
from repro.net.packet import PacketKind
from repro.platforms.base import ClientBinding, StreamLayer, ViewContext
from repro.platforms.ratecontrol import RateContext

SPEC = FrameSpec(64, 48, 10)


@pytest.fixture
def wired(testbed):
    """Three wired clients: one gallery receiver forces simulcast."""
    host = testbed.add_vm("US-East")
    gallery = testbed.add_vm("US-East2")
    gallery.view = ViewContext(view_mode="gallery")
    full = testbed.add_vm("US-West")
    platform = testbed.platform("zoom")
    bindings = [
        ClientBinding(c.name, c.host, 40404) for c in (host, gallery, full)
    ]
    context = RateContext(num_participants=3)
    views = {c.name: c.view for c in (host, gallery, full)}
    wiring = platform.create_session(bindings, "US-East", context, views)
    return testbed, platform, wiring, host, gallery, full, context


class TestVideoStreamer:
    def test_requires_camera(self, wired):
        testbed, platform, wiring, host, *_rest, context = wired
        with pytest.raises(SessionError):
            VideoStreamer(host, wiring, platform, context, SPEC)

    def test_encodes_all_subscribed_layers(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        # The gallery receiver subscribes LOW, the fullscreen one HIGH.
        assert streamer.layers == {StreamLayer.HIGH, StreamLayer.LOW}

    def test_streams_frames_at_fps(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        streamer.start(duration_s=2.0)
        testbed.network.simulator.run()
        assert 18 <= streamer.frames_sent <= 21

    def test_tick_count_exact_over_long_sessions(self, wired):
        # Absolute-time tick scheduling: no accumulated float drift, so
        # a 60 s stream at 10 fps sends exactly 600 frames.
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        streamer.start(duration_s=60.0)
        testbed.network.simulator.run()
        assert streamer.frames_sent == 600

    def test_receivers_get_their_layer(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        gallery_capture = gallery.start_capture()
        full_capture = full.start_capture()
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        streamer.start(duration_s=1.5)
        testbed.network.simulator.run()
        gallery_flows = {
            r.flow_id
            for r in gallery_capture.filter(direction=Direction.IN,
                                            kind=PacketKind.MEDIA_VIDEO)
        }
        full_flows = {
            r.flow_id
            for r in full_capture.filter(direction=Direction.IN,
                                         kind=PacketKind.MEDIA_VIDEO)
        }
        assert wiring.video_flow("US-East", StreamLayer.LOW) in gallery_flows
        assert wiring.video_flow("US-East", StreamLayer.HIGH) in full_flows
        assert wiring.video_flow("US-East", StreamLayer.HIGH) not in gallery_flows

    def test_positive_duration_required(self, wired):
        testbed, platform, wiring, host, *_rest, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        with pytest.raises(SessionError):
            streamer.start(duration_s=0)

    def test_current_target_tracks_rate_state(self, wired):
        testbed, platform, wiring, host, *_rest, context = wired
        host.attach_camera(LowMotionFeed(SPEC))
        streamer = VideoStreamer(host, wiring, platform, context, SPEC)
        assert streamer.current_target_bps == streamer.rate_state.current_bps


class TestModelVideoStreamer:
    def test_rate_close_to_target(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        capture = full.start_capture()
        streamer = ModelVideoStreamer(host, wiring, platform, context, SPEC)
        streamer.start(duration_s=4.0)
        testbed.network.simulator.run()
        rate = capture.payload_rate_bps(Direction.IN,
                                        kind=PacketKind.MEDIA_VIDEO)
        target = platform.video_rates(context)[StreamLayer.HIGH]
        assert 0.6 * target < rate < 1.8 * target

    def test_no_decodable_payload(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        received = []
        full.receiver.on_media = lambda p: received.append(p)  # spy
        streamer = ModelVideoStreamer(host, wiring, platform, context, SPEC)
        streamer.start(duration_s=0.5)
        testbed.network.simulator.run()
        assert received
        assert all(p.payload is None for p in received)


class TestAudioStreamer:
    def test_requires_microphone(self, wired):
        testbed, platform, wiring, host, *_ = wired
        with pytest.raises(SessionError):
            AudioStreamer(host, wiring, AudioCodecConfig())

    def test_fifty_frames_per_second(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_microphone(SpeechLikeSource())
        streamer = AudioStreamer(
            host, wiring, AudioCodecConfig(bitrate_bps=45_000)
        )
        streamer.start(duration_s=2.0)
        testbed.network.simulator.run()
        assert 95 <= streamer.frames_sent <= 105

    def test_audio_rate_matches_platform(self, wired):
        testbed, platform, wiring, host, gallery, full, context = wired
        host.attach_microphone(SpeechLikeSource())
        capture = full.start_capture()
        streamer = AudioStreamer(
            host, wiring, AudioCodecConfig(bitrate_bps=45_000)
        )
        streamer.start(duration_s=3.0)
        testbed.network.simulator.run()
        rate = capture.payload_rate_bps(Direction.IN,
                                        kind=PacketKind.MEDIA_AUDIO)
        assert 0.6 * 45_000 < rate < 1.5 * 45_000
