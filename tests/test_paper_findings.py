"""Integration tests asserting the paper's headline findings.

Each test runs a scaled-down version of the corresponding experiment
and checks the *shape* of the result -- who wins, in which direction,
roughly by how much -- mirroring Findings 1-5 and the per-figure
observations of Sections 4-5.  These are the reproduction's acceptance
tests.
"""

import numpy as np
import pytest

from repro.core.postprocess import score_recorded_video
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.experiments.endpoint_study import p2p_check, run_endpoint_study
from repro.experiments.lag_study import run_lag_scenario
from repro.experiments.mobile_study import run_mobile_scenario
from repro.experiments.scale import ExperimentScale
from repro.media.frames import FrameSpec

TINY = ExperimentScale(
    sessions=2,
    lag_session_duration_s=10.0,
    qoe_session_duration_s=6.0,
    content_spec=FrameSpec(96, 72, 10),
    probe_count=6,
    score_frames=20,
)


@pytest.fixture(scope="module")
def us_lag():
    return {
        platform: run_lag_scenario(platform, "US-East", "US", scale=TINY)
        for platform in ("zoom", "webex", "meet")
    }


@pytest.fixture(scope="module")
def eu_lag():
    return {
        platform: run_lag_scenario(platform, "CH", "Europe", scale=TINY)
        for platform in ("zoom", "webex", "meet")
    }


class TestFinding1UsLag:
    """US lag 20-50 ms (Zoom), 10-70 ms (Webex), 40-70 ms (Meet)."""

    def test_zoom_band(self, us_lag):
        lo, hi = us_lag["zoom"].lag_range_ms()
        assert 5 <= lo <= 40
        assert 25 <= hi <= 70

    def test_webex_band(self, us_lag):
        lo, hi = us_lag["webex"].lag_range_ms()
        assert 5 <= lo <= 40
        assert 25 <= hi <= 80

    def test_meet_band_highest(self, us_lag):
        lo, hi = us_lag["meet"].lag_range_ms()
        assert lo >= 25
        assert hi <= 110

    def test_lag_tracks_distance_from_host(self, us_lag):
        for platform in ("zoom", "webex"):
            result = us_lag[platform]
            east = result.median_lag_ms("US-East2")
            west = result.median_lag_ms("US-West")
            assert west > east + 10  # ~30 ms geography (Fig. 4)

    def test_meet_lowest_rtt_but_worst_lag(self, us_lag):
        """The Section 4.2.1 paradox."""
        meet_rtt = np.mean(
            [np.mean(v) for v in us_lag["meet"].rtts_ms.values()]
        )
        zoom_rtt = np.mean(
            [np.mean(v) for v in us_lag["zoom"].rtts_ms.values()]
        )
        assert meet_rtt < zoom_rtt
        meet_lag = np.mean(
            [np.median(v) for v in us_lag["meet"].lags_ms.values()]
        )
        zoom_lag = np.mean(
            [np.median(v) for v in us_lag["zoom"].lags_ms.values()]
        )
        assert meet_lag > zoom_lag


class TestWebexDetour:
    """Fig. 5b: US-west sessions detour via US-east on Webex."""

    def test_west_west_worse_than_west_east(self):
        result = run_lag_scenario("webex", "US-West", "US", scale=TINY)
        west_peer = result.median_lag_ms("US-West2")
        east_peer = result.median_lag_ms("US-East")
        assert west_peer > east_peer + 10


class TestFinding2EuropeLag:
    """EU lag: Zoom 90-150, Webex 75-90(+), Meet 30-40(+) ms."""

    def test_zoom_europe_high(self, eu_lag):
        lo, hi = eu_lag["zoom"].lag_range_ms()
        assert lo >= 80
        assert hi <= 170

    def test_webex_europe_transatlantic(self, eu_lag):
        lo, hi = eu_lag["webex"].lag_range_ms()
        assert 70 <= lo
        assert hi <= 125

    def test_meet_europe_low(self, eu_lag):
        lo, hi = eu_lag["meet"].lag_range_ms()
        assert lo <= 60
        assert hi <= 90

    def test_meet_beats_others_in_europe(self, eu_lag):
        meet_hi = eu_lag["meet"].lag_range_ms()[1]
        zoom_lo = eu_lag["zoom"].lag_range_ms()[0]
        webex_lo = eu_lag["webex"].lag_range_ms()[0]
        assert meet_hi < zoom_lo
        assert meet_hi < webex_lo

    def test_webex_eu_rtts_transatlantic(self, eu_lag):
        rtts = [np.mean(v) for v in eu_lag["webex"].rtts_ms.values()]
        assert all(70 <= r <= 120 for r in rtts)

    def test_meet_eu_rtts_local(self, eu_lag):
        rtts = [np.mean(v) for v in eu_lag["meet"].rtts_ms.values()]
        assert all(r <= 25 for r in rtts)


class TestEndpointArchitecture:
    """Fig. 3 and the 20 / 19.5 / 1.8 endpoint churn."""

    def test_zoom_fresh_endpoint_every_session(self):
        result = run_endpoint_study("zoom", sessions=6, scale=TINY)
        assert result.mean_endpoints_per_client() == pytest.approx(6.0)

    def test_webex_occasionally_reuses(self):
        result = run_endpoint_study("webex", sessions=8, scale=TINY)
        assert 6.0 <= result.mean_endpoints_per_client() <= 8.0

    def test_meet_sticks_to_few_endpoints(self):
        result = run_endpoint_study("meet", sessions=8, scale=TINY)
        assert result.mean_endpoints_per_client() <= 2.5

    def test_single_vs_distributed_relay(self):
        zoom = run_endpoint_study("zoom", sessions=2, scale=TINY)
        meet = run_endpoint_study("meet", sessions=2, scale=TINY)
        assert all(n == 1 for n in zoom.endpoints_per_session())
        assert all(n > 1 for n in meet.endpoints_per_session())

    def test_zoom_p2p_two_party(self):
        assert p2p_check(scale=TINY)


class TestFinding3MotionQoe:
    """High-motion feeds lose significant quality at equal rates."""

    @pytest.fixture(scope="class")
    def qoe(self):
        testbed = Testbed(TestbedConfig(seed=5))
        for name in ("US-East", "US-East2", "US-West"):
            testbed.add_vm(name)
        names = ["US-East", "US-East2", "US-West"]
        out = {}
        for feed in ("low", "high"):
            config = SessionConfig(
                duration_s=6.0,
                feed=feed,
                pad_fraction=0.15,
                content_spec=FrameSpec(96, 72, 10),
                probes=False,
                record_video=True,
                gop_size=30,
            )
            artifacts = testbed.run_session("zoom", names, "US-East", config)
            report = score_recorded_video(
                artifacts.padded_feed,
                artifacts.recorders["US-West"].frames,
                compute_vifp=True,
                max_frames=20,
            )
            out[feed] = report
        return out

    def test_psnr_degrades(self, qoe):
        assert qoe["low"].mean_psnr > qoe["high"].mean_psnr + 3

    def test_ssim_degrades(self, qoe):
        assert qoe["low"].mean_ssim > qoe["high"].mean_ssim + 0.03

    def test_vifp_degrades(self, qoe):
        assert qoe["low"].mean_vifp > qoe["high"].mean_vifp + 0.05


class TestFinding4Rates:
    """Webex highest multi-user rate; Meet most dynamic; Meet N=2 boost."""

    @pytest.fixture(scope="class")
    def rates(self):
        testbed = Testbed(TestbedConfig(seed=6))
        for name in ("US-East", "US-East2", "US-West", "US-West2"):
            testbed.add_vm(name)
        names4 = ["US-East", "US-East2", "US-West", "US-West2"]
        out = {}
        for platform in ("zoom", "webex", "meet"):
            config = SessionConfig(
                duration_s=5.0,
                feed="high",
                pad_fraction=0.15,
                content_spec=FrameSpec(96, 72, 10),
                probes=False,
                gop_size=30,
            )
            artifacts = testbed.run_session(platform, names4, "US-East", config)
            out[platform] = artifacts.rate_summary().mean_download_bps
        return out

    def test_webex_highest_multiuser(self, rates):
        assert rates["webex"] > rates["zoom"]
        assert rates["webex"] > rates["meet"]

    def test_rates_in_paper_range(self, rates):
        assert 0.4e6 < rates["zoom"] < 1.3e6
        assert 1.2e6 < rates["webex"] < 2.6e6
        assert 0.3e6 < rates["meet"] < 1.2e6

    def test_meet_two_party_much_higher(self):
        testbed = Testbed(TestbedConfig(seed=7))
        testbed.add_vm("US-East")
        testbed.add_vm("US-West")
        config = SessionConfig(
            duration_s=5.0,
            feed="low",
            pad_fraction=0.15,
            content_spec=FrameSpec(96, 72, 10),
            probes=False,
            gop_size=30,
        )
        artifacts = testbed.run_session(
            "meet", ["US-East", "US-West"], "US-East", config
        )
        two_party = artifacts.rate_summary().mean_download_bps
        assert two_party > 1.0e6  # vs 0.4-0.6 Mbps multi-party


class TestFinding5Mobile:
    """2-3 cores; Meet most bandwidth-hungry; screen-off savings."""

    @pytest.fixture(scope="class")
    def mobile(self):
        scale = ExperimentScale(
            sessions=1, qoe_session_duration_s=10.0,
            content_spec=FrameSpec(96, 72, 10),
        )
        out = {}
        for platform in ("zoom", "webex", "meet"):
            for scenario in ("LM", "LM-View", "LM-Off"):
                out[(platform, scenario)] = run_mobile_scenario(
                    platform, scenario, scale=scale
                )
        return out

    def test_two_to_three_cores(self, mobile):
        for platform in ("zoom", "webex", "meet"):
            cpu = mobile[(platform, "LM")].readings["J3"].median_cpu_pct
            assert 130 <= cpu <= 300

    def test_meet_most_bandwidth_hungry(self, mobile):
        meet = mobile[("meet", "LM")].readings["S10"].mean_rate_mbps
        zoom = mobile[("zoom", "LM")].readings["S10"].mean_rate_mbps
        assert meet > 1.5 * zoom

    def test_zoom_gallery_halves_cpu(self, mobile):
        full = mobile[("zoom", "LM")].readings["S10"].median_cpu_pct
        gallery = mobile[("zoom", "LM-View")].readings["S10"].median_cpu_pct
        assert gallery < 0.75 * full

    def test_screen_off_saves_battery(self, mobile):
        for platform in ("zoom", "meet"):
            on = mobile[(platform, "LM")].readings["J3"].discharge_mah
            off = mobile[(platform, "LM-Off")].readings["J3"].discharge_mah
            assert off < 0.6 * on

    def test_webex_screen_off_cpu_anomaly(self, mobile):
        webex = mobile[("webex", "LM-Off")].readings["S10"].median_cpu_pct
        zoom = mobile[("zoom", "LM-Off")].readings["S10"].median_cpu_pct
        assert webex > zoom + 50
