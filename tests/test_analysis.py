"""CDFs, stats, tables and ASCII figures."""

import numpy as np
import pytest

from repro.analysis.cdf import Cdf, cdf_table
from repro.analysis.figures import ascii_bar_chart, ascii_cdf
from repro.analysis.stats import describe, percentile, relative_change
from repro.analysis.tables import TextTable, format_ms, format_rate_mbps
from repro.errors import AnalysisError


class TestCdf:
    def test_from_samples_sorted(self):
        cdf = Cdf.from_samples([3, 1, 2])
        assert list(cdf.values) == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            Cdf.from_samples([])

    def test_evaluate(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.evaluate(2) == pytest.approx(0.5)
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(10) == 1.0

    def test_median(self):
        assert Cdf.from_samples([1, 2, 3]).median == 2

    def test_quantile_bounds(self):
        cdf = Cdf.from_samples([1, 2])
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_points_monotonic(self):
        cdf = Cdf.from_samples(np.random.default_rng(0).normal(size=500))
        points = cdf.points(max_points=50)
        assert len(points) == 50
        ys = [y for _, y in points]
        assert ys == sorted(ys)

    def test_cdf_table(self):
        table = cdf_table({"a": [1, 2, 3], "b": [10, 20, 30]})
        assert table["a"][0.5] == 2
        assert table["b"][0.5] == 20


class TestStats:
    def test_describe_keys(self):
        stats = describe([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["count"] == 3

    def test_describe_empty(self):
        with pytest.raises(AnalysisError):
            describe([])

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)

    def test_percentile_bounds(self):
        with pytest.raises(AnalysisError):
            percentile([1], 150)

    def test_relative_change(self):
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)

    def test_relative_change_zero_base(self):
        with pytest.raises(AnalysisError):
            relative_change(0.0, 1.0)


class TestTables:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer", 22])
        rendered = table.render()
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_row_width_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(AnalysisError):
            table.add_row(["only-one"])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            TextTable([])

    def test_format_rate(self):
        assert format_rate_mbps(2_500_000) == "2.50"

    def test_format_ms(self):
        assert format_ms(0.0425) == "42.5"


class TestAsciiFigures:
    def test_cdf_render(self):
        text = ascii_cdf({"US-East": [10, 20, 30], "US-West": [40, 50, 60]})
        assert "US-East" in text
        assert "*" in text

    def test_cdf_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_cdf({})

    def test_bar_chart_render(self):
        text = ascii_bar_chart({"zoom": 0.7, "webex": 1.8, "meet": 0.5})
        lines = text.splitlines()
        assert len(lines) == 3
        webex_line = next(l for l in lines if l.startswith("webex"))
        zoom_line = next(l for l in lines if l.startswith("zoom"))
        assert webex_line.count("#") > zoom_line.count("#")

    def test_bar_chart_zero_values(self):
        text = ascii_bar_chart({"a": 0.0})
        assert "0.00" in text
