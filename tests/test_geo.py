"""Geography and the latency model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.net.geo import GeoPoint, LatencyModel, great_circle_km


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_km(10, 20, 10, 20) == 0.0

    def test_symmetric(self):
        a = great_circle_km(40.7, -74.0, 51.5, -0.1)
        b = great_circle_km(51.5, -0.1, 40.7, -74.0)
        assert a == pytest.approx(b)

    def test_new_york_to_london(self):
        # Known geodesic: about 5570 km.
        distance = great_circle_km(40.71, -74.01, 51.51, -0.13)
        assert 5500 < distance < 5620

    def test_antipodal_is_half_circumference(self):
        distance = great_circle_km(0, 0, 0, 180)
        assert distance == pytest.approx(math.pi * 6371.0, rel=1e-6)

    def test_quarter_circle_along_equator(self):
        distance = great_circle_km(0, 0, 0, 90)
        assert distance == pytest.approx(math.pi * 6371.0 / 2, rel=1e-6)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint("x", 45.0, -120.0)
        assert p.lat == 45.0

    def test_latitude_bounds(self):
        with pytest.raises(ConfigurationError):
            GeoPoint("bad", 91.0, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ConfigurationError):
            GeoPoint("bad", 0.0, 181.0)

    def test_distance_method(self):
        a = GeoPoint("a", 0, 0)
        b = GeoPoint("b", 0, 1)
        assert a.distance_km(b) == pytest.approx(111.19, rel=0.01)


class TestLatencyModel:
    def test_colocated_delay_is_overhead_bounded(self):
        model = LatencyModel()
        a = GeoPoint("a", 40.0, -74.0)
        delay = model.one_way_delay_s(a, a)
        assert delay == pytest.approx(
            max(model.min_delay_s, model.processing_overhead_s)
        )

    def test_us_coast_to_coast_rtt(self):
        # Calibration anchor: ~55-70 ms coast to coast.
        model = LatencyModel()
        east = GeoPoint("e", 37.54, -77.44)
        west = GeoPoint("w", 37.77, -122.42)
        rtt_ms = model.rtt_s(east, west) * 1e3
        assert 50 <= rtt_ms <= 70

    def test_transatlantic_rtt(self):
        # Calibration anchor: ~72-95 ms London <-> Virginia.
        model = LatencyModel()
        london = GeoPoint("l", 51.51, -0.13)
        virginia = GeoPoint("v", 37.54, -77.44)
        rtt_ms = model.rtt_s(london, virginia) * 1e3
        assert 70 <= rtt_ms <= 95

    def test_inflation_decays_with_distance(self):
        model = LatencyModel()
        assert model.route_inflation(100) > model.route_inflation(5000)

    def test_inflation_never_below_base(self):
        model = LatencyModel()
        assert model.route_inflation(1e6) >= model.inflation_base

    def test_delay_monotonic_in_distance(self):
        model = LatencyModel()
        origin = GeoPoint("o", 0, 0)
        previous = 0.0
        for lon in (1, 5, 15, 40, 90):
            delay = model.one_way_delay_s(origin, GeoPoint("p", 0, lon))
            assert delay > previous
            previous = delay

    def test_rtt_is_twice_one_way(self):
        model = LatencyModel()
        a = GeoPoint("a", 10, 10)
        b = GeoPoint("b", 20, 20)
        assert model.rtt_s(a, b) == pytest.approx(2 * model.one_way_delay_s(a, b))

    def test_jitter_scale_positive_for_separated_points(self):
        model = LatencyModel()
        a = GeoPoint("a", 10, 10)
        b = GeoPoint("b", 20, 20)
        assert model.jitter_scale_s(a, b) > 0

    def test_rejects_bad_inflation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(inflation_base=0.9)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(processing_overhead_s=-1.0)
