"""Reference-window indexing of the video post-processing pipeline.

Guards the ``ref_start = max(0, skip_leading - max_shift)`` clamp in
:func:`repro.core.postprocess.align_recorded_video`: recordings whose
true start offset sits at or beyond ``skip_leading`` must align
exactly, so an undegraded recording scores as identical frames.
"""

import numpy as np
import pytest

from repro.core.postprocess import (
    align_recorded_video,
    prepare_recorded_frames,
    recording_prefix_frames,
    score_recorded_video,
)
from repro.errors import AnalysisError
from repro.media.feeds import HighMotionFeed
from repro.media.frames import FrameSpec
from repro.media.padding import PaddedSource
from repro.media.sync import PROBE_FRAMES
from repro.qoe.psnr import PSNR_CAP_DB


@pytest.fixture
def padded_feed():
    return PaddedSource(HighMotionFeed(FrameSpec(64, 48, 10)), 0.15)


def record_from(padded_feed, start, count):
    """An undegraded desktop recording starting at feed frame ``start``."""
    return padded_feed.frames(count, start=start)


class TestReferenceWindowIndexing:
    @pytest.mark.parametrize("start_offset", [0, 2, 4, 6])
    def test_recovers_shifts_at_and_beyond_skip_leading(
        self, padded_feed, start_offset
    ):
        # The recorder starts ``start_offset`` feed frames late; after
        # skip_leading the recording is a clean copy of the feed, so a
        # correct alignment yields bit-identical scored pairs.
        recorded = record_from(padded_feed, start_offset, 30)
        report = score_recorded_video(
            padded_feed,
            recorded,
            skip_leading=2,
            max_shift=8,
            compute_vifp=False,
        )
        assert report.frame_count > 0
        assert report.mean_psnr == PSNR_CAP_DB
        assert report.mean_ssim == pytest.approx(1.0)

    def test_clamped_window_when_max_shift_below_skip(self, padded_feed):
        # skip_leading > max_shift exercises the ref_start clamp arm
        # where the window starts inside the feed, not at zero.
        recorded = record_from(padded_feed, 0, 30)
        report = score_recorded_video(
            padded_feed,
            recorded,
            skip_leading=5,
            max_shift=3,
            compute_vifp=False,
        )
        assert report.mean_psnr == PSNR_CAP_DB

    def test_max_frames_cap_matches_uncapped_prefix(self, padded_feed):
        recorded = record_from(padded_feed, 1, 40)
        capped = score_recorded_video(
            padded_feed, recorded, max_shift=6, max_frames=10,
            compute_vifp=False,
        )
        uncapped = score_recorded_video(
            padded_feed, recorded, max_shift=6, compute_vifp=False,
        )
        assert capped.frame_count == 10
        assert capped.psnr_series == uncapped.psnr_series[:10]
        assert capped.ssim_series == uncapped.ssim_series[:10]


class TestAlignRecordedVideo:
    def test_shared_reference_matches_self_generated(self, padded_feed):
        recorded = record_from(padded_feed, 3, 30)
        ref_a, rec_a = align_recorded_video(padded_feed, recorded, max_shift=8)
        window = padded_feed.content.frames(60)
        ref_b, rec_b = align_recorded_video(
            padded_feed, recorded, max_shift=8, reference=np.asarray(window)
        )
        assert np.array_equal(ref_a, ref_b)
        assert np.array_equal(rec_a, rec_b)

    def test_short_shared_reference_rejected(self, padded_feed):
        recorded = record_from(padded_feed, 0, 30)
        with pytest.raises(AnalysisError):
            align_recorded_video(
                padded_feed,
                recorded,
                max_shift=8,
                reference=np.asarray(padded_feed.content.frames(5)),
            )

    def test_too_short_recording_rejected(self, padded_feed):
        with pytest.raises(AnalysisError):
            align_recorded_video(
                padded_feed, record_from(padded_feed, 0, 2), skip_leading=2
            )


class TestPrepareRecordedFrames:
    def test_returns_content_shaped_stack(self, padded_feed):
        recorded = record_from(padded_feed, 0, 4)
        prepared = prepare_recorded_frames(padded_feed, recorded)
        assert prepared.shape == (4,) + padded_feed.content.spec.shape
        # Undegraded padded frames crop back to the exact content.
        assert np.array_equal(prepared[0], padded_feed.content.frame(0))

    def test_empty_rejected(self, padded_feed):
        with pytest.raises(AnalysisError):
            prepare_recorded_frames(padded_feed, [])

    def test_ragged_rejected(self, padded_feed):
        with pytest.raises(AnalysisError):
            prepare_recorded_frames(
                padded_feed, [np.zeros((8, 8)), np.zeros((9, 9))]
            )


class TestRecordingPrefix:
    def test_uncapped_is_none(self):
        assert recording_prefix_frames(max_frames=None) is None

    def test_capped_covers_probe_window_and_shift(self):
        prefix = recording_prefix_frames(
            skip_leading=2, max_shift=8, max_frames=10
        )
        assert prefix == 2 + 8 + PROBE_FRAMES + 10

    def test_prefix_is_sufficient(self, padded_feed):
        # Scoring the prefix must equal scoring the full recording.
        recorded = record_from(padded_feed, 1, 60)
        prefix = recording_prefix_frames(
            skip_leading=2, max_shift=6, max_frames=12
        )
        full = score_recorded_video(
            padded_feed, recorded, max_shift=6, max_frames=12,
            compute_vifp=False,
        )
        head = score_recorded_video(
            padded_feed, recorded[:prefix], max_shift=6, max_frames=12,
            compute_vifp=False,
        )
        assert head.psnr_series == full.psnr_series
        assert head.ssim_series == full.ssim_series