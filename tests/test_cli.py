"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lag_defaults(self):
        args = build_parser().parse_args(["lag"])
        assert args.platform == "zoom"
        assert args.group == "US"

    def test_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lag", "--platform", "skype"])


class TestCommands:
    FAST = ["--sessions", "1", "--duration", "6", "--probes", "3"]

    def test_lag_command(self, capsys):
        assert main(["lag", "--platform", "webex"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "median-lag band" in out
        assert "US-West" in out

    def test_endpoints_command(self, capsys):
        assert main(["endpoints", "--platform", "meet"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "19305" in out

    def test_qoe_command(self, capsys):
        assert main(
            ["qoe", "--platform", "zoom", "--motion", "low", "-n", "2",
             "--no-vifp"] + self.FAST
        ) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert "Download" in out

    def test_mobile_command(self, capsys):
        assert main(
            ["mobile", "--platform", "zoom", "--scenario", "LM-Off"]
            + self.FAST
        ) == 0
        out = capsys.readouterr().out
        assert "J3" in out and "S10" in out
