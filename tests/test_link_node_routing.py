"""Access links, hosts and the network fabric."""

import pytest

from repro.errors import ConfigurationError, RoutingError, SimulationError
from repro.net.capture import Direction
from repro.net.link import AccessLink
from repro.net.packet import Packet, PacketKind
from repro.net.routing import Network
from repro.units import mbps, ms


class TestAccessLink:
    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            AccessLink(uplink_bps=0)

    def test_uplink_serialisation(self):
        link = AccessLink(uplink_bps=mbps(1), downlink_bps=mbps(1))
        departure = link.reserve_uplink(0.0, 1250)
        assert departure == pytest.approx(0.01)

    def test_uplink_queueing(self):
        link = AccessLink(uplink_bps=mbps(1), downlink_bps=mbps(1))
        first = link.reserve_uplink(0.0, 1250)
        second = link.reserve_uplink(0.0, 1250)
        assert second == pytest.approx(first + 0.01)

    def test_backlog_reported(self):
        link = AccessLink(uplink_bps=mbps(1), downlink_bps=mbps(1))
        link.reserve_uplink(0.0, 12_500)
        assert link.uplink_backlog(0.0) == pytest.approx(0.1)

    def test_set_ingress_cap_and_remove(self):
        link = AccessLink()
        link.set_ingress_cap(mbps(1))
        assert link.ingress_shaper is not None
        link.set_ingress_cap(None)
        assert link.ingress_shaper is None


class TestHostSockets:
    def test_double_bind_rejected(self, network, registry):
        host = network.add_host("h", registry.get("US-East").location)
        host.bind(5000, lambda p, h: None)
        with pytest.raises(ConfigurationError):
            host.bind(5000, lambda p, h: None)

    def test_unbind_then_rebind(self, network, registry):
        host = network.add_host("h", registry.get("US-East").location)
        host.bind(5000, lambda p, h: None)
        host.unbind(5000)
        host.bind(5000, lambda p, h: None)
        assert host.is_bound(5000)

    def test_ephemeral_bind(self, network, registry):
        host = network.add_host("h", registry.get("US-East").location)
        address = host.bind_ephemeral(lambda p, h: None)
        assert address.port >= 49152

    def test_cannot_spoof_source(self, us_pair):
        east, west = us_pair
        packet = Packet(
            src=west.address(1), dst=east.address(2), payload_bytes=10
        )
        with pytest.raises(SimulationError):
            east.send(packet)


class TestDelivery:
    def test_end_to_end_delivery(self, network, us_pair):
        east, west = us_pair
        got = []
        west.bind(5000, lambda p, h: got.append(p))
        east.bind(6000, lambda p, h: None)
        east.send(Packet(src=east.address(6000), dst=west.address(5000),
                         payload_bytes=500))
        network.simulator.run()
        assert len(got) == 1

    def test_delivery_time_close_to_nominal(self, network, us_pair):
        east, west = us_pair
        times = []
        west.bind(5000, lambda p, h: times.append(network.simulator.now))
        east.bind(6000, lambda p, h: None)
        east.send(Packet(src=east.address(6000), dst=west.address(5000),
                         payload_bytes=500))
        network.simulator.run()
        nominal = network.one_way_delay(east, west)
        assert nominal <= times[0] <= nominal * 1.8

    def test_unbound_port_counts_unhandled(self, network, us_pair):
        east, west = us_pair
        east.bind(6000, lambda p, h: None)
        east.send(Packet(src=east.address(6000), dst=west.address(5000),
                         payload_bytes=10))
        network.simulator.run()
        assert west.packets_unhandled == 1

    def test_unknown_destination_raises(self, network, us_pair):
        east, _ = us_pair
        east.bind(6000, lambda p, h: None)
        packet = Packet(
            src=east.address(6000),
            dst=east.address(6000).with_port(1),
            payload_bytes=10,
        )
        packet.dst = type(packet.dst)("10.99.99.99", 1)
        with pytest.raises(RoutingError):
            east.send(packet)

    def test_capture_sees_both_directions(self, network, us_pair):
        east, west = us_pair
        east_capture = east.start_capture()
        west_capture = west.start_capture()
        west.bind(5000, lambda p, h: None)
        east.bind(6000, lambda p, h: None)
        east.send(Packet(src=east.address(6000), dst=west.address(5000),
                         payload_bytes=10))
        network.simulator.run()
        assert len(east_capture.filter(direction=Direction.OUT)) == 1
        assert len(west_capture.filter(direction=Direction.IN)) == 1

    def test_receiver_timestamp_after_sender(self, network, us_pair):
        east, west = us_pair
        east_capture = east.start_capture()
        west_capture = west.start_capture()
        west.bind(5000, lambda p, h: None)
        east.bind(6000, lambda p, h: None)
        east.send(Packet(src=east.address(6000), dst=west.address(5000),
                         payload_bytes=10))
        network.simulator.run()
        sent = east_capture.filter(direction=Direction.OUT)[0].timestamp
        received = west_capture.filter(direction=Direction.IN)[0].timestamp
        assert received > sent


class TestNetworkTopology:
    def test_duplicate_host_name(self, network, registry):
        network.add_host("h", registry.get("US-East").location)
        with pytest.raises(ConfigurationError):
            network.add_host("h", registry.get("US-West").location)

    def test_lookup_by_name_and_ip(self, network, registry):
        host = network.add_host("h", registry.get("US-East").location)
        assert network.host_by_name("h") is host
        assert network.host_by_ip(host.ip) is host

    def test_unknown_lookups_raise(self, network):
        with pytest.raises(RoutingError):
            network.host_by_name("ghost")
        with pytest.raises(RoutingError):
            network.host_by_ip("1.2.3.4")

    def test_loss_rate_validated(self):
        with pytest.raises(ConfigurationError):
            Network(base_loss_rate=1.5)

    def test_lossy_network_drops(self, registry):
        network = Network(base_loss_rate=0.5)
        east = network.add_host("e", registry.get("US-East").location)
        west = network.add_host("w", registry.get("US-West").location)
        got = []
        west.bind(5000, lambda p, h: got.append(p))
        east.bind(6000, lambda p, h: None)
        for _ in range(200):
            east.send(Packet(src=east.address(6000),
                             dst=west.address(5000), payload_bytes=10))
        network.simulator.run()
        assert 40 < len(got) < 160
        assert network.packets_lost == 200 - len(got)

    def test_ingress_shaper_drops_counted(self, network, us_pair):
        east, west = us_pair
        west.link.set_ingress_cap(mbps(0.1), max_queue_delay_s=ms(1))
        west.bind(5000, lambda p, h: None)
        east.bind(6000, lambda p, h: None)
        for _ in range(100):
            east.send(Packet(src=east.address(6000), dst=west.address(5000),
                             payload_bytes=1200))
        network.simulator.run()
        assert network.packets_shaper_dropped > 0

    def test_nominal_rtt_symmetric(self, network, us_pair):
        east, west = us_pair
        assert network.nominal_rtt(east, west) == pytest.approx(
            network.nominal_rtt(west, east)
        )
