"""Markdown report assembly."""

import pytest

from repro.analysis.report import ExperimentReport
from repro.errors import AnalysisError


class TestReport:
    def test_requires_title(self):
        with pytest.raises(AnalysisError):
            ExperimentReport("")

    def test_table_section(self):
        report = ExperimentReport("Repro run")
        report.add_table(
            "Figure X", ["Platform", "Lag"], [["zoom", 30], ["meet", 55]],
            notes=["bench scale"],
        )
        rendered = report.render()
        assert "# Repro run" in rendered
        assert "## Figure X" in rendered
        assert "zoom" in rendered
        assert "- bench scale" in rendered

    def test_cdf_summary_section(self):
        report = ExperimentReport("Repro run")
        report.add_cdf_summary(
            "Lag CDFs", {"US-West": [40, 42, 44, 46], "US-East": [14, 15, 16]}
        )
        rendered = report.render()
        assert "median (ms)" in rendered
        assert "US-West" in rendered

    def test_sections_ordered(self):
        report = ExperimentReport("r")
        report.add_section("A", "one")
        report.add_section("B", "two")
        rendered = report.render()
        assert rendered.index("## A") < rendered.index("## B")
        assert len(report) == 2

    def test_save(self, tmp_path):
        report = ExperimentReport("r")
        report.add_section("A", "body")
        path = tmp_path / "report.md"
        report.save(str(path))
        assert "## A" in path.read_text()
