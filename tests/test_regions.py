"""Region registry (Table 3) behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.net.regions import (
    GROUP_EUROPE,
    GROUP_US,
    Region,
    RegionRegistry,
    TABLE3_REGIONS,
    default_registry,
)
from repro.net.geo import GeoPoint


class TestTable3:
    def test_twelve_regions(self):
        assert len(TABLE3_REGIONS) == 12

    def test_seven_us_vms(self, registry):
        assert len(registry.vm_names(GROUP_US)) == 7

    def test_seven_europe_vms(self, registry):
        assert len(registry.vm_names(GROUP_EUROPE)) == 7

    def test_us_east_has_two_vms(self, registry):
        assert registry.get("US-East").vm_count == 2

    def test_us_west_has_two_vms(self, registry):
        assert registry.get("US-West").vm_count == 2

    def test_duplicate_vm_names_suffix(self, registry):
        names = registry.vm_names(GROUP_US)
        assert "US-East" in names and "US-East2" in names

    def test_europe_labels_match_paper(self, registry):
        names = set(registry.vm_names(GROUP_EUROPE))
        assert names == {"CH", "DE", "IE", "NL", "FR", "UK-South", "UK-West"}


class TestRegistryLookups:
    def test_get_unknown_raises(self, registry):
        with pytest.raises(ConfigurationError):
            registry.get("Atlantis")

    def test_contains(self, registry):
        assert "CH" in registry
        assert "Atlantis" not in registry

    def test_region_of_vm_strips_suffix(self, registry):
        assert registry.region_of_vm("US-West2").name == "US-West"

    def test_region_of_vm_plain(self, registry):
        assert registry.region_of_vm("FR").name == "FR"

    def test_len_counts_regions(self, registry):
        assert len(registry) == 12

    def test_site_lookup(self, registry):
        point = registry.site("residential-us-east")
        assert point.lat > 0

    def test_unknown_site_raises(self, registry):
        with pytest.raises(ConfigurationError):
            registry.site("mars-base")

    def test_site_names_sorted(self, registry):
        names = registry.site_names()
        assert names == sorted(names)
        assert "zoom-us-east" in names

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()


class TestRegionValidation:
    def test_zero_vm_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Region("x", GeoPoint("x", 0, 0), GROUP_US, vm_count=0)

    def test_unknown_group_rejected(self):
        with pytest.raises(ConfigurationError):
            Region("x", GeoPoint("x", 0, 0), "Mars")

    def test_duplicate_region_names_rejected(self):
        region = Region("dup", GeoPoint("d", 0, 0), GROUP_US)
        with pytest.raises(ConfigurationError):
            RegionRegistry(regions=(region, region))

    def test_platform_sites_cover_both_continents(self, registry):
        meet_sites = [s for s in registry.site_names() if s.startswith("meet-")]
        assert any("eu" in s for s in meet_sites)
        assert any("us" in s for s in meet_sites)
