"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_routing_error_is_simulation_error():
    assert issubclass(errors.RoutingError, errors.SimulationError)


def test_codec_error_is_media_error():
    assert issubclass(errors.CodecError, errors.MediaError)


def test_session_error_is_platform_error():
    assert issubclass(errors.SessionError, errors.PlatformError)


def test_catching_base_catches_subsystem_errors():
    with pytest.raises(errors.ReproError):
        raise errors.MeasurementError("no samples")
