"""Full-reference QoE metrics: PSNR, SSIM, VIFp, MOS bands, VQMT facade."""

import numpy as np
import pytest

from scipy import ndimage

from repro.errors import AnalysisError
from repro.media.feeds import HighMotionFeed, LowMotionFeed
from repro.media.frames import FrameSpec
from repro.qoe import (
    mos_from_psnr,
    mos_from_ssim,
    psnr,
    psnr_stack,
    score_video,
    ssim,
    ssim_stack,
    vifp,
    vifp_stack,
)
from repro.qoe.kernels import as_frame_stack, gaussian_blur_stack
from repro.qoe.mos import mos_downgrade
from repro.qoe.psnr import PSNR_CAP_DB
from repro.qoe.vqmt import VideoQualityReport


def noisy(frame, sigma, seed=0):
    rng = np.random.default_rng(seed)
    out = frame.astype(np.float64) + rng.normal(0, sigma, frame.shape)
    return np.clip(out, 0, 255).astype(np.uint8)


@pytest.fixture
def reference(small_spec):
    return LowMotionFeed(FrameSpec(64, 64, 10)).frame(5)


class TestPsnr:
    def test_identical_capped(self, reference):
        assert psnr(reference, reference) == PSNR_CAP_DB

    def test_known_mse(self):
        a = np.zeros((32, 32), dtype=np.uint8)
        b = np.full((32, 32), 10, dtype=np.uint8)
        # MSE = 100 -> PSNR = 10*log10(255^2/100) = 28.13.
        assert psnr(a, b) == pytest.approx(28.13, abs=0.01)

    def test_monotonic_in_noise(self, reference):
        assert psnr(reference, noisy(reference, 2)) > psnr(
            reference, noisy(reference, 20)
        )

    def test_shape_mismatch(self, reference):
        with pytest.raises(AnalysisError):
            psnr(reference, reference[:-1])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            psnr(np.zeros((0, 0)), np.zeros((0, 0)))


class TestSsim:
    def test_identical_is_one(self, reference):
        assert ssim(reference, reference) == pytest.approx(1.0)

    def test_range(self, reference):
        value = ssim(reference, noisy(reference, 30))
        assert -1.0 <= value <= 1.0

    def test_monotonic_in_noise(self, reference):
        assert ssim(reference, noisy(reference, 2)) > ssim(
            reference, noisy(reference, 30)
        )

    def test_constant_shift_barely_matters_vs_noise(self, reference):
        shifted = np.clip(reference.astype(int) + 5, 0, 255).astype(np.uint8)
        assert ssim(reference, shifted) > ssim(reference, noisy(reference, 25))

    def test_small_frames_rejected(self):
        with pytest.raises(AnalysisError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))


class TestVifp:
    def test_identical_is_one(self, reference):
        assert vifp(reference, reference) == pytest.approx(1.0, abs=0.01)

    def test_monotonic_in_noise(self, reference):
        assert vifp(reference, noisy(reference, 3)) > vifp(
            reference, noisy(reference, 30)
        )

    def test_blur_reduces_information(self, reference):
        from scipy import ndimage

        blurred = ndimage.gaussian_filter(
            reference.astype(np.float64), 2.0
        ).astype(np.uint8)
        assert vifp(reference, blurred) < 0.8

    def test_flat_reference_convention(self):
        flat = np.full((64, 64), 100, dtype=np.uint8)
        assert vifp(flat, flat) == 1.0

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            vifp(np.zeros((16, 16)), np.zeros((16, 16)))


class TestMosBands:
    def test_psnr_bands(self):
        assert mos_from_psnr(40.0) == 5
        assert mos_from_psnr(33.0) == 4
        assert mos_from_psnr(27.0) == 3
        assert mos_from_psnr(22.0) == 2
        assert mos_from_psnr(10.0) == 1

    def test_ssim_bands(self):
        assert mos_from_ssim(0.995) == 5
        assert mos_from_ssim(0.96) == 4
        assert mos_from_ssim(0.90) == 3
        assert mos_from_ssim(0.6) == 2
        assert mos_from_ssim(0.2) == 1

    def test_nan_rejected(self):
        with pytest.raises(AnalysisError):
            mos_from_psnr(float("nan"))

    def test_downgrade(self):
        assert mos_downgrade(5, 3) == 2
        assert mos_downgrade(3, 5) == 0

    def test_downgrade_validates(self):
        with pytest.raises(AnalysisError):
            mos_downgrade(6, 3)


def naive_psnr(reference, distorted, cap_db=PSNR_CAP_DB):
    """The seed's per-frame PSNR, kept verbatim as the oracle."""
    mse = float(
        np.mean((reference.astype(np.float64) - distorted.astype(np.float64)) ** 2)
    )
    if mse <= 0.0:
        return cap_db
    return float(min(10.0 * np.log10(255.0**2 / mse), cap_db))


def naive_ssim(reference, distorted):
    """The seed's per-frame SSIM, kept verbatim as the oracle."""
    c1, c2 = (0.01 * 255.0) ** 2, (0.03 * 255.0) ** 2
    mean = lambda p: ndimage.gaussian_filter(p, sigma=1.5, mode="reflect")
    x = reference.astype(np.float64)
    y = distorted.astype(np.float64)
    mu_x, mu_y = mean(x), mean(y)
    sigma_xx = mean(x * x) - mu_x * mu_x
    sigma_yy = mean(y * y) - mu_y * mu_y
    sigma_xy = mean(x * y) - mu_x * mu_y
    numerator = (2.0 * mu_x * mu_y + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_x * mu_x + mu_y * mu_y + c1) * (sigma_xx + sigma_yy + c2)
    return float(np.mean(numerator / denominator))


def naive_vifp(reference, distorted):
    """The seed's per-frame VIFp, kept verbatim as the oracle."""
    x = reference.astype(np.float64)
    y = distorted.astype(np.float64)
    numerator = denominator = 0.0
    for scale in range(1, 5):
        sigma = ((2 ** (4 - scale + 1)) + 1) / 5.0
        if scale > 1:
            x = ndimage.gaussian_filter(x, sigma, mode="reflect")[::2, ::2]
            y = ndimage.gaussian_filter(y, sigma, mode="reflect")[::2, ::2]
            if min(x.shape) < 4:
                break
        blur = lambda p: ndimage.gaussian_filter(p, sigma, mode="reflect")
        mu_x, mu_y = blur(x), blur(y)
        sigma_xx = np.maximum(blur(x * x) - mu_x * mu_x, 0.0)
        sigma_yy = np.maximum(blur(y * y) - mu_y * mu_y, 0.0)
        sigma_xy = blur(x * y) - mu_x * mu_y
        g = sigma_xy / (sigma_xx + 1e-10)
        sv = sigma_yy - g * sigma_xy
        g = np.where(sigma_xx < 1e-10, 0.0, g)
        sv = np.where(sigma_xx < 1e-10, sigma_yy, sv)
        sv = np.where(g < 0, sigma_yy, sv)
        g = np.maximum(g, 0.0)
        sv = np.maximum(sv, 1e-10)
        numerator += float(np.sum(np.log10(1.0 + (g * g) * sigma_xx / (sv + 2.0))))
        denominator += float(np.sum(np.log10(1.0 + sigma_xx / 2.0)))
    if denominator <= 0.0:
        return 1.0 if np.allclose(reference, distorted) else 0.0
    return numerator / denominator


class TestBatchedScoring:
    """Batched (T, H, W) kernels against the per-frame oracles.

    The ISSUE-2 acceptance bound: batched and per-frame series agree
    to <= 1e-8 (they are in fact bit-identical).
    """

    @pytest.fixture
    def pairs(self):
        feed = HighMotionFeed(FrameSpec(64, 64, 10))
        reference = np.stack(feed.frames(9))
        rng = np.random.default_rng(5)
        distorted = np.clip(
            reference.astype(np.float64) + rng.normal(0, 10, reference.shape),
            0,
            255,
        ).astype(np.uint8)
        # Include an identical pair and a flat pair to hit the edge
        # branches (PSNR cap, VIFp flat-reference convention).
        reference[3] = distorted[3]
        reference[6] = 77
        distorted[6] = 77
        return reference, distorted

    def test_gaussian_blur_matches_scipy(self, pairs):
        stack = pairs[0].astype(np.float64)
        batched = gaussian_blur_stack(stack, 1.5)
        per_frame = np.stack(
            [ndimage.gaussian_filter(f, 1.5, mode="reflect") for f in stack]
        )
        assert np.array_equal(batched, per_frame)

    def test_psnr_stack_matches_per_frame(self, pairs):
        reference, distorted = pairs
        series = psnr_stack(reference, distorted)
        oracle = [naive_psnr(r, d) for r, d in zip(reference, distorted)]
        assert np.abs(series - oracle).max() <= 1e-8

    def test_ssim_stack_matches_per_frame(self, pairs):
        reference, distorted = pairs
        series = ssim_stack(reference, distorted)
        oracle = [naive_ssim(r, d) for r, d in zip(reference, distorted)]
        assert np.abs(series - oracle).max() <= 1e-8

    def test_vifp_stack_matches_per_frame(self, pairs):
        reference, distorted = pairs
        series = vifp_stack(reference, distorted)
        oracle = [naive_vifp(r, d) for r, d in zip(reference, distorted)]
        assert np.abs(series - oracle).max() <= 1e-8

    def test_scalar_wrappers_equal_stack_kernels(self, pairs):
        reference, distorted = pairs
        assert psnr(reference[0], distorted[0]) == psnr_stack(
            reference[:1], distorted[:1]
        )[0]
        assert ssim(reference[0], distorted[0]) == ssim_stack(
            reference[:1], distorted[:1]
        )[0]
        assert vifp(reference[0], distorted[0]) == vifp_stack(
            reference[:1], distorted[:1]
        )[0]

    def test_block_boundaries_consistent(self, pairs, monkeypatch):
        from repro.qoe import kernels

        reference, distorted = pairs
        full = vifp_stack(reference, distorted)
        monkeypatch.setattr(kernels, "BLOCK_BYTES", 64 * 64 * 8 * 2)
        blocked = vifp_stack(reference, distorted)
        assert np.array_equal(full, blocked)

    def test_stack_shape_validation(self):
        with pytest.raises(AnalysisError):
            psnr_stack(np.zeros((2, 8, 8)), np.zeros((3, 8, 8)))
        with pytest.raises(AnalysisError):
            as_frame_stack([np.zeros((8, 8)), np.zeros((9, 9))])

    def test_score_video_accepts_stacks(self, pairs):
        reference, distorted = pairs
        report = score_video(reference, distorted)
        assert report.frame_count == len(reference)
        assert report.psnr_series[3] == PSNR_CAP_DB
        assert report.vifp_series[6] == 1.0


class TestScoreVideo:
    def test_full_report(self, small_spec):
        feed = HighMotionFeed(small_spec)
        reference = feed.frames(5)
        degraded = [noisy(f, 8, seed=i) for i, f in enumerate(reference)]
        report = score_video(reference, degraded)
        assert report.frame_count == 5
        assert 20 < report.mean_psnr < 45
        assert 0 < report.mean_ssim <= 1
        assert 0 < report.mean_vifp <= 1.1

    def test_vifp_optional(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(3)
        report = score_video(frames, frames, compute_vifp=False)
        assert report.vifp_series == []
        with pytest.raises(AnalysisError):
            _ = report.mean_vifp  # empty series has no mean

    def test_length_mismatch(self, small_spec):
        feed = HighMotionFeed(small_spec)
        with pytest.raises(AnalysisError):
            score_video(feed.frames(3), feed.frames(4))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            score_video([], [])

    def test_as_dict(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(2)
        data = score_video(frames, frames).as_dict()
        assert set(data) == {"psnr", "ssim", "vifp", "frames"}

    def test_report_requires_frames(self):
        report = VideoQualityReport()
        with pytest.raises(AnalysisError):
            _ = report.mean_psnr
