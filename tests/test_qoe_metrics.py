"""Full-reference QoE metrics: PSNR, SSIM, VIFp, MOS bands, VQMT facade."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.media.feeds import HighMotionFeed, LowMotionFeed
from repro.media.frames import FrameSpec
from repro.qoe import (
    mos_from_psnr,
    mos_from_ssim,
    psnr,
    score_video,
    ssim,
    vifp,
)
from repro.qoe.mos import mos_downgrade
from repro.qoe.psnr import PSNR_CAP_DB
from repro.qoe.vqmt import VideoQualityReport


def noisy(frame, sigma, seed=0):
    rng = np.random.default_rng(seed)
    out = frame.astype(np.float64) + rng.normal(0, sigma, frame.shape)
    return np.clip(out, 0, 255).astype(np.uint8)


@pytest.fixture
def reference(small_spec):
    return LowMotionFeed(FrameSpec(64, 64, 10)).frame(5)


class TestPsnr:
    def test_identical_capped(self, reference):
        assert psnr(reference, reference) == PSNR_CAP_DB

    def test_known_mse(self):
        a = np.zeros((32, 32), dtype=np.uint8)
        b = np.full((32, 32), 10, dtype=np.uint8)
        # MSE = 100 -> PSNR = 10*log10(255^2/100) = 28.13.
        assert psnr(a, b) == pytest.approx(28.13, abs=0.01)

    def test_monotonic_in_noise(self, reference):
        assert psnr(reference, noisy(reference, 2)) > psnr(
            reference, noisy(reference, 20)
        )

    def test_shape_mismatch(self, reference):
        with pytest.raises(AnalysisError):
            psnr(reference, reference[:-1])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            psnr(np.zeros((0, 0)), np.zeros((0, 0)))


class TestSsim:
    def test_identical_is_one(self, reference):
        assert ssim(reference, reference) == pytest.approx(1.0)

    def test_range(self, reference):
        value = ssim(reference, noisy(reference, 30))
        assert -1.0 <= value <= 1.0

    def test_monotonic_in_noise(self, reference):
        assert ssim(reference, noisy(reference, 2)) > ssim(
            reference, noisy(reference, 30)
        )

    def test_constant_shift_barely_matters_vs_noise(self, reference):
        shifted = np.clip(reference.astype(int) + 5, 0, 255).astype(np.uint8)
        assert ssim(reference, shifted) > ssim(reference, noisy(reference, 25))

    def test_small_frames_rejected(self):
        with pytest.raises(AnalysisError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))


class TestVifp:
    def test_identical_is_one(self, reference):
        assert vifp(reference, reference) == pytest.approx(1.0, abs=0.01)

    def test_monotonic_in_noise(self, reference):
        assert vifp(reference, noisy(reference, 3)) > vifp(
            reference, noisy(reference, 30)
        )

    def test_blur_reduces_information(self, reference):
        from scipy import ndimage

        blurred = ndimage.gaussian_filter(
            reference.astype(np.float64), 2.0
        ).astype(np.uint8)
        assert vifp(reference, blurred) < 0.8

    def test_flat_reference_convention(self):
        flat = np.full((64, 64), 100, dtype=np.uint8)
        assert vifp(flat, flat) == 1.0

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            vifp(np.zeros((16, 16)), np.zeros((16, 16)))


class TestMosBands:
    def test_psnr_bands(self):
        assert mos_from_psnr(40.0) == 5
        assert mos_from_psnr(33.0) == 4
        assert mos_from_psnr(27.0) == 3
        assert mos_from_psnr(22.0) == 2
        assert mos_from_psnr(10.0) == 1

    def test_ssim_bands(self):
        assert mos_from_ssim(0.995) == 5
        assert mos_from_ssim(0.96) == 4
        assert mos_from_ssim(0.90) == 3
        assert mos_from_ssim(0.6) == 2
        assert mos_from_ssim(0.2) == 1

    def test_nan_rejected(self):
        with pytest.raises(AnalysisError):
            mos_from_psnr(float("nan"))

    def test_downgrade(self):
        assert mos_downgrade(5, 3) == 2
        assert mos_downgrade(3, 5) == 0

    def test_downgrade_validates(self):
        with pytest.raises(AnalysisError):
            mos_downgrade(6, 3)


class TestScoreVideo:
    def test_full_report(self, small_spec):
        feed = HighMotionFeed(small_spec)
        reference = feed.frames(5)
        degraded = [noisy(f, 8, seed=i) for i, f in enumerate(reference)]
        report = score_video(reference, degraded)
        assert report.frame_count == 5
        assert 20 < report.mean_psnr < 45
        assert 0 < report.mean_ssim <= 1
        assert 0 < report.mean_vifp <= 1.1

    def test_vifp_optional(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(3)
        report = score_video(frames, frames, compute_vifp=False)
        assert report.vifp_series == []
        with pytest.raises(AnalysisError):
            _ = report.mean_vifp  # empty series has no mean

    def test_length_mismatch(self, small_spec):
        feed = HighMotionFeed(small_spec)
        with pytest.raises(AnalysisError):
            score_video(feed.frames(3), feed.frames(4))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            score_video([], [])

    def test_as_dict(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(2)
        data = score_video(frames, frames).as_dict()
        assert set(data) == {"psnr", "ssim", "vifp", "frames"}

    def test_report_requires_frames(self):
        report = VideoQualityReport()
        with pytest.raises(AnalysisError):
            _ = report.mean_psnr
