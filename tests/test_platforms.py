"""Platform models: architecture, rates, subscriptions, wiring."""

import numpy as np
import pytest

from repro.core.testbed import Testbed, TestbedConfig
from repro.errors import PlatformError, SessionError
from repro.net.address import MEET_UDP_PORT, WEBEX_UDP_PORT, ZOOM_UDP_PORT
from repro.platforms import PLATFORMS, make_platform
from repro.platforms.base import ClientBinding, StreamLayer, ViewContext
from repro.platforms.ratecontrol import RateContext


@pytest.fixture
def deployed(testbed):
    testbed.add_vm("US-East")
    testbed.add_vm("US-East2")
    testbed.add_vm("US-West")
    return testbed


def bindings_for(testbed, names):
    return [
        ClientBinding(n, testbed.clients[n].host, 40404) for n in names
    ]


class TestRegistry:
    def test_three_platforms(self):
        assert set(PLATFORMS) == {"zoom", "webex", "meet"}

    def test_make_platform_case_insensitive(self):
        assert make_platform("Zoom").name == "zoom"

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            make_platform("skype")

    def test_designated_ports(self):
        assert make_platform("zoom").udp_port == ZOOM_UDP_PORT
        assert make_platform("webex").udp_port == WEBEX_UDP_PORT
        assert make_platform("meet").udp_port == MEET_UDP_PORT

    def test_audio_rates_match_paper(self):
        # Section 4.4 footnote: 90 / 45 / 40 Kbps.
        assert make_platform("zoom").audio_bps == 90_000
        assert make_platform("webex").audio_bps == 45_000
        assert make_platform("meet").audio_bps == 40_000


class TestVideoRates:
    def test_zoom_p2p_above_relayed(self):
        zoom = make_platform("zoom")
        p2p = zoom.video_rates(RateContext(num_participants=2))
        relayed = zoom.video_rates(RateContext(num_participants=4))
        assert p2p[StreamLayer.HIGH] > relayed[StreamLayer.HIGH]

    def test_zoom_low_motion_small_discount(self):
        zoom = make_platform("zoom")
        low = zoom.video_rates(RateContext(num_participants=4, motion="low"))
        high = zoom.video_rates(RateContext(num_participants=4, motion="high"))
        ratio = low[StreamLayer.HIGH] / high[StreamLayer.HIGH]
        assert 0.90 <= ratio <= 0.95  # "least difference (5-10%)"

    def test_webex_halves_for_low_motion(self):
        webex = make_platform("webex")
        low = webex.video_rates(RateContext(num_participants=4, motion="low"))
        high = webex.video_rates(RateContext(num_participants=4, motion="high"))
        assert low[StreamLayer.HIGH] == pytest.approx(
            0.52 * high[StreamLayer.HIGH]
        )

    def test_webex_highest_multiuser_rate(self):
        context = RateContext(num_participants=4, motion="high")
        rates = {
            name: make_platform(name).video_rates(context)[StreamLayer.HIGH]
            for name in PLATFORMS
        }
        assert rates["webex"] == max(rates.values())

    def test_webex_device_adaptive_mobile(self):
        webex = make_platform("webex")
        high_end = webex.video_rates(
            RateContext(num_participants=3, device="mobile-highend")
        )
        low_end = webex.video_rates(
            RateContext(num_participants=3, device="mobile-lowend")
        )
        assert low_end[StreamLayer.HIGH] < high_end[StreamLayer.HIGH]

    def test_meet_two_party_boost(self):
        meet = make_platform("meet")
        two = meet.video_rates(RateContext(num_participants=2, motion="low"))
        four = meet.video_rates(RateContext(num_participants=4, motion="low"))
        assert two[StreamLayer.HIGH] > 2 * four[StreamLayer.HIGH]

    def test_meet_session_rate_varies(self):
        meet = make_platform("meet")
        rates = {
            meet.video_rates(
                RateContext(num_participants=4, session_index=i)
            )[StreamLayer.HIGH]
            for i in range(10)
        }
        assert len(rates) > 5  # "most dynamic rate changes"

    def test_webex_rate_constant_across_sessions(self):
        webex = make_platform("webex")
        rates = {
            webex.video_rates(
                RateContext(num_participants=4, session_index=i)
            )[StreamLayer.HIGH]
            for i in range(10)
        }
        assert len(rates) == 1  # "virtually constant"


class TestSubscriptions:
    def test_fullscreen_subscribes_host_high(self):
        zoom = make_platform("zoom")
        plan = zoom.subscriptions_for(
            "b", ViewContext(), ["a", "b", "c"], display="a"
        )
        assert StreamLayer.HIGH in plan["a"]

    def test_gallery_subscribes_low_tiles(self):
        zoom = make_platform("zoom")
        plan = zoom.subscriptions_for(
            "b", ViewContext(view_mode="gallery"), ["a", "b", "c"], "a"
        )
        assert plan["a"] == [StreamLayer.LOW]
        assert plan["c"] == [StreamLayer.LOW]

    def test_gallery_caps_at_four_tiles(self):
        zoom = make_platform("zoom")
        names = ["r"] + [f"s{i}" for i in range(8)]
        plan = zoom.subscriptions_for(
            "r", ViewContext(view_mode="gallery"), names, "s0"
        )
        assert len(plan) == 4  # "show videos for up to four"

    def test_audio_only_subscribes_nothing(self):
        zoom = make_platform("zoom")
        plan = zoom.subscriptions_for(
            "b", ViewContext(view_mode="audio-only"), ["a", "b"], "a"
        )
        assert plan == {}

    def test_meet_gallery_is_fullscreen(self):
        meet = make_platform("meet")
        gallery = meet.subscriptions_for(
            "b", ViewContext(view_mode="gallery"), ["a", "b", "c"], "a"
        )
        fullscreen = meet.subscriptions_for(
            "b", ViewContext(), ["a", "b", "c"], "a"
        )
        assert gallery == fullscreen

    def test_meet_fullscreen_has_thumbnails(self):
        meet = make_platform("meet")
        names = ["r", "h", "x", "y"]
        plan = meet.subscriptions_for("r", ViewContext(), names, "h")
        assert plan["h"] == [StreamLayer.HIGH]
        assert plan["x"] == [StreamLayer.LOW]
        assert plan["y"] == [StreamLayer.LOW]

    def test_view_context_validation(self):
        with pytest.raises(PlatformError):
            ViewContext(view_mode="cinema")


class TestSessionWiring:
    def test_zoom_single_relay_for_all(self, deployed):
        platform = deployed.platform("zoom")
        names = ["US-East", "US-East2", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=3),
        )
        addresses = set(wiring.service_address.values())
        assert len(addresses) == 1
        assert wiring.udp_port == ZOOM_UDP_PORT
        wiring.close()

    def test_meet_per_client_relays(self, deployed):
        platform = deployed.platform("meet")
        names = ["US-East", "US-East2", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=3),
        )
        # US-West attaches to a different (nearby) endpoint than east.
        east_ep = wiring.service_address["US-East"]
        west_ep = wiring.service_address["US-West"]
        assert east_ep.ip != west_ep.ip
        wiring.close()

    def test_zoom_p2p_at_two(self, deployed):
        platform = deployed.platform("zoom")
        names = ["US-East", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=2),
        )
        assert wiring.p2p
        assert wiring.relay_hosts == []
        # Each peer's "service address" is the other peer.
        assert wiring.service_address["US-East"].ip == (
            deployed.clients["US-West"].host.ip
        )

    def test_webex_not_p2p_at_two(self, deployed):
        platform = deployed.platform("webex")
        names = ["US-East", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=2),
        )
        assert not wiring.p2p
        wiring.close()

    def test_needs_two_clients(self, deployed):
        platform = deployed.platform("zoom")
        with pytest.raises(SessionError):
            platform.create_session(
                bindings_for(deployed, ["US-East"]), "US-East",
                RateContext(num_participants=2),
            )

    def test_host_must_participate(self, deployed):
        platform = deployed.platform("zoom")
        with pytest.raises(SessionError):
            platform.create_session(
                bindings_for(deployed, ["US-East", "US-West"]), "CH",
                RateContext(num_participants=2),
            )

    def test_layers_needed_reflects_subscriptions(self, deployed):
        platform = deployed.platform("meet")
        names = ["US-East", "US-East2", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=3),
        )
        # Host is displayed by everyone -> HIGH; also a thumbnail
        # source for receivers displaying it?  Non-host senders are
        # thumbnail (LOW) sources.
        assert StreamLayer.HIGH in wiring.layers_needed("US-East")
        wiring.close()

    def test_flow_id_format(self, deployed):
        platform = deployed.platform("zoom")
        names = ["US-East", "US-East2", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=3),
        )
        flow = wiring.video_flow("US-East", StreamLayer.HIGH)
        assert flow.startswith(wiring.session_id)
        assert flow.endswith("v-high")
        wiring.close()


class TestEndpointGeography:
    def test_webex_relays_in_us_east_even_for_eu(self):
        testbed = Testbed(TestbedConfig(seed=1))
        testbed.deploy_group("Europe")
        platform = testbed.platform("webex")
        names = ["CH", "FR", "DE"]
        wiring = platform.create_session(
            bindings_for(testbed, names), "CH", RateContext(num_participants=3)
        )
        relay = wiring.relay_hosts[0]
        assert relay.location.lon < -60  # in the US
        wiring.close()

    def test_meet_eu_clients_stay_in_eu(self):
        testbed = Testbed(TestbedConfig(seed=1))
        testbed.deploy_group("Europe")
        platform = testbed.platform("meet")
        names = ["CH", "FR", "DE"]
        wiring = platform.create_session(
            bindings_for(testbed, names), "CH", RateContext(num_participants=3)
        )
        for relay in wiring.relay_hosts:
            assert relay.location.lon > -30  # in Europe
        wiring.close()

    def test_zoom_us_host_gets_nearby_relay(self, deployed):
        platform = deployed.platform("zoom")
        names = ["US-East", "US-East2", "US-West"]
        wiring = platform.create_session(
            bindings_for(deployed, names), "US-East",
            RateContext(num_participants=3),
        )
        relay = wiring.relay_hosts[0]
        east = deployed.clients["US-East"].host.location
        assert relay.location.distance_km(east) < 500
        wiring.close()
