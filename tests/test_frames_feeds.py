"""Frame sources and the paper's three synthetic feeds."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MediaError
from repro.media.feeds import FlashFeed, HighMotionFeed, LowMotionFeed, StaticFeed
from repro.media.frames import FrameSpec, smooth_noise_texture, to_uint8


class TestFrameSpec:
    def test_shape(self):
        assert FrameSpec(640, 480, 30).shape == (480, 640)

    def test_pixels(self):
        assert FrameSpec(640, 480, 30).pixels == 307_200

    def test_frame_duration(self):
        assert FrameSpec(64, 48, 10).frame_duration() == pytest.approx(0.1)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameSpec(8, 8, 30)

    def test_zero_fps_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameSpec(64, 48, 0)

    def test_scaled(self):
        spec = FrameSpec(640, 480, 30).scaled(0.25)
        assert spec.width == 160 and spec.height == 120
        assert spec.fps == 30

    def test_scaled_floors_at_16(self):
        spec = FrameSpec(64, 48, 30).scaled(0.01)
        assert spec.width >= 16 and spec.height >= 16


class TestHelpers:
    def test_texture_range(self, rng):
        texture = smooth_noise_texture(rng, (48, 64), low=40, high=210)
        assert texture.min() >= 40 - 1e-9
        assert texture.max() <= 210 + 1e-9

    def test_to_uint8_clips(self):
        frame = np.array([[-5.0, 300.0]])
        out = to_uint8(frame)
        assert out.dtype == np.uint8
        assert out[0, 0] == 0 and out[0, 1] == 255


class TestDeterminism:
    @pytest.mark.parametrize(
        "feed_cls", [StaticFeed, LowMotionFeed, HighMotionFeed, FlashFeed]
    )
    def test_same_seed_same_frames(self, feed_cls, small_spec):
        a = feed_cls(small_spec, seed=5)
        b = feed_cls(small_spec, seed=5)
        for index in (0, 7, 31):
            assert np.array_equal(a.frame(index), b.frame(index))

    @pytest.mark.parametrize("feed_cls", [LowMotionFeed, HighMotionFeed])
    def test_different_seed_different_frames(self, feed_cls, small_spec):
        a = feed_cls(small_spec, seed=1)
        b = feed_cls(small_spec, seed=2)
        assert not np.array_equal(a.frame(0), b.frame(0))

    def test_frames_are_uint8_with_spec_shape(self, small_spec):
        for feed_cls in (StaticFeed, LowMotionFeed, HighMotionFeed, FlashFeed):
            frame = feed_cls(small_spec).frame(3)
            assert frame.dtype == np.uint8
            assert frame.shape == small_spec.shape

    def test_frames_batch(self, small_spec):
        feed = LowMotionFeed(small_spec)
        frames = feed.frames(5, start=10)
        assert len(frames) == 5
        assert np.array_equal(frames[0], feed.frame(10))

    def test_negative_count_rejected(self, small_spec):
        with pytest.raises(MediaError):
            LowMotionFeed(small_spec).frames(-1)


class TestMotionCharacter:
    def test_static_feed_has_zero_motion(self, small_spec):
        assert StaticFeed(small_spec).mean_motion_energy(10) == 0.0

    def test_high_motion_exceeds_low_motion(self, small_spec):
        low = LowMotionFeed(small_spec).mean_motion_energy(20)
        high = HighMotionFeed(small_spec).mean_motion_energy(20)
        assert high > 5 * low

    def test_low_motion_is_nonzero(self, small_spec):
        assert LowMotionFeed(small_spec).mean_motion_energy(20) > 0

    def test_motion_energy_first_frame_zero(self, small_spec):
        assert HighMotionFeed(small_spec).motion_energy(0) == 0.0

    def test_scene_cut_spikes_motion(self, small_spec):
        feed = HighMotionFeed(small_spec, scene_duration_s=1.0)
        frames_per_scene = small_spec.fps
        cut = feed.motion_energy(frames_per_scene)
        within = feed.motion_energy(frames_per_scene // 2)
        assert cut > within


class TestFlashFeed:
    def test_flash_timing(self, small_spec):
        feed = FlashFeed(small_spec, period_s=2.0, flash_duration_s=0.2)
        assert feed.is_flash_frame(0)
        assert not feed.is_flash_frame(small_spec.fps)  # 1 s in: blank

    def test_blank_frames_are_black(self, small_spec):
        feed = FlashFeed(small_spec)
        blank = feed.frame(small_spec.fps)  # 1 s in
        assert blank.max() == 0

    def test_flash_frames_are_bright(self, small_spec):
        feed = FlashFeed(small_spec)
        assert feed.frame(0).mean() > 60

    def test_flash_times(self, small_spec):
        feed = FlashFeed(small_spec, period_s=2.0)
        assert feed.flash_times(7.0) == [0.0, 2.0, 4.0, 6.0]

    def test_flash_longer_than_period_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            FlashFeed(small_spec, period_s=1.0, flash_duration_s=1.5)


class TestFeedValidation:
    def test_low_motion_gesture_timing(self, small_spec):
        with pytest.raises(ConfigurationError):
            LowMotionFeed(small_spec, gesture_period_s=0)

    def test_high_motion_scene_duration(self, small_spec):
        with pytest.raises(ConfigurationError):
            HighMotionFeed(small_spec, scene_duration_s=-1)

    def test_high_motion_object_count(self, small_spec):
        with pytest.raises(ConfigurationError):
            HighMotionFeed(small_spec, num_objects=-1)
