"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.testbed import Testbed, TestbedConfig
from repro.media.frames import FrameSpec
from repro.net.regions import default_registry
from repro.net.routing import Network


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def small_spec():
    """A tiny frame spec that keeps codec tests fast."""
    return FrameSpec(width=64, height=48, fps=10)


@pytest.fixture
def medium_spec():
    """The spec used by scaled experiment runs."""
    return FrameSpec(width=160, height=120, fps=15)


@pytest.fixture
def registry():
    """The default Table 3 region registry."""
    return default_registry()


@pytest.fixture
def network():
    """A fresh empty network."""
    return Network()


@pytest.fixture
def us_pair(network, registry):
    """Two hosts on opposite US coasts."""
    east = network.add_host("east", registry.get("US-East").location)
    west = network.add_host("west", registry.get("US-West").location)
    return east, west


@pytest.fixture
def testbed():
    """A fresh testbed with a fixed seed."""
    return Testbed(TestbedConfig(seed=123))
