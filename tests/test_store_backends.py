"""One contract, three store backends: shared behaviour + corruption.

Every test in ``TestStoreContract`` runs against the JSONL, sqlite and
sharded-directory backends via the ``store_path`` fixture -- the
backends must be interchangeable everywhere a store path is accepted.
Corruption cases (truncated tail, mid-file damage, missing or foreign
header) are part of the contract: crash debris must be tolerated,
silent data loss must not.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignStore,
    CellRecord,
    DurabilityPolicy,
    JsonlCampaignStore,
    ShardedCampaignStore,
    SqliteCampaignStore,
    open_store,
    resolve_backend,
    run_campaign,
)
from repro.campaign.grids import calibration_campaign
from repro.campaign.store_shards import shard_index
from repro.errors import CampaignError, StoreIntegrityError

BACKEND_PATHS = {
    "jsonl": "store.jsonl",
    "sqlite": "store.sqlite",
    "shards": "store.shards",
}


@pytest.fixture(params=sorted(BACKEND_PATHS))
def backend(request):
    return request.param


@pytest.fixture
def store_path(tmp_path, backend):
    return str(tmp_path / BACKEND_PATHS[backend])


def spec_of(cells=3, name="contract"):
    return calibration_campaign(cells=cells, name=name)


def record_for(cell, spec, status="ok"):
    return CellRecord(
        cell_id=cell.cell_id, kind=cell.kind, params=dict(cell.params),
        seed=cell.seed, spec_hash=spec.spec_hash(), status=status,
        duration_s=0.01,
        metrics={"index": cell.params["index"], "value": 1} if status == "ok"
        else None,
        error=None if status == "ok" else "boom",
    )


class TestBackendSelection:
    def test_by_suffix(self):
        assert resolve_backend("a/b.jsonl") == ("jsonl", "a/b.jsonl")
        assert resolve_backend("a/b.sqlite") == ("sqlite", "a/b.sqlite")
        assert resolve_backend("a/b.db") == ("sqlite", "a/b.db")
        assert resolve_backend("a/b.shards") == ("shards", "a/b.shards")
        assert resolve_backend("plain.txt") == ("jsonl", "plain.txt")

    def test_by_scheme_prefix(self):
        assert resolve_backend("sqlite:weird.name") == ("sqlite", "weird.name")
        assert resolve_backend("shards:out") == ("shards", "out")
        assert resolve_backend("jsonl:results.db") == ("jsonl", "results.db")

    def test_trailing_slash_means_directory(self):
        assert resolve_backend("campaign/")[0] == "shards"

    def test_existing_directory_means_shards(self, tmp_path):
        assert resolve_backend(str(tmp_path))[0] == "shards"

    def test_empty_scheme_path_rejected(self):
        with pytest.raises(CampaignError):
            resolve_backend("sqlite:")

    def test_open_store_classes(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "a.jsonl")),
                          JsonlCampaignStore)
        assert isinstance(open_store(str(tmp_path / "a.sqlite")),
                          SqliteCampaignStore)
        assert isinstance(open_store(str(tmp_path / "a.shards")),
                          ShardedCampaignStore)

    def test_campaign_store_alias_is_jsonl(self):
        assert CampaignStore is JsonlCampaignStore


class TestStoreContract:
    def test_initialise_and_read_back(self, store_path):
        spec = spec_of()
        store = open_store(store_path)
        store.initialise(spec)
        for cell in spec.expand():
            store.append_cell(record_for(cell, spec))
        store.close()

        reopened = open_store(store_path)
        assert reopened.exists()
        assert reopened.spec_hash() == spec.spec_hash()
        assert reopened.spec().spec_hash() == spec.spec_hash()
        records = reopened.cell_records()
        # Cross-cell ordering is backend-specific (shards interleave);
        # the contract is the full set plus per-cell append order.
        assert sorted(r.cell_id for r in records) == sorted(
            c.cell_id for c in spec.expand()
        )
        assert reopened.completed_ids() == {
            c.cell_id for c in spec.expand()
        }

    def test_initialise_refuses_existing(self, store_path):
        spec = spec_of()
        store = open_store(store_path)
        store.initialise(spec)
        store.close()
        with pytest.raises(CampaignError):
            open_store(store_path).initialise(spec)

    def test_missing_store_header_raises(self, store_path):
        with pytest.raises(CampaignError):
            open_store(store_path).header()

    def test_verify_spec_mismatch(self, store_path):
        store = open_store(store_path)
        store.initialise(spec_of())
        store.verify_spec(spec_of())
        with pytest.raises(StoreIntegrityError):
            store.verify_spec(spec_of(cells=4))
        store.close()

    def test_error_records_do_not_complete_cells(self, store_path):
        spec = spec_of()
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        store.append_cell(record_for(cells[0], spec))
        store.append_cell(record_for(cells[1], spec, status="error"))
        store.close()
        assert open_store(store_path).completed_ids() == {cells[0].cell_id}

    def test_tail_is_incremental(self, store_path):
        spec = spec_of(cells=4)
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        store.append_cell(record_for(cells[0], spec))
        store.flush()

        reader = open_store(store_path)
        first, cursor = reader.tail()
        assert [r.cell_id for r in first] == [cells[0].cell_id]

        for cell in cells[1:3]:
            store.append_cell(record_for(cell, spec))
        store.flush()
        fresh, cursor = reader.tail(cursor)
        assert sorted(r.cell_id for r in fresh) == sorted(
            c.cell_id for c in cells[1:3]
        )
        nothing, cursor = reader.tail(cursor)
        assert nothing == []
        store.close()

    def test_durability_policies_accepted(self, store_path, backend):
        spec = spec_of()
        for fsync_every, suffix in ((0, "a"), (5, "b")):
            path = store_path.replace("store", f"dur-{suffix}")
            store = open_store(path, durability=fsync_every)
            assert store.durability == DurabilityPolicy(fsync_every)
            store.initialise(spec)
            for cell in spec.expand():
                store.append_cell(record_for(cell, spec))
            store.close()  # close is the final durability barrier
            assert len(open_store(path).cell_records()) == 3

    def test_negative_fsync_rejected(self):
        with pytest.raises(CampaignError):
            DurabilityPolicy(fsync_every=-1)

    def test_run_campaign_against_backend(self, store_path):
        spec = spec_of(cells=4, name="run")
        summary = run_campaign(spec, store_path, workers=1)
        assert summary.executed == 4 and summary.failed == 0
        again = run_campaign(spec, store_path, workers=1, resume=True)
        assert again.executed == 0 and again.skipped == 4


class TestGc:
    """``campaign gc``: compaction is part of the store contract."""

    def test_gc_drops_superseded_errors(self, store_path):
        spec = spec_of(cells=4, name="gc")
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        store.append_cell(record_for(cells[0], spec, status="error"))
        store.append_cell(record_for(cells[0], spec))  # retry's ok
        store.append_cell(record_for(cells[1], spec, status="error"))
        store.append_cell(record_for(cells[2], spec))
        store.close()

        stats = open_store(store_path).gc()
        assert stats.errors_dropped == 1
        assert stats.records_kept == 3
        assert stats.reclaimed

        reopened = open_store(store_path)
        assert reopened.spec_hash() == spec.spec_hash()  # header survives
        records = reopened.cell_records()
        assert len(records) == 3
        # The live failure (no superseding ok) is untouched.
        statuses = {r.cell_id: r.status for r in records}
        assert statuses[cells[1].cell_id] == "error"
        assert reopened.completed_ids() == {
            cells[0].cell_id, cells[2].cell_id
        }

    def test_gc_is_idempotent_and_resume_safe(self, store_path):
        spec = spec_of(cells=3, name="gcresume")
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        store.append_cell(record_for(cells[0], spec, status="error"))
        store.append_cell(record_for(cells[0], spec))
        store.close()

        assert open_store(store_path).gc().errors_dropped == 1
        second = open_store(store_path).gc()
        assert second.errors_dropped == 0
        assert not second.reclaimed
        # A resume still runs exactly the genuinely-pending cells.
        summary = run_campaign(spec, store_path, workers=1, resume=True)
        assert summary.skipped == 1 and summary.executed == 2
        assert open_store(store_path).completed_ids() == {
            c.cell_id for c in cells
        }

    def test_gc_missing_store_errors(self, store_path):
        with pytest.raises(CampaignError):
            open_store(store_path).gc()

    @pytest.mark.parametrize("backend", ["jsonl", "shards"], indirect=True)
    def test_gc_heals_torn_tail(self, store_path, backend):
        spec = spec_of(cells=3, name="gctorn")
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        for cell in cells:
            store.append_cell(record_for(cell, spec))
        store.close()
        target = (
            store_path if backend == "jsonl"
            else os.path.join(
                store_path,
                f"shard-{shard_index(cells[0].cell_id, open_store(store_path).shard_count()):03d}.jsonl",
            )
        )
        debris = '{"type": "cell", "cell_id": "noop:torn'
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(debris)

        stats = open_store(store_path).gc()
        assert stats.debris_bytes == len(debris)
        assert stats.records_kept == 3
        # The file really is clean now: raw bytes end on a newline.
        with open(target, "rb") as handle:
            assert handle.read().endswith(b"\n")
        reopened = open_store(store_path)
        assert reopened.completed_ids() == {c.cell_id for c in cells}
        # Appending after gc still works (fresh handle, clean tail).
        writer = open_store(store_path)
        writer.append_cell(record_for(cells[0], spec))
        writer.close()
        assert len(open_store(store_path).cell_records()) == 4


class TestCrashDebris:
    """Corruption semantics, per backend."""

    def initialised(self, store_path, cells=3):
        spec = spec_of(cells=cells)
        store = open_store(store_path)
        store.initialise(spec)
        for cell in spec.expand():
            store.append_cell(record_for(cell, spec))
        store.close()
        return spec

    # - JSONL and shards share line-level crash semantics -

    def jsonl_file_of(self, store_path, backend, cell_id):
        if backend == "jsonl":
            return store_path
        index = shard_index(
            cell_id, open_store(store_path).shard_count()
        )
        return os.path.join(store_path, f"shard-{index:03d}.jsonl")

    @pytest.mark.parametrize("backend", ["jsonl", "shards"], indirect=True)
    def test_truncated_tail_tolerated(self, store_path, backend):
        spec = self.initialised(store_path)
        target = self.jsonl_file_of(
            store_path, backend, spec.expand()[0].cell_id
        )
        with open(target, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell_id": "noop:trunc')
        store = open_store(store_path)
        assert len(store.cell_records()) == 3
        assert store.completed_ids() == {c.cell_id for c in spec.expand()}

    @pytest.mark.parametrize("backend", ["jsonl", "shards"], indirect=True)
    def test_corrupt_final_line_tolerated(self, store_path, backend):
        spec = self.initialised(store_path)
        target = self.jsonl_file_of(
            store_path, backend, spec.expand()[0].cell_id
        )
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("g@rbage not json\n")
        assert len(open_store(store_path).cell_records()) == 3

    @pytest.mark.parametrize("backend", ["jsonl", "shards"], indirect=True)
    def test_mid_file_corruption_raises(self, store_path, backend):
        spec = self.initialised(store_path)
        target = self.jsonl_file_of(
            store_path, backend, spec.expand()[0].cell_id
        )
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("g@rbage not json\n")
            handle.write(json.dumps(
                record_for(spec.expand()[0], spec).to_dict()
            ) + "\n")
        with pytest.raises(CampaignError, match="corrupt record"):
            open_store(store_path).cell_records()

    def test_jsonl_foreign_header_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "something-else"}\n')
        with pytest.raises(StoreIntegrityError):
            open_store(path).header()

    def test_shards_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "broken.shards"
        path.mkdir()
        (path / "campaign.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreIntegrityError):
            open_store(str(path)).header()

    def test_shard_count_comes_from_header(self, tmp_path):
        # A store created with 4 shards must read as 4 shards even when
        # reopened with a different default.
        path = str(tmp_path / "fan.shards")
        spec = spec_of(cells=6)
        store = open_store(path, shards=4)
        store.initialise(spec)
        for cell in spec.expand():
            store.append_cell(record_for(cell, spec))
        store.close()
        reopened = open_store(path, shards=32)
        assert reopened.shard_count() == 4
        assert len(reopened.cell_records()) == 6

    def test_shard_routing_is_stable(self):
        ids = [f"noop:index={i}" for i in range(64)]
        first = [shard_index(cell_id, 8) for cell_id in ids]
        second = [shard_index(cell_id, 8) for cell_id in ids]
        assert first == second
        assert len(set(first)) > 1  # actually spreads across shards

    def test_sqlite_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"this is not a database\n")
        with pytest.raises((CampaignError, StoreIntegrityError)):
            open_store(path).header()

    def test_sqlite_corrupt_header_rejected(self, tmp_path):
        path = str(tmp_path / "corrupt.sqlite")
        store = open_store(path)
        store.initialise(spec_of())
        store.close()
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '{broken' WHERE key='header'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreIntegrityError):
            open_store(path).header()

    def test_resume_after_torn_append(self, store_path, backend):
        # A kill mid-append leaves a torn tail (jsonl/shards) or an
        # uncommitted row (sqlite); resume must re-run only that cell.
        spec = spec_of(cells=4, name="torn")
        cells = spec.expand()
        store = open_store(store_path)
        store.initialise(spec)
        for cell in cells[:2]:
            store.append_cell(record_for(cell, spec))
        store.close()
        if backend in ("jsonl", "shards"):
            target = self.jsonl_file_of(store_path, backend,
                                        cells[2].cell_id)
            with open(target, "a", encoding="utf-8") as handle:
                handle.write('{"type": "cell", "cell_id"')
        summary = run_campaign(spec, store_path, workers=1, resume=True)
        assert summary.skipped == 2 and summary.executed == 2
        final = open_store(store_path)
        assert final.completed_ids() == {c.cell_id for c in cells}
