"""ViSQOL-style audio scoring."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.media.audio import SpeechLikeSource
from repro.media.audio_codec import AudioCodec, AudioCodecConfig, AudioDecoder
from repro.qoe.visqol import mos_lqo, nsim_similarity, spectrogram


@pytest.fixture
def speech():
    return SpeechLikeSource().read_duration(0, 2.0)


class TestSpectrogram:
    def test_shape(self, speech):
        spec = spectrogram(speech)
        assert spec.shape[0] == 32  # mel bands
        assert spec.shape[1] > 10

    def test_normalised_range(self, speech):
        spec = spectrogram(speech)
        assert spec.min() >= 0.0 and spec.max() <= 1.0

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            spectrogram(np.zeros(100))


class TestNsim:
    def test_identical_is_one(self, speech):
        spec = spectrogram(speech)
        assert nsim_similarity(spec, spec) == pytest.approx(1.0)

    def test_shape_mismatch(self, speech):
        spec = spectrogram(speech)
        with pytest.raises(AnalysisError):
            nsim_similarity(spec, spec[:, :-3])

    def test_noise_lowers_similarity(self, speech):
        rng = np.random.default_rng(0)
        noisy = speech + rng.normal(0, 0.1, len(speech))
        a = spectrogram(speech)
        b = spectrogram(noisy)
        frames = min(a.shape[1], b.shape[1])
        assert nsim_similarity(a[:, :frames], b[:, :frames]) < 1.0


class TestMosLqo:
    def test_identical_scores_high(self, speech):
        assert mos_lqo(speech, speech) > 4.5

    def test_clean_codec_output_scores_high(self, speech):
        codec = AudioCodec(AudioCodecConfig(bitrate_bps=45_000))
        decoder = AudioDecoder(codec)
        usable = speech[: (len(speech) // 320) * 320]
        for frame in codec.encode(usable):
            decoder.push(frame)
        assert mos_lqo(usable, decoder.waveform()) > 4.0

    def test_heavy_loss_scores_low(self, speech):
        codec = AudioCodec(
            AudioCodecConfig(bitrate_bps=45_000, concealment="silence")
        )
        decoder = AudioDecoder(codec)
        usable = speech[: (len(speech) // 320) * 320]
        frames = codec.encode(usable)
        rng = np.random.default_rng(1)
        for frame in frames:
            if rng.random() > 0.5:
                decoder.push(frame)
        damaged_mos = mos_lqo(usable, decoder.waveform(len(frames)))
        assert damaged_mos < 3.0

    def test_repeat_conceals_better_than_silence(self, speech):
        usable = speech[: (len(speech) // 320) * 320]
        scores = {}
        for mode in ("repeat", "silence"):
            codec = AudioCodec(
                AudioCodecConfig(bitrate_bps=45_000, concealment=mode)
            )
            decoder = AudioDecoder(codec)
            frames = codec.encode(usable)
            rng = np.random.default_rng(2)
            for frame in frames:
                if rng.random() > 0.15:
                    decoder.push(frame)
            scores[mode] = mos_lqo(usable, decoder.waveform(len(frames)))
        assert scores["repeat"] > scores["silence"]

    def test_score_bounds(self, speech):
        assert 1.0 <= mos_lqo(speech, np.zeros_like(speech)) <= 5.0
