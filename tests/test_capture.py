"""Packet capture (the tcpdump model)."""

import pytest

from repro.errors import CaptureError
from repro.net.address import Address, EndpointKey
from repro.net.capture import Capture, CapturedPacket, Direction
from repro.net.packet import Packet, PacketKind


def record(capture, t, direction, payload=1000, kind=PacketKind.MEDIA_VIDEO,
           src=("10.0.0.1", 1000), dst=("172.16.0.1", 8801), flow="f1"):
    packet = Packet(
        src=Address(*src), dst=Address(*dst), payload_bytes=payload,
        kind=kind, flow_id=flow,
    )
    capture.record(packet, direction, t)
    return packet


class TestRecording:
    def test_records_when_running(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT)
        assert len(capture) == 1

    def test_stop_freezes(self):
        capture = Capture("host")
        capture.stop()
        record(capture, 1.0, Direction.OUT)
        assert len(capture) == 0

    def test_iteration(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT)
        assert all(isinstance(r, CapturedPacket) for r in capture)

    def test_span(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT)
        record(capture, 3.0, Direction.OUT)
        assert capture.span() == (1.0, 3.0)

    def test_span_empty_raises(self):
        with pytest.raises(CaptureError):
            Capture("host").span()


class TestFilters:
    def test_by_direction(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT)
        record(capture, 2.0, Direction.IN)
        assert len(capture.filter(direction=Direction.IN)) == 1

    def test_by_kind(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, kind=PacketKind.MEDIA_AUDIO)
        record(capture, 2.0, Direction.OUT, kind=PacketKind.PROBE)
        assert len(capture.filter(kind=PacketKind.PROBE)) == 1

    def test_by_kinds(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, kind=PacketKind.MEDIA_AUDIO)
        record(capture, 2.0, Direction.OUT, kind=PacketKind.MEDIA_VIDEO)
        record(capture, 3.0, Direction.OUT, kind=PacketKind.PROBE)
        media = capture.filter(
            kinds=(PacketKind.MEDIA_AUDIO, PacketKind.MEDIA_VIDEO)
        )
        assert len(media) == 2

    def test_kind_and_kinds_conflict(self):
        capture = Capture("host")
        with pytest.raises(CaptureError):
            capture.filter(kind=PacketKind.PROBE, kinds=(PacketKind.PROBE,))

    def test_by_flow(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, flow="a")
        record(capture, 2.0, Direction.OUT, flow="b")
        assert len(capture.filter(flow_id="a")) == 1

    def test_by_remote_port(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, dst=("172.16.0.1", 8801))
        record(capture, 2.0, Direction.OUT, dst=("172.16.0.2", 9000))
        assert len(capture.filter(remote_port=9000)) == 1

    def test_predicate(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, payload=100)
        record(capture, 2.0, Direction.OUT, payload=1500)
        big = capture.filter(predicate=lambda r: r.payload_bytes > 200)
        assert len(big) == 1


class TestSeriesAndRates:
    def test_time_size_series(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.IN, payload=700)
        series = capture.time_size_series(Direction.IN)
        assert series == [(1.0, 700)]

    def test_payload_rate(self):
        capture = Capture("host")
        record(capture, 0.0, Direction.IN, payload=125_000)
        record(capture, 1.0, Direction.IN, payload=125_000)
        # 250 KB over 1 s window = 2 Mbps.
        assert capture.payload_rate_bps(Direction.IN) == pytest.approx(2e6)

    def test_payload_rate_with_window(self):
        capture = Capture("host")
        record(capture, 0.0, Direction.IN, payload=1000)
        record(capture, 5.0, Direction.IN, payload=125_000)
        record(capture, 6.0, Direction.IN, payload=125_000)
        rate = capture.payload_rate_bps(Direction.IN, start=5.0, end=6.0)
        assert rate == pytest.approx(2e6)

    def test_rate_empty_window_raises(self):
        capture = Capture("host")
        with pytest.raises(CaptureError):
            capture.payload_rate_bps(Direction.IN)

    def test_total_payload(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.IN, payload=100)
        record(capture, 2.0, Direction.IN, payload=200)
        assert capture.total_payload_bytes(Direction.IN) == 300


class TestEndpointDiscovery:
    def test_remote_endpoint_of_out_packet_is_dst(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, dst=("172.16.0.9", 8801))
        endpoint = capture.filter()[0].remote_endpoint
        assert endpoint == EndpointKey("172.16.0.9", 8801, "udp")

    def test_remote_endpoint_of_in_packet_is_src(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.IN, src=("172.16.0.9", 8801))
        endpoint = capture.filter()[0].remote_endpoint
        assert endpoint.ip == "172.16.0.9"

    def test_media_only_excludes_probes(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, kind=PacketKind.PROBE,
               dst=("172.16.0.7", 8801))
        assert capture.remote_endpoints(media_only=True) == set()

    def test_distinct_endpoints_counted_once(self):
        capture = Capture("host")
        for t in (1.0, 2.0, 3.0):
            record(capture, t, Direction.OUT, dst=("172.16.0.9", 8801))
        assert len(capture.remote_endpoints()) == 1

    def test_port_filter(self):
        capture = Capture("host")
        record(capture, 1.0, Direction.OUT, dst=("172.16.0.9", 8801))
        record(capture, 2.0, Direction.OUT, dst=("172.16.0.8", 9000))
        endpoints = capture.remote_endpoints(port=9000)
        assert {e.port for e in endpoints} == {9000}
