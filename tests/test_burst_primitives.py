"""Unit coverage of the burst event core's vectorised primitives.

Each primitive (heap peek + horizon, batched clock skew, batched link
reservations, batched shaper submission, block captures, bulk packet-id
reservation) must be bit-identical to the scalar loop it replaces --
that is the burst core's whole contract.  The tests here diff each one
against its per-packet twin directly; end-to-end identity is covered by
``test_fast_lane_equivalence.py``.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

import repro.net.packet as packet_mod
from repro.net.capture import Capture, Direction
from repro.net.clock import Clock
from repro.net.link import AccessLink
from repro.net.packet import (
    HEADER_OVERHEAD_BYTES,
    Packet,
    PacketKind,
    Protocol,
    reserve_packet_ids,
)
from repro.net.address import Address
from repro.net.shaper import TokenBucketShaper
from repro.net.simulator import Simulator


class TestSimulatorPeekHorizon:
    def test_peek_time_empty_heap(self):
        assert Simulator().peek_time() == math.inf

    def test_peek_time_is_earliest_event(self):
        simulator = Simulator()
        simulator.schedule_at(2.0, lambda: None)
        simulator.schedule_at(1.0, lambda: None)
        assert simulator.peek_time() == 1.0

    def test_horizon_tracks_run_bound(self):
        simulator = Simulator()
        seen = []
        assert simulator.horizon == 0.0

        def probe():
            seen.append(simulator.horizon)

        simulator.schedule_at(1.0, probe)
        simulator.run(until=5.0)
        assert seen == [5.0]
        # After the run the horizon collapses back to "now": nothing
        # past the present may be bulk-committed outside run().
        assert simulator.horizon == simulator.now

    def test_horizon_unbounded_drain(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(1.0, lambda: seen.append(simulator.horizon))
        simulator.run()
        assert seen == [math.inf]


class TestClockBatch:
    @pytest.mark.parametrize("offset,drift", [(0.0, 0.0), (0.35, 40.0),
                                              (-0.02, -15.0)])
    def test_local_times_matches_scalar(self, offset, drift):
        clock = Clock(offset_s=offset, drift_ppm=drift)
        times = np.arange(400) * 5e-5 + 1.25
        batched = clock.local_times(times)
        scalar = np.array([clock.local_time(t) for t in times.tolist()])
        assert np.array_equal(batched, scalar)


class TestReservePacketIds:
    def test_cursor_matches_constructor_loop(self):
        packet_mod._packet_ids = itertools.count(1)
        start = reserve_packet_ids(5)
        assert start == 1
        # The global cursor sits exactly where 5 constructions leave it.
        src = Address("10.0.0.1", 4000)
        dst = Address("10.0.0.2", 5000)
        packet = Packet.fast(src, dst, 100, PacketKind.MEDIA_VIDEO, "f")
        assert packet.packet_id == 6
        assert reserve_packet_ids(3) == 7
        assert next(packet_mod._packet_ids) == 10


class TestLinkBatchReservations:
    def _times(self, n=64, start=1.0, pace=1e-3):
        return start + np.arange(n) * pace

    def test_uplink_batch_matches_scalar_loop(self):
        wire = np.full(64, 1228, dtype=np.int64)
        times = self._times()
        batched_link = AccessLink()
        scalar_link = AccessLink()
        departures = batched_link.reserve_uplink_batch(times, wire)
        scalar = [
            scalar_link.reserve_uplink(float(t), 1228)
            for t in times.tolist()
        ]
        assert departures is not None
        assert departures.tolist() == scalar
        assert batched_link._uplink_free == scalar_link._uplink_free

    def test_downlink_batch_matches_scalar_loop(self):
        wire = np.full(64, 1228, dtype=np.int64)
        times = self._times()
        batched_link = AccessLink()
        scalar_link = AccessLink()
        deliveries = batched_link.reserve_downlink_batch(times, wire)
        scalar = [
            scalar_link.reserve_downlink(float(t), 1228)
            for t in times.tolist()
        ]
        assert deliveries is not None
        assert deliveries.tolist() == scalar
        assert batched_link._downlink_free == scalar_link._downlink_free

    def test_uplink_batch_refuses_busy_serialiser(self):
        link = AccessLink()
        link._uplink_free = 2.0
        times = self._times(start=1.0)
        assert link.reserve_uplink_batch(times, np.full(64, 1228)) is None
        assert link._uplink_free == 2.0  # refusal mutates nothing

    def test_uplink_batch_refuses_overlap(self):
        # 1 Mbit/s: 1228 wire bytes serialise in ~9.8 ms, far beyond
        # the 1 ms grid -- departures would overlap emissions.
        link = AccessLink(uplink_bps=1_000_000.0)
        times = self._times()
        assert link.reserve_uplink_batch(times, np.full(64, 1228)) is None
        assert link._uplink_free == 0.0

    def test_downlink_batch_refuses_pending_backlog(self):
        link = AccessLink()
        link.push_pending_downlink(0.5, 1228)
        times = self._times()
        assert link.reserve_downlink_batch(times, np.full(64, 1228)) is None


class TestShaperBatch:
    def test_batch_matches_scalar_loop(self):
        times = 1.0 + np.arange(32) * 1e-3
        wire = np.full(32, 600, dtype=np.int64)
        batched = TokenBucketShaper(rate_bps=10_000_000.0)
        scalar = TokenBucketShaper(rate_bps=10_000_000.0)
        releases = batched.submit_batch(times, wire)
        expected = [scalar.submit(float(t), 600) for t in times.tolist()]
        assert releases is not None
        assert releases.tolist() == expected
        assert batched._virtual_finish == scalar._virtual_finish
        assert batched.stats.accepted == scalar.stats.accepted
        assert batched.stats.bytes_accepted == scalar.stats.bytes_accepted
        assert batched.stats.delayed == scalar.stats.delayed

    def test_batch_refuses_live_bucket_state(self):
        shaper = TokenBucketShaper(rate_bps=10_000_000.0)
        # A bucket-depth packet drains the whole burst credit: its
        # virtual finish lands at "now", intruding into any batch that
        # starts before the bucket has fully refilled.
        shaper.submit(1.0, shaper.burst_bytes)
        finish = shaper._virtual_finish
        assert finish == 1.0
        times = 1.0005 + np.arange(8) * 1e-3
        assert shaper.submit_batch(times, np.full(8, 600)) is None
        assert shaper._virtual_finish == finish
        assert shaper.stats.accepted == 1

    def test_batch_refuses_saturating_grid(self):
        # 1 Mbit/s shaped rate, 600B packets on a 1 ms grid: services
        # (~4.8 ms) overlap the emission spacing, so the idle-bucket
        # precondition cannot hold across the train.
        shaper = TokenBucketShaper(rate_bps=1_000_000.0)
        times = 1.0 + np.arange(8) * 1e-3
        assert shaper.submit_batch(times, np.full(8, 600)) is None
        assert shaper.stats.accepted == 0


class TestCaptureBlocks:
    def _addresses(self):
        return Address("10.0.0.1", 4000), Address("10.0.0.2", 5000)

    def _packet(self, src, dst, seq):
        packet_mod._packet_ids = itertools.count(seq + 1)
        return Packet.fast(src, dst, 1200, PacketKind.MEDIA_VIDEO,
                           "flow", seq=seq)

    def test_record_block_flattens_to_scalar_rows(self):
        src, dst = self._addresses()
        times = 1.0 + np.arange(10) * 1e-3
        sizes = [1200] * 10
        wires = [size + HEADER_OVERHEAD_BYTES for size in sizes]
        block = Capture("block")
        scalar = Capture("scalar")
        block.record_block(Direction.OUT, src, dst, Protocol.UDP,
                           PacketKind.MEDIA_VIDEO, times, wires, sizes,
                           "flow", packet_id_start=7)
        for i, stamp in enumerate(times.tolist()):
            scalar.record(self._packet(src, dst, 6 + i), Direction.OUT, stamp)
        assert len(block) == len(scalar) == 10
        assert [tuple(r) for r in block._rows] == \
            [tuple(r) for r in scalar._rows]

    def test_interleaved_rows_and_blocks_preserve_order(self):
        src, dst = self._addresses()
        capture = Capture("mix")
        capture.record(self._packet(src, dst, 0), Direction.OUT, 0.5)
        capture.record_block(Direction.OUT, src, dst, Protocol.UDP,
                             PacketKind.MEDIA_VIDEO, np.array([0.6, 0.7]),
                             [1228, 1228], [1200, 1200], "flow", 2)
        capture.record(self._packet(src, dst, 3), Direction.OUT, 0.8)
        assert len(capture) == 4
        stamps = [row[0] for row in capture._rows]
        assert stamps == [0.5, 0.6, 0.7, 0.8]
        ids = [row[9] for row in capture._rows]
        assert ids == [1, 2, 3, 4]

    def test_columns_and_iteration_see_block_rows(self):
        src, dst = self._addresses()
        capture = Capture("cols")
        times = np.arange(5) * 1e-3
        capture.record_block(Direction.IN, src, dst, Protocol.UDP,
                             PacketKind.MEDIA_VIDEO, times, [1228] * 5,
                             [1200] * 5, "flow", 1)
        assert capture.total_payload_bytes(Direction.IN) == 5 * 1200
        assert capture.span() == (0.0, times[-1])
        records = list(capture)
        assert [r.packet_id for r in records] == [1, 2, 3, 4, 5]
        assert all(r.wire_bytes == 1228 for r in records)

    def test_stopped_capture_ignores_blocks(self):
        src, dst = self._addresses()
        capture = Capture("stopped")
        capture.stop()
        capture.record_block(Direction.IN, src, dst, Protocol.UDP,
                             PacketKind.MEDIA_VIDEO, np.array([0.1]),
                             [1228], [1200], "flow", 1)
        assert len(capture) == 0
