"""The campaign fabric: executors, retries, checkpoints, streaming.

Worker crashes here are real: the ``noop`` calibration kind SIGKILLs
its own worker process on a cell's first attempt (``crash_flag``), so
the pool-rebuild and spawn-respawn paths are exercised with actual
dead processes, not mocks.
"""

import json
import os
import random

import pytest

from repro.campaign import (
    CampaignScheduler,
    FabricConfig,
    StreamingAggregator,
    build_report,
    calibration_campaign,
    open_store,
    run_campaign,
    watch_store,
)
from repro.campaign.fabric.executors import (
    InlineExecutor,
    LocalWorkerFabricExecutor,
    ProcessPoolFabricExecutor,
    make_executor,
)
from repro.campaign.fabric.scheduler import CHECKPOINT_NAME
from repro.cli import main
from repro.errors import CampaignError


def ok_metrics(store_path):
    store = open_store(store_path)
    return {
        r.cell_id: r.metrics for r in store.cell_records() if r.ok
    }


class TestExecutors:
    def test_make_executor_auto(self):
        assert isinstance(make_executor("auto", 1), InlineExecutor)
        assert isinstance(make_executor("auto", 3),
                          ProcessPoolFabricExecutor)
        assert isinstance(make_executor("spawn", 2),
                          LocalWorkerFabricExecutor)

    def test_unknown_executor_rejected(self):
        with pytest.raises(CampaignError):
            make_executor("teleport", 1)

    @pytest.mark.parametrize("executor,workers", [
        ("inline", 1), ("pool", 2), ("spawn", 2),
    ])
    def test_executors_produce_identical_cells(self, tmp_path, executor,
                                               workers):
        spec = calibration_campaign(cells=8, name="equiv")
        path = str(tmp_path / f"{executor}.jsonl")
        summary = run_campaign(
            spec, path, workers=workers, executor=executor
        )
        assert summary.executed == 8 and summary.failed == 0
        reference = str(tmp_path / "ref.jsonl")
        run_campaign(spec, reference, workers=1)
        assert ok_metrics(path) == ok_metrics(reference)

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(
                calibration_campaign(cells=2),
                str(tmp_path / "x.jsonl"), workers=0,
            )

    def _unit(self, unit_id=0):
        from repro.campaign.fabric.executors import WorkUnit

        payload = {
            "cell_id": f"noop:index={unit_id}", "kind": "noop",
            "params": {"index": unit_id}, "seed": 1,
            "spec_hash": "x" * 16, "scale": {},
        }
        return WorkUnit(unit_id=unit_id, payloads=(payload,))

    @pytest.mark.parametrize("name,workers", [
        ("inline", 1), ("pool", 2), ("spawn", 2),
    ])
    def test_abandon_returns_pending_not_worker_death(self, name, workers):
        """The crash-loop breaker relies on abandon(): every queued
        payload comes back as an orderly UnitFailed so it can be
        resubmitted elsewhere, with ``worker_death`` unset so abandoned
        cells never accumulate kills toward quarantine."""
        from repro.campaign.fabric.executors import UnitFailed

        executor = make_executor(name, workers)
        executor.start()
        try:
            units = [self._unit(i) for i in range(3)]
            for unit in units:
                executor.submit(unit)
            abandoned = executor.abandon()
        finally:
            executor.shutdown()
        assert executor.outstanding() == 0
        pending = [p for event in abandoned for p in event.pending]
        assert all(isinstance(event, UnitFailed) for event in abandoned)
        assert all(not event.worker_death for event in abandoned)
        # Units may already be mid-flight (pool/spawn), so abandon
        # returns a subset; everything it does return must be intact.
        for payload in pending:
            assert payload["kind"] == "noop"


class TestCrashRecovery:
    def crash_spec(self, tmp_path, cells=4):
        flag = str(tmp_path / "crash.flag")
        return flag, calibration_campaign(
            cells=cells, crash_flags=(flag,), name="crashy"
        )

    @pytest.mark.parametrize("executor", ["pool", "spawn"])
    def test_worker_crash_is_retried_not_fatal(self, tmp_path, executor):
        flag, spec = self.crash_spec(tmp_path)
        path = str(tmp_path / f"{executor}.jsonl")
        summary = run_campaign(
            spec, path, workers=2, executor=executor, max_attempts=3
        )
        assert summary.failed == 0
        assert summary.executed == spec.cell_count()
        assert summary.retried >= 1
        assert os.path.exists(flag)  # the crash really happened
        # Retried content matches a crash-free inline run bit for bit.
        reference = str(tmp_path / "ref.jsonl")
        run_campaign(spec, reference, workers=1)  # flag exists: no crash
        assert ok_metrics(path) == ok_metrics(reference)

    def test_retry_budget_exhaustion_records_error(self, tmp_path):
        # Every attempt of the crash cell kills its worker: with the
        # flag re-deleted by a wrapper we can't do per-attempt, so use
        # max_attempts=1 -- the single crash exhausts the budget.
        flag, spec = self.crash_spec(tmp_path, cells=2)
        path = str(tmp_path / "exhaust.jsonl")
        summary = run_campaign(
            spec, path, workers=2, executor="pool", max_attempts=1
        )
        assert summary.failed >= 1
        errors = [r for r in summary.records if not r.ok]
        assert any("fabric:" in r.error and "attempt 1/1" in r.error
                   for r in errors)
        # The run terminated with one final outcome per cell.
        assert summary.executed == spec.cell_count()

    def test_spawn_cell_timeout_kills_worker(self, tmp_path):
        # One cell spins for 30s against a 0.4s budget.
        spec = calibration_campaign(cells=1, spin_ms=30_000.0,
                                    name="stuck")
        path = str(tmp_path / "timeout.jsonl")
        summary = run_campaign(
            spec, path, workers=1, executor="spawn",
            max_attempts=1, cell_timeout_s=0.4,
        )
        assert summary.failed == 1
        assert "timeout" in summary.records[0].error

    def test_failed_cells_rerun_on_resume(self, tmp_path):
        flag, spec = self.crash_spec(tmp_path, cells=2)
        path = str(tmp_path / "resume.jsonl")
        first = run_campaign(
            spec, path, workers=2, executor="pool", max_attempts=1
        )
        assert first.failed >= 1
        # The crash flag now exists, so the rerun succeeds.
        second = run_campaign(
            spec, path, workers=1, resume=True
        )
        assert second.failed == 0
        store = open_store(path)
        assert len(store.completed_ids()) == spec.cell_count()


class TestScheduler:
    def test_config_validation(self):
        with pytest.raises(CampaignError):
            FabricConfig(workers=0)
        with pytest.raises(CampaignError):
            FabricConfig(max_attempts=0)
        with pytest.raises(CampaignError):
            FabricConfig(shard_size=0)

    def test_shard_sizing(self):
        assert FabricConfig(executor="pool", workers=4).resolve_shard_size(100) == 1
        spawn = FabricConfig(executor="spawn", workers=2)
        assert spawn.resolve_shard_size(64) == 8
        assert spawn.resolve_shard_size(4) == 1
        assert FabricConfig(executor="spawn", workers=1,
                            shard_size=5).resolve_shard_size(64) == 5

    def test_adaptive_shard_sizing_from_rate(self):
        spawn = FabricConfig(executor="spawn", workers=2)
        # No throughput estimate yet: the static heuristic.
        assert spawn.resolve_shard_size(64, None) == 8
        # 8 cells/s over 2 workers at 2s-of-work units -> 8 cells each.
        assert spawn.resolve_shard_size(64, 8.0) == 8
        # Slow cells requeue as single-cell units.
        assert spawn.resolve_shard_size(64, 0.5) == 1
        # Fast cells clamp at the monopolisation cap...
        assert spawn.resolve_shard_size(1000, 400.0) == 16
        # ...and never exceed the work actually pending.
        assert spawn.resolve_shard_size(3, 400.0) == 3
        # Explicit shard_size still wins; pool stays single-cell.
        assert FabricConfig(executor="spawn", workers=2,
                            shard_size=5).resolve_shard_size(64, 8.0) == 5
        assert FabricConfig(executor="pool",
                            workers=4).resolve_shard_size(64, 8.0) == 1

    def test_checkpoint_cleared_on_completion(self, tmp_path):
        spec = calibration_campaign(cells=3, name="ckpt")
        path = str(tmp_path / "c.jsonl")
        scheduler = CampaignScheduler(spec, path)
        scheduler.run()
        assert not os.path.exists(path + "." + CHECKPOINT_NAME)

    def test_checkpoint_survives_failure_and_clears_after(self, tmp_path):
        flag = str(tmp_path / "crash.flag")
        spec = calibration_campaign(cells=2, crash_flags=(flag,),
                                    name="ckpt2")
        path = str(tmp_path / "c.jsonl")
        run_campaign(spec, path, workers=2, executor="pool",
                     max_attempts=1)
        checkpoint = path + "." + CHECKPOINT_NAME
        assert os.path.exists(checkpoint)
        state = json.load(open(checkpoint))
        assert state["spec_hash"] == spec.spec_hash()
        assert state["attempts"]  # the crashed cell spent an attempt
        # Flag exists now; resume completes and clears the checkpoint.
        run_campaign(spec, path, workers=1, resume=True)
        assert not os.path.exists(checkpoint)

    def test_scheduler_aggregator_is_live(self, tmp_path):
        spec = calibration_campaign(cells=5, name="live")
        scheduler = CampaignScheduler(spec, str(tmp_path / "c.sqlite"))
        scheduler.run()
        snapshot = scheduler.aggregator.snapshot()
        assert snapshot.complete
        assert snapshot.ok == 5 and snapshot.failed == 0


class TestStreamingAggregation:
    def folded_report(self, spec, records):
        aggregator = StreamingAggregator(spec)
        for record in records:
            aggregator.fold(record)
        return aggregator.build_report().render()

    def test_streaming_matches_batch_any_order(self, tmp_path):
        spec = calibration_campaign(cells=6, name="order")
        path = str(tmp_path / "c.jsonl")
        run_campaign(spec, path, workers=1)
        records = open_store(path).cell_records()
        batch = build_report(spec, records).render()
        assert self.folded_report(spec, records) == batch
        shuffled = list(records)
        random.Random(3).shuffle(shuffled)
        assert self.folded_report(spec, shuffled) == batch

    def test_streaming_matches_batch_on_real_kinds(self, tmp_path):
        from repro.campaign import smoke_campaign

        spec = smoke_campaign()
        path = str(tmp_path / "smoke.jsonl")
        run_campaign(spec, path, workers=1)
        records = open_store(path).cell_records()
        batch = build_report(spec, records).render()
        assert self.folded_report(spec, records) == batch
        assert "Streaming lag" in batch and "Video QoE" in batch

    def test_snapshot_progress(self):
        spec = calibration_campaign(cells=4, name="snap")
        aggregator = StreamingAggregator(spec)
        snapshot = aggregator.snapshot()
        assert snapshot.total == 4 and snapshot.pending == 4
        assert not snapshot.complete
        from repro.campaign.runner import _cell_payload, execute_cell

        for index, cell in enumerate(spec.expand()):
            payload = execute_cell(
                _cell_payload(cell, spec, spec.spec_hash())
            )
            from repro.campaign import CellRecord
            aggregator.fold(
                CellRecord.from_dict(payload), arrival=float(index)
            )
        snapshot = aggregator.snapshot()
        assert snapshot.complete and snapshot.ok == 4
        assert snapshot.cells_per_s == pytest.approx(1.0)
        assert snapshot.eta_s is None

    def test_failure_superseded_by_ok(self):
        from repro.campaign import CellRecord

        spec = calibration_campaign(cells=1, name="supersede")
        cell = spec.expand()[0]
        base = dict(cell_id=cell.cell_id, kind=cell.kind,
                    params=dict(cell.params), seed=cell.seed,
                    spec_hash=spec.spec_hash())
        aggregator = StreamingAggregator(spec)
        aggregator.fold(CellRecord(status="error", error="boom", **base))
        assert aggregator.failed_count == 1
        aggregator.fold(CellRecord(
            status="ok", metrics={"index": 0, "value": 1}, **base
        ))
        assert aggregator.failed_count == 0
        assert "## Failures" not in aggregator.build_report().render()

    def record_of(self, spec, cell, status="ok"):
        from repro.campaign import CellRecord

        return CellRecord(
            cell_id=cell.cell_id, kind=cell.kind,
            params=dict(cell.params), seed=cell.seed,
            spec_hash=spec.spec_hash(), status=status,
            metrics={"index": cell.params["index"], "value": 1}
            if status == "ok" else None,
            error=None if status == "ok" else "boom",
        )

    def test_cells_per_s_property(self):
        spec = calibration_campaign(cells=4, name="rate")
        cells = spec.expand()
        aggregator = StreamingAggregator(spec)
        assert aggregator.cells_per_s is None
        for index, cell in enumerate(cells[:3]):
            aggregator.fold(self.record_of(spec, cell),
                            arrival=float(index))
        assert aggregator.cells_per_s == pytest.approx(1.0)

    def test_seed_does_not_fabricate_a_rate(self, tmp_path):
        spec = calibration_campaign(cells=6, name="seeded")
        path = str(tmp_path / "s.jsonl")
        run_campaign(spec, path, workers=1)
        aggregator = StreamingAggregator(spec)
        aggregator.seed(open_store(path).cell_records())
        # Replaying history in a tight loop must not look like
        # thousands of cells/s to the adaptive shard sizing.
        assert aggregator.cells_per_s is None

    def test_kind_deltas_dirty_tracking(self):
        spec = calibration_campaign(cells=3, name="deltas")
        cells = spec.expand()
        aggregator = StreamingAggregator(spec)
        assert aggregator.kind_deltas() == []
        aggregator.fold(self.record_of(spec, cells[0], status="error"))
        assert aggregator.kind_deltas() == [("noop", 0, 1)]
        # Quiet between calls: nothing to report, nothing recomputed.
        assert aggregator.kind_deltas() == []
        # The retry's ok supersedes the failure and lands a cell.
        aggregator.fold(self.record_of(spec, cells[0]))
        aggregator.fold(self.record_of(spec, cells[1]))
        assert aggregator.kind_deltas() == [("noop", 2, -1)]
        # A duplicate ok for the same cell moves no distinct counts.
        aggregator.fold(self.record_of(spec, cells[1]))
        assert aggregator.kind_deltas() == []


class TestWatch:
    def test_watch_once_renders_progress(self, tmp_path, capsys):
        spec = calibration_campaign(cells=4, name="watched")
        path = str(tmp_path / "w.sqlite")
        run_campaign(spec, path, workers=1)
        report_path = str(tmp_path / "live.md")
        snapshot = watch_store(path, once=True, report_path=report_path)
        assert snapshot.complete
        out = capsys.readouterr().out
        assert "4/4 ok" in out
        live = open(report_path).read()
        batch = build_report(
            spec, open_store(path).cell_records()
        ).render()
        assert live == batch

    def test_watch_follows_until_complete(self, tmp_path):
        import io

        spec = calibration_campaign(cells=3, name="follow")
        path = str(tmp_path / "f.jsonl")
        run_campaign(spec, path, workers=1)
        stream = io.StringIO()
        snapshot = watch_store(
            path, interval_s=0.01, stream=stream, max_ticks=5
        )
        assert snapshot.complete  # completes on the first tick
        assert "3/3 ok" in stream.getvalue()

    def test_watch_missing_store_errors(self, tmp_path):
        with pytest.raises(CampaignError):
            watch_store(str(tmp_path / "absent.jsonl"), once=True)

    def test_watch_renders_kind_deltas_between_ticks(self, tmp_path):
        import io
        import threading

        from repro.campaign import CellRecord

        spec = calibration_campaign(cells=4, name="moves")
        cells = spec.expand()

        def record(cell):
            return CellRecord(
                cell_id=cell.cell_id, kind=cell.kind,
                params=dict(cell.params), seed=cell.seed,
                spec_hash=spec.spec_hash(),
                metrics={"index": cell.params["index"], "value": 1},
            )

        path = str(tmp_path / "d.jsonl")
        writer = open_store(path)
        writer.initialise(spec)
        for cell in cells[:2]:
            writer.append_cell(record(cell))
        writer.flush()

        first_tick = threading.Event()

        class TickStream(io.StringIO):
            def write(self, text):
                result = super().write(text)
                first_tick.set()
                return result

        def finish():
            # Only append once the watcher has printed its baseline
            # tick, so the remaining cells are guaranteed to arrive
            # *between* ticks.
            first_tick.wait(timeout=10.0)
            for cell in cells[2:]:
                writer.append_cell(record(cell))
            writer.close()

        appender = threading.Thread(target=finish)
        appender.start()
        stream = TickStream()
        try:
            snapshot = watch_store(
                path, interval_s=0.02, stream=stream, max_ticks=200
            )
        finally:
            appender.join()
        assert snapshot.complete
        out = stream.getvalue()
        # Tick blocks each start with the campaign banner line.
        ticks = out.split("campaign 'moves'")
        assert "delta" not in ticks[1]  # baseline tick: no movement
        assert "delta noop       +2 ok" in out

    def test_watch_surfaces_fabric_degradation(self, tmp_path, capsys):
        """A watcher must see quarantine/degradation/backoff state from
        the checkpoint sidecar, not just per-cell progress."""
        import json as json_mod
        import time as time_mod

        spec = calibration_campaign(cells=3, name="degraded")
        path = str(tmp_path / "h.jsonl")
        run_campaign(spec, path, workers=1)
        store = open_store(path)
        sidecar = {
            "spec_hash": spec.spec_hash(),
            "attempts": {},
            "kills": {"noop:index=0,spin_ms=0.0": 3},
            "quarantined": ["noop:index=0,spin_ms=0.0"],
            "degraded": "spawn->inline after 3 consecutive "
                        "worker-death polls with no completed cells",
            "backoff": {"noop:index=1,spin_ms=0.0": time_mod.time() + 60},
            "updated_at": time_mod.time(),
        }
        with open(store.sidecar_path("fabric.json"), "w") as handle:
            json_mod.dump(sidecar, handle)
        watch_store(path, once=True)
        out = capsys.readouterr().out
        assert "1 quarantined poison cell(s)" in out
        assert "noop:index=0,spin_ms=0.0" in out
        assert "executor degraded -- spawn->inline" in out
        assert "1 cell(s) in retry backoff" in out

    def test_watch_tolerates_torn_sidecar(self, tmp_path, capsys):
        spec = calibration_campaign(cells=2, name="torn-sidecar")
        path = str(tmp_path / "t.jsonl")
        run_campaign(spec, path, workers=1)
        store = open_store(path)
        with open(store.sidecar_path("fabric.json"), "w") as handle:
            handle.write('{"quarantined": ["noo')  # writer mid-replace
        snapshot = watch_store(path, once=True)
        assert snapshot.complete  # torn health never breaks the watch


class TestFabricCli:
    def test_calibration_run_and_watch(self, tmp_path, capsys):
        store = str(tmp_path / "cal.shards")
        assert main([
            "campaign", "run", "--calibration", "6", "--store", store,
            "--workers", "2", "--executor", "pool",
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "watch", "--store", store, "--once"]) == 0
        out = capsys.readouterr().out
        assert "6/6 ok" in out

    def test_spec_json_round_trip(self, tmp_path, capsys):
        spec = calibration_campaign(cells=3, name="fromjson")
        spec_path = str(tmp_path / "spec.json")
        spec.save(spec_path)
        store = str(tmp_path / "s.jsonl")
        assert main([
            "campaign", "run", "--spec-json", spec_path,
            "--store", store,
        ]) == 0
        assert "campaign 'fromjson'" in capsys.readouterr().out
        assert open_store(store).spec_hash() == spec.spec_hash()

    def test_gc_subcommand(self, tmp_path, capsys):
        flag = str(tmp_path / "crash.flag")
        spec = calibration_campaign(cells=3, crash_flags=(flag,),
                                    name="gccli")
        spec_path = str(tmp_path / "spec.json")
        spec.save(spec_path)
        store = str(tmp_path / "gc.jsonl")
        # First run records an error for the crash cell; the resume's
        # retry supersedes it, leaving debris for gc to drop.
        main(["campaign", "run", "--spec-json", spec_path,
              "--store", store, "--workers", "2", "--executor", "pool",
              "--max-attempts", "1"])
        assert main(["campaign", "run", "--spec-json", spec_path,
                     "--store", store, "--resume"]) == 0
        capsys.readouterr()
        assert main(["campaign", "gc", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 superseded error record" in out
        store_obj = open_store(store)
        # Post-gc the store holds exactly one ok record per cell.
        assert len(store_obj.cell_records()) == spec.cell_count()
        assert len(store_obj.completed_ids()) == spec.cell_count()

    def test_status_and_report_on_sqlite(self, tmp_path, capsys):
        store = str(tmp_path / "cli.sqlite")
        assert main([
            "campaign", "run", "--calibration", "4", "--store", store,
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", store]) == 0
        assert "noop" in capsys.readouterr().out
        assert main(["campaign", "report", "--store", store]) == 0
        assert "Scheduler calibration" in capsys.readouterr().out

    def test_chaos_subcommand_single_case(self, tmp_path, capsys):
        """One cheap case through the real CLI; the full matrix is the
        CI chaos step's job."""
        assert main([
            "campaign", "chaos", "--quick", "--backends", "jsonl",
            "--faults", "slow", "--workdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos[jsonl/slow]: PASS" in out
        assert "1/1 cases survived" in out

    def test_chaos_rejects_unknown_fault(self, tmp_path, capsys):
        assert main([
            "campaign", "chaos", "--quick", "--faults", "gremlins",
            "--workdir", str(tmp_path),
        ]) == 2
        assert "unknown fault class" in capsys.readouterr().err
