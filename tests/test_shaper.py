"""Token-bucket ingress shaper (the tc/ifb model)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.shaper import TokenBucketShaper
from repro.units import kbps, mbps


class TestConstruction:
    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(rate_bps=0)

    def test_rejects_zero_burst(self):
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(rate_bps=1e6, burst_bytes=0)

    def test_burst_seconds(self):
        shaper = TokenBucketShaper(rate_bps=1e6, burst_bytes=12_500)
        assert shaper.burst_seconds == pytest.approx(0.1)


class TestPassThrough:
    def test_within_burst_released_immediately(self):
        shaper = TokenBucketShaper(rate_bps=mbps(1), burst_bytes=16_000)
        release = shaper.submit(now=1.0, wire_bytes=1000)
        assert release == pytest.approx(1.0)

    def test_idle_periods_restore_burst(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100), burst_bytes=4000)
        assert shaper.submit(0.0, 4000) is not None
        # Long idle -> bucket refills completely.
        release = shaper.submit(100.0, 4000)
        assert release == pytest.approx(100.0)


class TestQueueing:
    def test_sustained_overload_delays(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100), burst_bytes=1000)
        releases = []
        for i in range(10):
            release = shaper.submit(0.0, 1000)
            if release is not None:
                releases.append(release)
        assert len(releases) >= 2
        assert releases == sorted(releases)

    def test_tail_drop_when_queue_full(self):
        shaper = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=0.1
        )
        outcomes = [shaper.submit(0.0, 1000) for _ in range(50)]
        assert any(o is None for o in outcomes)
        assert shaper.stats.dropped > 0

    def test_drop_decision_size_unbiased(self):
        """Once the queue is full, small packets are dropped too."""
        shaper = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=0.05
        )
        # Saturate with big packets.
        for _ in range(100):
            shaper.submit(0.0, 1500)
        assert shaper.submit(0.0, 50) is None

    def test_output_rate_close_to_cap(self):
        shaper = TokenBucketShaper(rate_bps=mbps(1), burst_bytes=8000)
        accepted_bytes = 0
        last_release = 0.0
        # Offer 2 Mbps for one second in 1 ms steps.
        for step in range(1000):
            now = step / 1000.0
            release = shaper.submit(now, 250)
            if release is not None:
                accepted_bytes += 250
                last_release = max(last_release, release)
        achieved = accepted_bytes * 8 / max(last_release, 1.0)
        assert achieved <= 1.3e6
        assert achieved >= 0.7e6


class TestStats:
    def test_counters_add_up(self):
        shaper = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=0.05
        )
        total = 40
        for _ in range(total):
            shaper.submit(0.0, 1000)
        assert shaper.stats.accepted + shaper.stats.dropped == total

    def test_drop_fraction(self):
        shaper = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=0.0
        )
        shaper.submit(0.0, 1000)
        shaper.submit(0.0, 1000)
        assert 0.0 <= shaper.stats.drop_fraction <= 1.0

    def test_reset_clears_state(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100), burst_bytes=1000)
        shaper.submit(0.0, 1000)
        shaper.reset()
        assert shaper.stats.accepted == 0
        assert shaper.submit(0.0, 1000) == pytest.approx(0.0)
