"""Client stack: dispatch, receiver engine, recorder, controller, mobile."""

import numpy as np
import pytest

from repro.clients.android import ANDROID_DEVICES, GALAXY_J3, GALAXY_S10
from repro.clients.controller import WorkflowStep, standard_workflow
from repro.clients.cpu import CpuModel
from repro.clients.power import BatteryModel, MonsoonMeter, PowerRailModel
from repro.clients.receiver import FlowStats
from repro.clients.recorder import DesktopRecorder
from repro.clients.wifi import residential_wifi_link
from repro.core.session import SessionConfig
from repro.errors import ConfigurationError, SessionError
from repro.media.frames import FrameSpec
from repro.units import mbps


class TestFlowStats:
    def test_counts(self):
        stats = FlowStats()
        stats.on_packet(0, 100)
        stats.on_packet(1, 200)
        assert stats.packets == 2
        assert stats.bytes == 300

    def test_window_loss_zero_when_contiguous(self):
        stats = FlowStats()
        for seq in range(10):
            stats.on_packet(seq, 100)
        assert stats.take_window_loss() == 0.0

    def test_window_loss_detects_gaps(self):
        stats = FlowStats()
        for seq in (0, 1, 2, 7, 8, 9):
            stats.on_packet(seq, 100)
        assert stats.take_window_loss() == pytest.approx(0.4)

    def test_window_resets(self):
        stats = FlowStats()
        for seq in (0, 5):
            stats.on_packet(seq, 100)
        stats.take_window_loss()
        for seq in (6, 7, 8):
            stats.on_packet(seq, 100)
        assert stats.take_window_loss() == 0.0

    def test_empty_window(self):
        assert FlowStats().take_window_loss() == 0.0


class TestController:
    def test_standard_workflow_steps(self):
        names = [s.name for s in standard_workflow()]
        assert names == ["launch", "login", "join", "configure-layout"]

    def test_negative_duration_rejected(self):
        with pytest.raises(SessionError):
            WorkflowStep("x", -1.0)

    def test_workflow_executes_in_order(self, testbed):
        client = testbed.add_vm("US-East")
        done = []
        steps = [
            WorkflowStep("a", 1.0, lambda: done.append("a")),
            WorkflowStep("b", 2.0, lambda: done.append("b")),
        ]
        client.controller.run_workflow(steps, on_complete=lambda: done.append("!"))
        testbed.network.simulator.run()
        assert done == ["a", "b", "!"]
        assert [s.name for s in client.controller.timeline] == ["a", "b"]

    def test_timeline_durations(self, testbed):
        client = testbed.add_vm("US-East")
        client.controller.run_workflow([WorkflowStep("a", 1.5)])
        testbed.network.simulator.run()
        step = client.controller.timeline[0]
        assert step.finished_at - step.started_at == pytest.approx(1.5)

    def test_busy_controller_rejects(self, testbed):
        client = testbed.add_vm("US-East")
        client.controller.run_workflow([WorkflowStep("a", 1.0)])
        with pytest.raises(SessionError):
            client.controller.run_workflow([WorkflowStep("b", 1.0)])

    def test_empty_workflow_rejected(self, testbed):
        client = testbed.add_vm("US-East")
        with pytest.raises(SessionError):
            client.controller.run_workflow([])


class TestRecorderUnit:
    def test_rejects_bad_resample(self, testbed):
        client = testbed.add_vm("US-East")
        with pytest.raises(SessionError):
            DesktopRecorder(client, FrameSpec(64, 48, 10), 0.1,
                            resample_factor=1.5)

    def test_records_black_before_first_decode(self, testbed):
        client = testbed.add_vm("US-East")
        from repro.media.video_codec import VideoDecoder

        spec = FrameSpec(64, 48, 10)
        recorder = DesktopRecorder(client, spec, pad_fraction=0.15)
        recorder.start(VideoDecoder(spec), duration_s=0.5)
        testbed.network.simulator.run()
        assert len(recorder.frames) == 5
        # Widgets drawn over an otherwise black desktop.
        assert recorder.frames[0].max() > 0

    def test_stop_ends_recording(self, testbed):
        client = testbed.add_vm("US-East")
        from repro.media.video_codec import VideoDecoder

        spec = FrameSpec(64, 48, 10)
        recorder = DesktopRecorder(client, spec, pad_fraction=0.0)
        recorder.start(VideoDecoder(spec), duration_s=10.0)
        testbed.network.simulator.run(until=0.35)
        recorder.stop()
        testbed.network.simulator.run()
        assert len(recorder.frames) <= 5

    def test_tick_timestamps_do_not_drift(self, testbed):
        # Regression: relative schedule(1/fps) calls accumulated float
        # rounding error over long sessions; ticks must sit on exact
        # multiples of the frame period from the recording start.
        client = testbed.add_vm("US-East")
        from repro.media.video_codec import VideoDecoder

        spec = FrameSpec(64, 48, 30)  # 1/30 is inexact in binary
        recorder = DesktopRecorder(
            client, spec, pad_fraction=0.0,
            resample_factor=1.0, draw_widgets=False,
        )
        recorder.start(VideoDecoder(spec), duration_s=60.0)
        testbed.network.simulator.run()
        timestamps = np.array(recorder.timestamps)
        assert len(timestamps) == 1800
        expected = np.arange(1800) / 30
        assert np.max(np.abs(timestamps - expected)) == 0.0

    def test_frames_head_matches_full_finalize(self, testbed):
        client = testbed.add_vm("US-East")
        from repro.media.video_codec import VideoDecoder

        spec = FrameSpec(64, 48, 10)
        recorder = DesktopRecorder(client, spec, pad_fraction=0.15)
        recorder.start(VideoDecoder(spec), duration_s=2.0)
        testbed.network.simulator.run()
        head = [f.copy() for f in recorder.frames_head(7)]
        assert len(head) == 7
        full = recorder.frames
        assert len(full) == 20
        for early, late in zip(head, full):
            assert np.array_equal(early, late)


class TestCpuModel:
    def test_meet_costs_more_than_zoom_highend(self):
        zoom = CpuModel("zoom", "mobile-highend")
        meet = CpuModel("meet", "mobile-highend")
        args = dict(incoming_video_bps=mbps(1), view_mode="fullscreen",
                    camera_on=False, screen_on=True)
        assert meet.demand_pct(**args, thumbnail_count=2) > zoom.demand_pct(
            **args, thumbnail_count=1
        )

    def test_lowend_saturates(self):
        model = CpuModel("meet", "mobile-lowend")
        demand = model.demand_pct(
            incoming_video_bps=mbps(2.5), view_mode="fullscreen",
            camera_on=True, screen_on=True, thumbnail_count=4,
        )
        assert demand == model.throttle_cap_pct

    def test_camera_cost_by_device(self):
        for device, extra in (("mobile-highend", 100), ("mobile-lowend", 50)):
            model = CpuModel("zoom", device)
            off = model.demand_pct(mbps(0.5), "fullscreen", False, True)
            on = model.demand_pct(mbps(0.5), "fullscreen", True, True)
            if device == "mobile-highend":
                assert on - off == pytest.approx(extra)

    def test_webex_screen_off_stays_high(self):
        webex = CpuModel("webex", "mobile-highend")
        zoom = CpuModel("zoom", "mobile-highend")
        assert webex.demand_pct(0, "fullscreen", False, False) > 100
        assert zoom.demand_pct(0, "fullscreen", False, False) < 60

    def test_zoom_gallery_cheaper_than_fullscreen(self):
        model = CpuModel("zoom", "mobile-highend")
        full = model.demand_pct(mbps(0.85), "fullscreen", False, True)
        gallery = model.demand_pct(mbps(0.33), "gallery", False, True)
        assert gallery < 0.7 * full

    def test_unknown_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuModel("facetime", "mobile-highend")

    def test_sample_noise_bounded(self, rng):
        model = CpuModel("zoom", "mobile-highend", noise_pct=5.0)
        samples = [
            model.sample(rng, 0.0, mbps(1), "fullscreen", False, True).usage_pct
            for _ in range(100)
        ]
        demand = model.demand_pct(mbps(1), "fullscreen", False, True)
        assert abs(np.mean(samples) - demand) < 3.0


class TestPowerAndBattery:
    def test_power_components_additive(self):
        rails = PowerRailModel()
        base = rails.power_w(0, False, False, 0)
        with_screen = rails.power_w(0, True, False, 0)
        assert with_screen - base == pytest.approx(rails.screen_w)

    def test_cpu_power_scales(self):
        rails = PowerRailModel()
        low = rails.power_w(100, True, False, 0)
        high = rails.power_w(200, True, False, 0)
        assert high - low == pytest.approx(rails.cpu_w_per_100pct)

    def test_meter_integration(self, rng):
        meter = MonsoonMeter(rng, noise_w=0.0)
        # 3.85 W for one hour = 1000 mAh at 3.85 V.
        for i in range(61):
            meter.record(i * 60.0, 3.85)
        assert meter.discharge_mah() == pytest.approx(1000.0, rel=0.01)

    def test_meter_empty(self, rng):
        assert MonsoonMeter(rng).discharge_mah() == 0.0

    def test_battery_drain_fraction(self):
        battery = BatteryModel(capacity_mah=2600)
        assert battery.drain_fraction(1040) == pytest.approx(0.4)

    def test_battery_validation(self):
        with pytest.raises(ConfigurationError):
            BatteryModel(capacity_mah=0)

    def test_one_hour_video_call_drains_about_40_percent(self, rng):
        """Finding-5 calibration: camera-on call ~40%/h on the J3."""
        rails = PowerRailModel()
        meter = MonsoonMeter(rng, noise_w=0.0)
        for i in range(3601):
            meter.record(
                float(i),
                rails.power_w(
                    cpu_pct=250, screen_on=True, camera_on=True,
                    traffic_bps=mbps(1),
                ),
            )
        drain = BatteryModel(2600).drain_fraction(meter.discharge_mah())
        assert 0.28 <= drain <= 0.50


class TestAndroidSpecs:
    def test_table2_j3(self):
        assert GALAXY_J3.cpu_cores == 4
        assert GALAXY_J3.memory_gb == 2
        assert GALAXY_J3.screen_resolution == (720, 1280)
        assert GALAXY_J3.android_version == 8

    def test_table2_s10(self):
        assert GALAXY_S10.cpu_cores == 8
        assert GALAXY_S10.memory_gb == 8
        assert GALAXY_S10.screen_resolution == (1440, 3040)

    def test_registry(self):
        assert set(ANDROID_DEVICES) == {"S10", "J3"}

    def test_wifi_link_is_50mbps_symmetric(self):
        link = residential_wifi_link()
        assert link.uplink_bps == mbps(50)
        assert link.downlink_bps == mbps(50)


class TestAndroidClient:
    def test_scenario_labels(self, testbed):
        from repro.platforms.base import ViewContext

        phone = testbed.add_android(
            "J3", "zoom",
            view=ViewContext(view_mode="gallery", device="mobile-lowend"),
            camera_on=True,
        )
        assert phone.scenario_label("low") == "LM-Video-View"

    def test_screen_off_view(self, testbed):
        phone = testbed.add_android("S10", "zoom", screen_on=False)
        assert phone.effective_view_mode == "audio-only"

    def test_monitoring_collects_samples(self, testbed):
        phone = testbed.add_android("J3", "meet")
        phone.start_monitoring(10.0)
        testbed.network.simulator.run()
        assert len(phone.cpu_samples) >= 3
        assert phone.median_cpu_pct() > 0

    def test_no_samples_raises(self, testbed):
        phone = testbed.add_android("J3", "meet")
        with pytest.raises(ConfigurationError):
            phone.median_cpu_pct()

    def test_unknown_device_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            testbed.add_android("Pixel", "zoom")
