"""Kill/resume equivalence, the fabric's core durability claim.

Each selfcheck SIGKILLs a real campaign subprocess mid-grid, resumes
it, and compares the store cell-for-cell against an uninterrupted
reference run.  Deterministic per-cell seeds make the comparison
exact: a resumed campaign must be indistinguishable in content from
one that never died.

The shards backend is covered by the CI selfcheck step; tier-1 keeps
to jsonl + sqlite so the suite stays fast.
"""

import signal

import pytest

from repro.campaign import run_gc_selfcheck, run_selfcheck


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_kill_mid_grid_then_resume_matches_reference(tmp_path, backend):
    result = run_selfcheck(
        backend,
        str(tmp_path),
        cells=10,
        spin_ms=30.0,
        kill_after=3,
    )
    assert result.killed_mid_grid, (
        "campaign finished before the kill landed; selfcheck proved nothing"
    )
    assert result.ok, f"kill/resume mismatches: {result.mismatches}"
    assert result.total == 11  # the requested cells plus the crash cell
    assert result.resumed_executed >= 1


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_gc_killed_in_crash_window_changes_nothing(tmp_path, backend):
    """Compaction atomicity: a SIGKILLed gc must be a perfect no-op.

    The fault plane kills a real ``campaign gc`` subprocess inside its
    crash window (before the atomic replace for jsonl, between DELETE
    and commit for sqlite); the store must read back identical, with
    the superseded-error debris still intact for a clean re-gc.
    """
    result = run_gc_selfcheck(backend, str(tmp_path))
    assert result.gc_returncode == -signal.SIGKILL, (
        "gc subprocess was not killed by the fault plane"
    )
    assert result.ok, f"gc atomicity violations: {result.mismatches}"
    assert result.errors_dropped >= 1
