"""Audio sources and the subband audio codec."""

import numpy as np
import pytest

from repro.errors import CodecError, ConfigurationError
from repro.media.audio import (
    SilenceSource,
    SpeechLikeSource,
    ToneSource,
)
from repro.media.audio_codec import (
    AudioCodec,
    AudioCodecConfig,
    AudioDecoder,
    FRAME_DURATION_S,
)


class TestSources:
    def test_silence_is_zero(self):
        assert not SilenceSource().samples(0, 100).any()

    def test_tone_amplitude(self):
        tone = ToneSource(frequency_hz=440, amplitude=0.5)
        samples = tone.samples(0, 16_000)
        assert np.max(np.abs(samples)) == pytest.approx(0.5, abs=0.01)

    def test_tone_frequency_band_check(self):
        with pytest.raises(ConfigurationError):
            ToneSource(frequency_hz=9000, sample_rate=16_000)

    def test_speech_in_range(self):
        speech = SpeechLikeSource()
        samples = speech.samples(0, 16_000)
        assert np.max(np.abs(samples)) <= 1.0
        assert np.std(samples) > 0.01

    def test_speech_deterministic(self):
        a = SpeechLikeSource(seed=3).samples(100, 500)
        b = SpeechLikeSource(seed=3).samples(100, 500)
        assert np.array_equal(a, b)

    def test_speech_window_addressing_consistent(self):
        speech = SpeechLikeSource()
        long = speech.samples(0, 1000)
        tail = speech.samples(500, 500)
        assert np.allclose(long[500:], tail)

    def test_speech_has_pauses(self):
        speech = SpeechLikeSource(phrase_duration_s=1.0, pause_duration_s=0.3)
        samples = speech.read_duration(0.75, 0.2)  # inside the pause
        assert np.max(np.abs(samples)) < 0.05

    def test_low_sample_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SpeechLikeSource(sample_rate=4000)

    def test_read_duration(self):
        source = ToneSource()
        assert len(source.read_duration(0.0, 0.5)) == 8000


class TestAudioCodecConfig:
    def test_frame_samples_20ms(self):
        config = AudioCodecConfig(sample_rate=16_000)
        assert config.frame_samples == 320

    def test_frame_budget(self):
        config = AudioCodecConfig(bitrate_bps=45_000)
        assert config.frame_budget_bits == pytest.approx(900)

    def test_bad_bitrate(self):
        with pytest.raises(ConfigurationError):
            AudioCodecConfig(bitrate_bps=0)

    def test_bad_concealment(self):
        with pytest.raises(ConfigurationError):
            AudioCodecConfig(concealment="prayers")


class TestEncodeDecode:
    def test_frame_shape_enforced(self):
        codec = AudioCodec()
        with pytest.raises(CodecError):
            codec.encode_frame(np.zeros(100))

    def test_buffer_must_be_multiple(self):
        codec = AudioCodec()
        with pytest.raises(CodecError):
            codec.encode(np.zeros(codec.config.frame_samples + 1))

    def test_rate_near_budget(self):
        codec = AudioCodec(AudioCodecConfig(bitrate_bps=45_000))
        speech = SpeechLikeSource().read_duration(0, 1.0)
        frames = codec.encode(speech)
        realized = np.mean([f.size_bytes for f in frames]) * 8 / FRAME_DURATION_S
        assert 0.6 * 45_000 < realized < 1.4 * 45_000

    def test_roundtrip_snr(self):
        codec = AudioCodec(AudioCodecConfig(bitrate_bps=45_000))
        speech = SpeechLikeSource().read_duration(0, 0.5)
        decoder = AudioDecoder(codec)
        for frame in codec.encode(speech):
            decoder.push(frame)
        out = decoder.waveform()
        error = np.mean((out - speech) ** 2)
        signal = np.mean(speech**2)
        snr_db = 10 * np.log10(signal / max(error, 1e-12))
        assert snr_db > 15

    def test_higher_bitrate_less_distortion(self):
        speech = SpeechLikeSource().read_duration(0, 0.5)

        def error_at(rate):
            codec = AudioCodec(AudioCodecConfig(bitrate_bps=rate))
            decoder = AudioDecoder(codec)
            for frame in codec.encode(speech):
                decoder.push(frame)
            return float(np.mean((decoder.waveform() - speech) ** 2))

        assert error_at(64_000) < error_at(8_000)

    def test_frame_indices_monotonic(self):
        codec = AudioCodec()
        speech = SpeechLikeSource().read_duration(0, 0.2)
        frames = codec.encode(speech)
        assert [f.index for f in frames] == list(range(len(frames)))


class TestConcealment:
    def _lossy_waveform(self, concealment, drop_indices):
        codec = AudioCodec(
            AudioCodecConfig(bitrate_bps=45_000, concealment=concealment)
        )
        speech = SpeechLikeSource().read_duration(0, 0.5)
        frames = codec.encode(speech)
        decoder = AudioDecoder(codec)
        for frame in frames:
            if frame.index not in drop_indices:
                decoder.push(frame)
        return decoder.waveform(len(frames)), decoder

    def test_silence_fills_zeros(self):
        out, decoder = self._lossy_waveform("silence", {5})
        frame_samples = AudioCodecConfig().frame_samples
        segment = out[5 * frame_samples : 6 * frame_samples]
        assert not segment.any()
        assert decoder.frames_concealed == 1

    def test_repeat_fills_decaying_copy(self):
        out, _ = self._lossy_waveform("repeat", {5})
        frame_samples = AudioCodecConfig().frame_samples
        lost = out[5 * frame_samples : 6 * frame_samples]
        previous = out[4 * frame_samples : 5 * frame_samples]
        assert np.allclose(lost, previous * 0.5)

    def test_repeat_decays_over_consecutive_losses(self):
        out, _ = self._lossy_waveform("repeat", {5, 6, 7})
        frame_samples = AudioCodecConfig().frame_samples
        e5 = np.abs(out[5 * frame_samples : 6 * frame_samples]).max()
        e7 = np.abs(out[7 * frame_samples : 8 * frame_samples]).max()
        assert e7 < e5

    def test_total_frames_extends_with_silence(self):
        codec = AudioCodec()
        decoder = AudioDecoder(codec)
        speech = SpeechLikeSource().read_duration(0, 0.1)
        for frame in codec.encode(speech):
            decoder.push(frame)
        out = decoder.waveform(total_frames=10)
        assert len(out) == 10 * codec.config.frame_samples

    def test_empty_waveform(self):
        decoder = AudioDecoder(AudioCodec())
        assert len(decoder.waveform()) == 0
