"""Host clocks and the cloud time-sync model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.clock import Clock, PERFECT_CLOCK, SyncedClockFactory


class TestClock:
    def test_perfect_clock_identity(self):
        assert PERFECT_CLOCK.local_time(123.456) == 123.456

    def test_offset_applied(self):
        clock = Clock(offset_s=0.001)
        assert clock.local_time(10.0) == pytest.approx(10.001)

    def test_drift_grows_with_time(self):
        clock = Clock(drift_ppm=10.0)
        assert clock.error_at(1000.0) == pytest.approx(0.01)

    def test_error_at_zero_is_offset(self):
        clock = Clock(offset_s=-0.0005, drift_ppm=5.0)
        assert clock.error_at(0.0) == pytest.approx(-0.0005)


class TestSyncedClockFactory:
    def test_offsets_are_sub_millisecond_typically(self, rng):
        factory = SyncedClockFactory(rng)
        offsets = [abs(factory.make_clock().offset_s) for _ in range(200)]
        # 100 us std -> essentially all below 1 ms.
        assert float(np.mean(offsets)) < 0.0005
        assert max(offsets) < 0.001

    def test_clocks_differ(self, rng):
        factory = SyncedClockFactory(rng)
        a, b = factory.make_clock(), factory.make_clock()
        assert a.offset_s != b.offset_s

    def test_deterministic_for_seed(self):
        a = SyncedClockFactory(np.random.default_rng(7)).make_clock()
        b = SyncedClockFactory(np.random.default_rng(7)).make_clock()
        assert a == b

    def test_rejects_negative_std(self, rng):
        with pytest.raises(ConfigurationError):
            SyncedClockFactory(rng, offset_std_s=-1e-6)
