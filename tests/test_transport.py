"""Fragmentation, reassembly, FEC tolerance, loss detection."""

import pytest

from repro.errors import MediaError
from repro.media.transport import (
    ChunkFragment,
    Reassembler,
    fragment_frame,
)


class FakeFrame:
    def __init__(self, index, size):
        self.index = index
        self.size_bytes = size


class TestFragmentation:
    def test_small_frame_single_fragment(self):
        fragments = fragment_frame(FakeFrame(0, 100), 100, 0, mtu=1200)
        assert len(fragments) == 1
        assert fragments[0].fragment_count == 1

    def test_sizes_sum(self):
        fragments = fragment_frame(FakeFrame(0, 5000), 5000, 0, mtu=1200)
        assert sum(f.payload_bytes for f in fragments) >= 5000
        assert len(fragments) == 5

    def test_zero_byte_frame_still_one_fragment(self):
        fragments = fragment_frame(FakeFrame(0, 0), 0, 0)
        assert len(fragments) == 1
        assert fragments[0].payload_bytes >= 1

    def test_fragment_indices(self):
        fragments = fragment_frame(FakeFrame(3, 3000), 3000, 3, mtu=1000)
        assert [f.fragment_index for f in fragments] == [0, 1, 2]
        assert all(f.frame_index == 3 for f in fragments)

    def test_shared_frame_reference(self):
        frame = FakeFrame(0, 5000)
        fragments = fragment_frame(frame, 5000, 0)
        assert all(f.frame is frame for f in fragments)

    def test_bad_mtu(self):
        with pytest.raises(MediaError):
            fragment_frame(FakeFrame(0, 100), 100, 0, mtu=0)

    def test_negative_size(self):
        with pytest.raises(MediaError):
            fragment_frame(FakeFrame(0, -1), -1, 0)


def push_frame(reassembler, index, size=3000, skip=(), mtu=1000):
    frame = FakeFrame(index, size)
    for fragment in fragment_frame(frame, size, index, mtu=mtu):
        if fragment.fragment_index not in skip:
            reassembler.push(fragment)
    return frame


class TestReassembly:
    def test_complete_frame_delivered(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append)
        frame = push_frame(reassembler, 0)
        assert delivered == [frame]

    def test_incomplete_frame_held(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append)
        push_frame(reassembler, 0, skip={1})
        assert delivered == []

    def test_out_of_order_fragments(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append)
        frame = FakeFrame(0, 3000)
        fragments = fragment_frame(frame, 3000, 0, mtu=1000)
        for fragment in reversed(fragments):
            reassembler.push(fragment)
        assert delivered == [frame]

    def test_loss_detected_when_later_frame_completes(self):
        delivered, lost = [], []
        reassembler = Reassembler(
            on_frame=delivered.append, on_lost=lost.append, reorder_window=1
        )
        push_frame(reassembler, 0, skip={0})
        push_frame(reassembler, 1)
        push_frame(reassembler, 2)
        push_frame(reassembler, 3)
        assert 0 in lost
        assert reassembler.frames_lost == 1

    def test_reorder_window_delays_loss(self):
        lost = []
        reassembler = Reassembler(
            on_frame=lambda f: None, on_lost=lost.append, reorder_window=5
        )
        push_frame(reassembler, 0, skip={0})
        push_frame(reassembler, 1)
        assert lost == []

    def test_flush_abandons_pending(self):
        lost = []
        reassembler = Reassembler(on_frame=lambda f: None, on_lost=lost.append)
        push_frame(reassembler, 0, skip={0})
        reassembler.flush()
        assert lost == [0]

    def test_counters(self):
        reassembler = Reassembler(on_frame=lambda f: None)
        push_frame(reassembler, 0)
        assert reassembler.frames_completed == 1
        assert reassembler.fragments_received == 3


class TestFecTolerance:
    def test_tolerates_small_loss(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append, fec_tolerance=0.2)
        # 10 fragments, 2 lost = 20% <= tolerance.
        push_frame(reassembler, 0, size=10_000, skip={3, 7})
        assert len(delivered) == 1

    def test_rejects_heavy_loss(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append, fec_tolerance=0.2)
        push_frame(reassembler, 0, size=10_000, skip={1, 2, 3, 4})
        assert delivered == []

    def test_no_duplicate_delivery(self):
        delivered = []
        reassembler = Reassembler(on_frame=delivered.append, fec_tolerance=0.5)
        frame = FakeFrame(0, 3000)
        fragments = fragment_frame(frame, 3000, 0, mtu=1000)
        for fragment in fragments:
            reassembler.push(fragment)
        # Late duplicate fragment must not re-deliver.
        reassembler.push(fragments[0])
        assert len(delivered) == 1

    def test_invalid_tolerance(self):
        with pytest.raises(MediaError):
            Reassembler(on_frame=lambda f: None, fec_tolerance=1.0)

    def test_invalid_reorder_window(self):
        with pytest.raises(MediaError):
            Reassembler(on_frame=lambda f: None, reorder_window=-1)
