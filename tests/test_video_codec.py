"""The block-DCT video codec: rate control, prediction, recovery."""

import numpy as np
import pytest

from repro.errors import CodecError, ConfigurationError
from repro.media.feeds import HighMotionFeed, LowMotionFeed, StaticFeed
from repro.media.frames import FrameSpec
from repro.media.video_codec import (
    RateController,
    VideoCodec,
    VideoCodecConfig,
    VideoDecoder,
)
from repro.qoe.psnr import psnr


class TestConfig:
    def test_defaults_valid(self):
        VideoCodecConfig()

    def test_gop_positive(self):
        with pytest.raises(ConfigurationError):
            VideoCodecConfig(gop_size=0)

    def test_q_ladder_ordering(self):
        with pytest.raises(ConfigurationError):
            VideoCodecConfig(q_min=10.0, initial_q=5.0)

    def test_gain_bounds(self):
        with pytest.raises(ConfigurationError):
            VideoCodecConfig(adaptation_gain=1.5)

    def test_boost_at_least_one(self):
        with pytest.raises(ConfigurationError):
            VideoCodecConfig(keyframe_boost=0.5)


class TestRateController:
    def test_budget_normalised_over_gop(self):
        config = VideoCodecConfig(gop_size=30, keyframe_boost=4.0)
        controller = RateController(config, target_bps=300_000, fps=30)
        key = controller.frame_budget_bits(keyframe=True)
        inter = controller.frame_budget_bits(keyframe=False)
        gop_bits = key + 29 * inter
        assert gop_bits == pytest.approx(300_000, rel=1e-6)

    def test_q_rises_on_overshoot(self):
        config = VideoCodecConfig()
        controller = RateController(config, target_bps=100_000, fps=30)
        before = controller.q_step
        controller.update(actual_bits=1e6, keyframe=False)
        assert controller.q_step > before

    def test_q_falls_on_undershoot(self):
        config = VideoCodecConfig()
        controller = RateController(config, target_bps=100_000, fps=30)
        before = controller.q_step
        controller.update(actual_bits=10.0, keyframe=False)
        assert controller.q_step < before

    def test_q_clamped(self):
        config = VideoCodecConfig(q_min=1.0, q_max=2.0, initial_q=1.5)
        controller = RateController(config, target_bps=100_000, fps=30)
        for _ in range(50):
            controller.update(actual_bits=1e9, keyframe=False)
        assert controller.q_step == config.q_max

    def test_invalid_target_rejected(self):
        config = VideoCodecConfig()
        with pytest.raises(ConfigurationError):
            RateController(config, target_bps=0, fps=30)
        controller = RateController(config, target_bps=1000, fps=30)
        with pytest.raises(ConfigurationError):
            controller.set_target(-5)


class TestEncodeDecode:
    def test_wrong_shape_rejected(self, small_spec):
        codec = VideoCodec(small_spec)
        with pytest.raises(CodecError):
            codec.encode(np.zeros((10, 10), dtype=np.uint8))

    def test_first_frame_is_keyframe(self, small_spec):
        codec = VideoCodec(small_spec)
        frame = LowMotionFeed(small_spec).frame(0)
        assert codec.encode(frame).keyframe

    def test_gop_cadence(self, small_spec):
        config = VideoCodecConfig(gop_size=5)
        codec = VideoCodec(small_spec, config)
        feed = LowMotionFeed(small_spec)
        flags = [codec.encode(feed.frame(i)).keyframe for i in range(11)]
        assert flags == [True, False, False, False, False,
                         True, False, False, False, False, True]

    def test_request_keyframe(self, small_spec):
        codec = VideoCodec(small_spec, VideoCodecConfig(gop_size=100))
        feed = LowMotionFeed(small_spec)
        codec.encode(feed.frame(0))
        codec.request_keyframe()
        assert codec.encode(feed.frame(1)).keyframe
        assert not codec.encode(feed.frame(2)).keyframe

    def test_roundtrip_quality(self, small_spec):
        codec = VideoCodec(small_spec, target_bps=400_000)
        decoder = VideoDecoder(small_spec)
        feed = LowMotionFeed(small_spec)
        scores = []
        for index in range(12):
            frame = feed.frame(index)
            out = decoder.decode(codec.encode(frame))
            scores.append(psnr(frame, out))
        assert np.mean(scores[2:]) > 30

    def test_rate_tracks_target(self, small_spec):
        feed = HighMotionFeed(small_spec)
        codec = VideoCodec(small_spec, target_bps=200_000)
        sizes = [codec.encode(feed.frame(i)).size_bytes for i in range(40)]
        realized = np.mean(sizes[10:]) * 8 * small_spec.fps
        assert 0.5 * 200_000 < realized < 2.0 * 200_000

    def test_higher_rate_better_quality(self, small_spec):
        feed = HighMotionFeed(small_spec)

        def mean_psnr(rate):
            codec = VideoCodec(small_spec, target_bps=rate)
            decoder = VideoDecoder(small_spec)
            values = []
            for index in range(15):
                frame = feed.frame(index)
                out = decoder.decode(codec.encode(frame))
                values.append(psnr(frame, out))
            return np.mean(values[5:])

        assert mean_psnr(800_000) > mean_psnr(60_000) + 3

    def test_static_content_compresses_tiny(self, small_spec):
        feed = StaticFeed(small_spec)
        codec = VideoCodec(small_spec, VideoCodecConfig(gop_size=600),
                           target_bps=500_000)
        sizes = [codec.encode(feed.frame(i)).size_bytes for i in range(10)]
        # After the reconstruction settles, identical content costs
        # only skip flags (the lag detector's quiescence depends on
        # this staying below the 200-byte threshold).
        assert max(sizes[3:]) < 200

    def test_sparse_storage_matches_nonzeros(self, small_spec):
        codec = VideoCodec(small_spec)
        encoded = codec.encode(HighMotionFeed(small_spec).frame(0))
        assert encoded.indices.shape == encoded.values.shape
        assert np.all(encoded.values != 0)


class TestDecoderResilience:
    def _encode_sequence(self, spec, count, gop=100):
        codec = VideoCodec(spec, VideoCodecConfig(gop_size=gop),
                           target_bps=300_000)
        feed = LowMotionFeed(spec)
        return [codec.encode(feed.frame(i)) for i in range(count)]

    def test_gap_freezes_until_keyframe(self, small_spec):
        frames = self._encode_sequence(small_spec, 8)
        decoder = VideoDecoder(small_spec)
        decoder.decode(frames[0])
        decoder.decode(frames[1])
        before = decoder.last_frame.copy()
        # Frame 2 lost in transit.
        decoder.mark_lost(2)
        out = decoder.decode(frames[3])  # inter frame: must freeze
        assert np.array_equal(out, before)
        assert decoder.frames_frozen >= 1

    def test_keyframe_resyncs(self, small_spec):
        config = VideoCodecConfig(gop_size=4)
        codec = VideoCodec(small_spec, config, target_bps=300_000)
        feed = LowMotionFeed(small_spec)
        frames = [codec.encode(feed.frame(i)) for i in range(9)]
        decoder = VideoDecoder(small_spec)
        decoder.decode(frames[0])
        decoder.mark_lost(1)
        decoder.decode(frames[2])  # frozen
        decoder.decode(frames[3])  # frozen
        out = decoder.decode(frames[4])  # keyframe: resync
        reference = feed.frame(4)
        assert psnr(reference, out) > 25
        assert decoder.frames_decoded >= 2

    def test_inter_without_reference_returns_none(self, small_spec):
        frames = self._encode_sequence(small_spec, 3)
        decoder = VideoDecoder(small_spec)
        assert decoder.decode(frames[1]) is None

    def test_decoded_counts(self, small_spec):
        frames = self._encode_sequence(small_spec, 5)
        decoder = VideoDecoder(small_spec)
        for encoded in frames:
            decoder.decode(encoded)
        assert decoder.frames_decoded == 5
        assert decoder.frames_frozen == 0
