"""Packet records."""

import pytest

from repro.errors import ConfigurationError
from repro.net.address import Address
from repro.net.packet import (
    HEADER_OVERHEAD_BYTES,
    Packet,
    PacketKind,
    Protocol,
)


def make_packet(**kwargs):
    defaults = dict(
        src=Address("10.0.0.1", 1000),
        dst=Address("10.0.0.2", 2000),
        payload_bytes=100,
    )
    defaults.update(kwargs)
    return Packet(**defaults)


class TestPacket:
    def test_wire_bytes_includes_overhead(self):
        packet = make_packet(payload_bytes=100)
        assert packet.wire_bytes == 100 + HEADER_OVERHEAD_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            make_packet(payload_bytes=-1)

    def test_zero_payload_allowed(self):
        assert make_packet(payload_bytes=0).wire_bytes == HEADER_OVERHEAD_BYTES

    def test_unique_ids(self):
        ids = {make_packet().packet_id for _ in range(100)}
        assert len(ids) == 100

    def test_default_protocol_udp(self):
        assert make_packet().proto is Protocol.UDP


class TestReplyTemplate:
    def test_swaps_endpoints(self):
        packet = make_packet()
        reply = packet.reply_template(20, PacketKind.PROBE_REPLY)
        assert reply.src == packet.dst
        assert reply.dst == packet.src

    def test_references_original(self):
        packet = make_packet()
        reply = packet.reply_template(20, PacketKind.PROBE_REPLY)
        assert reply.metadata["in_reply_to"] == packet.packet_id

    def test_fresh_id(self):
        packet = make_packet()
        reply = packet.reply_template(20, PacketKind.PROBE_REPLY)
        assert reply.packet_id != packet.packet_id

    def test_keeps_flow(self):
        packet = make_packet(flow_id="s1|a|v-high")
        reply = packet.reply_template(20, PacketKind.FEEDBACK)
        assert reply.flow_id == "s1|a|v-high"


class TestForwardedTo:
    def test_new_endpoints(self):
        packet = make_packet(flow_id="f", payload="data")
        relay = Address("172.16.0.1", 8801)
        client = Address("10.0.0.3", 40404)
        forwarded = packet.forwarded_to(relay, client)
        assert forwarded.src == relay
        assert forwarded.dst == client

    def test_preserves_payload_and_flow(self):
        payload = object()
        packet = make_packet(flow_id="f", payload=payload)
        forwarded = packet.forwarded_to(
            Address("172.16.0.1", 1), Address("10.0.0.3", 2)
        )
        assert forwarded.payload is payload
        assert forwarded.flow_id == "f"

    def test_metadata_copied_not_shared(self):
        packet = make_packet(metadata={"seq": 1})
        forwarded = packet.forwarded_to(
            Address("172.16.0.1", 1), Address("10.0.0.3", 2)
        )
        forwarded.metadata["seq"] = 99
        assert packet.metadata["seq"] == 1

    def test_fresh_id_and_cleared_timestamp(self):
        packet = make_packet()
        packet.sent_at = 1.0
        forwarded = packet.forwarded_to(
            Address("172.16.0.1", 1), Address("10.0.0.3", 2)
        )
        assert forwarded.packet_id != packet.packet_id
        assert forwarded.sent_at is None
