"""The network dynamics engine: timelines, rebasing, periodic trains."""

import pytest

from repro.errors import ConfigurationError, SessionError, SimulationError
from repro.net.dynamics import (
    ConditionTimeline,
    LinkConditions,
    arm_timeline,
    bandwidth_ramp_timeline,
    constant_timeline,
    cross_traffic_timeline,
    handover_timeline,
    impulse,
    phase,
)
from repro.net.link import AccessLink, default_cap_burst
from repro.net.shaper import ShaperStats, TokenBucketShaper
from repro.net.simulator import Simulator
from repro.units import kbps, mbps


class TestLinkConditions:
    def test_neutral_default(self):
        assert LinkConditions().is_neutral

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            LinkConditions(ingress_cap_bps=0)
        with pytest.raises(ConfigurationError):
            LinkConditions(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            LinkConditions(extra_latency_s=-0.1)

    def test_burst_defaults_by_rate(self):
        assert LinkConditions(ingress_cap_bps=kbps(250)).burst_bytes() == 8_000
        assert LinkConditions(ingress_cap_bps=mbps(1)).burst_bytes() == 16_000
        assert LinkConditions().burst_bytes() is None
        assert default_cap_burst(None) == 16_000

    def test_overlay_overrides_and_stacks(self):
        base = LinkConditions(ingress_cap_bps=mbps(5), extra_latency_s=0.01)
        burst = LinkConditions(loss_rate=0.5, extra_latency_s=0.02)
        merged = base.overlaid(burst)
        assert merged.ingress_cap_bps == mbps(5)
        assert merged.extra_latency_s == pytest.approx(0.03)
        assert merged.loss_rate == pytest.approx(0.5)

    def test_overlay_loss_combines_independently(self):
        a = LinkConditions(loss_rate=0.5)
        b = LinkConditions(loss_rate=0.5)
        assert a.overlaid(b).loss_rate == pytest.approx(0.75)

    def test_round_trip(self):
        cond = LinkConditions(
            ingress_cap_bps=mbps(2), extra_latency_s=0.04, loss_rate=0.01
        )
        assert LinkConditions.from_dict(cond.to_dict()) == cond

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            LinkConditions.from_dict({"bandwidth": 1})


class TestTimelineConstruction:
    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            ConditionTimeline(phases=())

    def test_phase_names_unique(self):
        with pytest.raises(ConfigurationError):
            ConditionTimeline(phases=(phase("a", 1.0), phase("a", 1.0)))

    def test_impulse_within_plan(self):
        with pytest.raises(ConfigurationError):
            ConditionTimeline(
                phases=(phase("a", 1.0),),
                impulses=(impulse("late", 2.0, 0.1, loss_rate=0.5),),
            )

    def test_total_duration(self):
        timeline = ConditionTimeline(phases=(phase("a", 1.5), phase("b", 2.5)))
        assert timeline.total_duration_s == pytest.approx(4.0)
        assert timeline.phase_names() == ["a", "b"]


class TestTimelineCompile:
    def test_plain_phases(self):
        timeline = ConditionTimeline(
            phases=(phase("a", 2.0, ingress_cap_bps=mbps(1)), phase("b", 3.0))
        )
        windows = timeline.compile(10.0)
        assert [(w.name, w.start_s, w.end_s) for w in windows] == [
            ("a", 10.0, 12.0), ("b", 12.0, 15.0)
        ]
        assert windows[0].conditions.ingress_cap_bps == mbps(1)

    def test_impulse_splits_host_phase(self):
        timeline = handover_timeline(
            before_s=5.0, after_s=5.0, outage_s=0.5, outage_loss=0.9
        )
        windows = timeline.compile(0.0)
        assert [w.name for w in windows] == ["wifi", "lte+handover", "lte"]
        outage = windows[1]
        assert (outage.start_s, outage.end_s) == (5.0, 5.5)
        # The outage stacks loss on the LTE regime, keeping its cap.
        assert outage.conditions.loss_rate > 0.89
        assert outage.conditions.ingress_cap_bps == windows[2].conditions.ingress_cap_bps

    def test_cross_traffic_impulse_splits_idle(self):
        timeline = cross_traffic_timeline(
            duration_s=10.0, onset_s=4.0, contention_s=2.0,
            contended_cap_bps=kbps(500),
        )
        windows = timeline.compile(0.0)
        assert [w.name for w in windows] == [
            "idle", "idle+cross-traffic", "idle"
        ]
        assert windows[1].conditions.ingress_cap_bps == kbps(500)
        assert windows[0].conditions.ingress_cap_bps is None

    def test_window_clipping(self):
        window = constant_timeline(10.0).compile(0.0)[0]
        clipped = window.clipped(2.0, 6.0)
        assert (clipped.start_s, clipped.end_s) == (2.0, 6.0)
        assert window.clipped(10.0, 20.0) is None


class TestTimelineSerialization:
    def test_round_trip(self):
        timeline = handover_timeline(
            before_s=4.0, after_s=6.0, start_offset_s=-1.0
        )
        rebuilt = ConditionTimeline.from_dict(timeline.to_dict())
        assert rebuilt == timeline

    def test_axis_value_coercion(self):
        timeline = bandwidth_ramp_timeline((None, mbps(1)), step_s=2.0)
        assert ConditionTimeline.coerce(timeline.as_axis_value()) == timeline
        assert ConditionTimeline.coerce(timeline) is timeline
        assert ConditionTimeline.coerce(None) is None
        with pytest.raises(ConfigurationError):
            ConditionTimeline.coerce(42)


class TestShaperRebasing:
    def test_rate_change_preserves_queued_bits(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100), burst_bytes=1000)
        for _ in range(5):
            shaper.submit(0.0, 1000)
        queued = shaper.queued_bits(0.0)
        assert queued > 0
        shaper.set_rate(0.0, kbps(200))
        assert shaper.queued_bits(0.0) == pytest.approx(queued)

    def test_rate_raise_drains_faster(self):
        slow = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=10.0
        )
        fast = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=10.0
        )
        for shaper in (slow, fast):
            for _ in range(5):
                shaper.submit(0.0, 1000)
        fast.set_rate(0.0, mbps(1))
        assert fast.submit(0.0, 500) < slow.submit(0.0, 500)

    def test_idle_shaper_rebases_to_idle(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100), burst_bytes=4000)
        shaper.set_rate(100.0, kbps(50))
        # Still passes a burst immediately: no phantom backlog appeared.
        assert shaper.submit(100.0, 2000) == pytest.approx(100.0)

    def test_rejects_bad_rate(self):
        shaper = TokenBucketShaper(rate_bps=kbps(100))
        with pytest.raises(ConfigurationError):
            shaper.set_rate(0.0, 0.0)

    def test_phase_counters_roll(self):
        shaper = TokenBucketShaper(
            rate_bps=kbps(100), burst_bytes=1000, max_queue_delay_s=0.0
        )
        for _ in range(10):
            shaper.submit(0.0, 1000)
        first_accepted = shaper.stats.accepted
        first_dropped = shaper.stats.dropped
        assert first_dropped > 0
        shaper.start_phase("capped")
        assert shaper.stats.accepted == 0
        shaper.submit(100.0, 500)
        by_phase = shaper.stats_by_phase()
        assert by_phase["all"].dropped == first_dropped
        assert by_phase["capped"].accepted == 1
        total = shaper.total_stats()
        assert total.accepted == first_accepted + 1
        assert total.dropped == first_dropped

    def test_stats_merged(self):
        merged = ShaperStats.merged(
            [ShaperStats(accepted=2, dropped=1), ShaperStats(accepted=3)]
        )
        assert (merged.accepted, merged.dropped) == (5, 1)


class TestLinkRebasing:
    def test_backlog_seconds_rescale_on_rate_drop(self):
        link = AccessLink(uplink_bps=mbps(1), downlink_bps=mbps(1))
        link.reserve_uplink(0.0, 12_500)  # 0.1 s of backlog at 1 Mbps
        link.set_rates(0.0, uplink_bps=kbps(500))
        assert link.uplink_backlog(0.0) == pytest.approx(0.2)

    def test_idle_direction_unaffected(self):
        link = AccessLink(uplink_bps=mbps(1), downlink_bps=mbps(1))
        link.set_rates(5.0, downlink_bps=mbps(2))
        assert link.downlink_backlog(5.0) == 0.0
        delivery = link.reserve_downlink(5.0, 2500)
        assert delivery == pytest.approx(5.0 + 0.01)

    def test_rejects_nonpositive(self):
        link = AccessLink()
        with pytest.raises(ConfigurationError):
            link.set_rates(0.0, uplink_bps=0.0)

    def test_retired_shaper_stats_accumulate(self):
        link = AccessLink()
        link.set_ingress_cap(kbps(100), burst_bytes=1000)
        link.ingress_shaper.max_queue_delay_s = 0.0
        for _ in range(10):
            link.ingress_shaper.submit(0.0, 1000)
        dropped = link.ingress_shaper.stats.dropped
        assert dropped > 0
        link.set_ingress_cap(mbps(1))  # cap change used to lose these
        assert link.shaper_stats_total().dropped == dropped
        link.set_ingress_cap(None)
        assert link.shaper_stats_total().dropped == dropped

    def test_apply_conditions_rerates_in_place(self):
        link = AccessLink()
        link.apply_conditions(
            0.0, LinkConditions(ingress_cap_bps=kbps(100)), phase="tight"
        )
        shaper = link.ingress_shaper
        assert shaper.phase_name == "tight"
        shaper.submit(0.0, 1000)
        link.apply_conditions(
            1.0, LinkConditions(ingress_cap_bps=mbps(1)), phase="loose"
        )
        # Same shaper object, re-rated and relabelled: the queue and
        # the per-phase counters survive the transition.
        assert link.ingress_shaper is shaper
        assert shaper.rate_bps == mbps(1)
        assert shaper.stats_by_phase()["tight"].accepted == 1

    def test_clear_conditions_restores_base(self):
        link = AccessLink(uplink_bps=mbps(10), downlink_bps=mbps(10))
        link.apply_conditions(0.0, LinkConditions(
            downlink_bps=mbps(1), ingress_cap_bps=kbps(250),
            extra_latency_s=0.05, loss_rate=0.1,
        ))
        link.clear_conditions(1.0)
        assert link.downlink_bps == mbps(10)
        assert link.ingress_shaper is None
        assert link.extra_latency_s == 0.0
        assert link.loss_rate == 0.0


class TestArmTimeline:
    def test_boundaries_mutate_link(self):
        simulator = Simulator()
        link = AccessLink()
        timeline = bandwidth_ramp_timeline((None, mbps(1)), step_s=1.0)
        windows = arm_timeline(simulator, link, timeline, media_start_s=2.0)
        assert [w.start_s for w in windows] == [2.0, 3.0]
        simulator.run(until=2.5)
        assert link.ingress_shaper is None
        simulator.run(until=3.5)
        assert link.ingress_shaper.rate_bps == mbps(1)
        simulator.run(until=4.5)  # plan over: base restored
        assert link.ingress_shaper is None

    def test_negative_offset_before_now_rejected(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(ConfigurationError):
            arm_timeline(
                simulator, AccessLink(),
                constant_timeline(1.0, start_offset_s=-10.0),
                media_start_s=6.0,
            )

    def test_arm_start_tolerates_ulp_rounding(self):
        from repro.net.dynamics import resolve_arm_start

        # (now + settle) - settle can round one ulp below now for
        # non-dyadic session start times; arming must clamp, not crash.
        now = 0.244
        assert (now + 2.0) - 2.0 < now
        timeline = constant_timeline(5.0, start_offset_s=-2.0)
        assert resolve_arm_start(now, now + 2.0, timeline) == now
        # A genuine shortfall still raises.
        with pytest.raises(ConfigurationError):
            resolve_arm_start(now + 1.0, now, constant_timeline(1.0))


class TestSchedulePeriodic:
    def test_absolute_multiples(self):
        simulator = Simulator()
        times = []
        simulator.schedule_periodic(0.5, lambda: times.append(simulator.now))
        simulator.run(until=2.0)
        assert times == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_rate_grid_is_exact(self):
        simulator = Simulator()
        times = []
        simulator.schedule_periodic(
            None, lambda: times.append(simulator.now), rate=30
        )
        simulator.run(until=1.0)
        assert times == [k / 30 for k in range(31)]

    def test_index_step_keeps_fine_grid(self):
        simulator = Simulator()
        times = []
        simulator.schedule_periodic(
            0.02, lambda: times.append(simulator.now), index_step=5
        )
        simulator.run(until=1.0)
        assert times == [(k * 5) * 0.02 for k in range(11)]

    def test_false_return_stops(self):
        simulator = Simulator()
        ticks = []

        def tick():
            ticks.append(simulator.now)
            return len(ticks) < 3

        simulator.schedule_periodic(1.0, tick)
        simulator.run()
        assert len(ticks) == 3

    def test_cancel_stops(self):
        simulator = Simulator()
        ticks = []
        task = simulator.schedule_periodic(1.0, lambda: ticks.append(1))
        simulator.schedule(2.5, task.cancel)
        simulator.run(until=10.0)
        assert len(ticks) == 3
        assert task.cancelled

    def test_first_delay(self):
        simulator = Simulator()
        times = []
        simulator.schedule_periodic(
            1.0, lambda: times.append(simulator.now), first_delay=0.25
        )
        simulator.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(0.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(1.0, lambda: None, rate=10)
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(None, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(1.0, lambda: None, index_step=0)


class TestSessionConfigValidation:
    def test_negative_settle_rejected(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(settle_s=-1.0)

    def test_negative_grace_rejected(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(grace_s=-0.5)

    def test_negative_probe_interval_rejected(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(probe_interval_s=-0.1)

    def test_nonpositive_probe_count_rejected(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(probe_count=0)

    def test_timeline_type_checked(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(timelines={"US-East2": {"phases": []}})

    def test_timeline_offset_bounded_by_settle(self):
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(
                settle_s=2.0,
                timelines={
                    "US-East2": constant_timeline(5.0, start_offset_s=-3.0)
                },
            )

    def test_timeline_end_tolerates_ulp_rounding(self):
        # -settle + (settle + duration + grace) can round one ulp above
        # duration + grace; the full-session plan must stay accepted.
        from repro.core.session import SessionConfig
        from repro.experiments.bandwidth_study import static_cap_timeline

        duration = 28.000016
        probe = SessionConfig(duration_s=duration)
        timeline = static_cap_timeline(250e3, probe)
        overshoot = (
            timeline.start_offset_s + timeline.total_duration_s
            - (probe.duration_s + probe.grace_s)
        )
        assert overshoot > 0  # the rounding this test pins
        SessionConfig(duration_s=duration,
                      timelines={"US-East2": timeline})

    def test_timeline_outliving_session_rejected(self):
        # Boundary events past the session's run window would linger on
        # the shared simulator and fire during the next session.
        from repro.core.session import SessionConfig

        with pytest.raises(SessionError):
            SessionConfig(
                duration_s=10.0,
                grace_s=2.0,
                timelines={"US-East2": constant_timeline(30.0)},
            )
        # Exactly filling media + grace is the bandwidth-study shape.
        SessionConfig(
            duration_s=10.0,
            settle_s=2.0,
            grace_s=2.0,
            timelines={
                "US-East2": constant_timeline(14.0, start_offset_s=-2.0)
            },
        )
