"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import Cdf
from repro.core.lag import LagDetector
from repro.media.transport import Reassembler, fragment_frame
from repro.media.video_codec import RateController, VideoCodecConfig
from repro.net.shaper import TokenBucketShaper
from repro.net.simulator import Simulator
from repro.qoe.psnr import psnr
from repro.qoe.ssim import ssim
from repro.units import transmission_delay


class FakeFrame:
    def __init__(self, index, size):
        self.index = index
        self.size_bytes = size


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
def test_simulator_executes_all_events_in_order(delays):
    simulator = Simulator()
    executed = []
    for delay in delays:
        simulator.schedule(delay, executed.append, delay)
    simulator.run()
    assert executed == sorted(delays)
    assert len(executed) == len(delays)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10),
            st.integers(min_value=40, max_value=1500),
        ),
        min_size=1,
        max_size=200,
    ),
    st.floats(min_value=1e4, max_value=1e7),
)
def test_shaper_releases_monotonic_and_rate_bounded(arrivals, rate):
    """Accepted packets leave in order and never exceed the line rate."""
    shaper = TokenBucketShaper(rate_bps=rate, burst_bytes=4000)
    arrivals = sorted(arrivals)
    last_release = -np.inf
    accepted_bits = 0.0
    first_release = None
    for now, size in arrivals:
        release = shaper.submit(now, size)
        if release is None:
            continue
        assert release >= now
        assert release >= last_release - 1e-9
        last_release = max(last_release, release)
        accepted_bits += size * 8
        if first_release is None:
            first_release = release
    if first_release is not None and last_release > first_release:
        # Average accepted rate cannot exceed line rate + one burst.
        span = last_release - first_release
        assert accepted_bits <= rate * span + 8 * 4000 + 1500 * 8


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=1400),
)
def test_fragmentation_conserves_bytes(size, mtu):
    fragments = fragment_frame(FakeFrame(0, size), size, 0, mtu=mtu)
    total = sum(f.payload_bytes for f in fragments)
    assert total >= size
    assert total <= size + len(fragments)  # only padding of empty frames
    assert all(f.fragment_count == len(fragments) for f in fragments)
    assert [f.fragment_index for f in fragments] == list(range(len(fragments)))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60),
    st.data(),
)
def test_reassembler_delivers_each_complete_frame_once(frame_sizes, data):
    delivered = []
    reassembler = Reassembler(on_frame=delivered.append)
    frames = []
    for index, kilobytes in enumerate(frame_sizes):
        size = kilobytes * 400 + 100
        frame = FakeFrame(index, size)
        frames.append(frame)
        fragments = fragment_frame(frame, size, index, mtu=500)
        order = data.draw(st.permutations(range(len(fragments))))
        for i in order:
            reassembler.push(fragments[i])
    assert delivered == frames


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=100), min_size=1, max_size=100
    )
)
def test_cdf_is_monotonic_and_normalised(samples):
    cdf = Cdf.from_samples(samples)
    xs = sorted(samples)
    previous = 0.0
    for x in xs:
        value = cdf.evaluate(x)
        assert value >= previous - 1e-12
        previous = value
    assert cdf.evaluate(max(xs)) == 1.0
    assert cdf.quantile(0.0) == min(xs)
    assert cdf.quantile(1.0) == max(xs)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=60),
            st.integers(min_value=1, max_value=1500),
        ),
        max_size=100,
    )
)
def test_lag_detector_onsets_are_spaced_by_quiescence(series):
    detector = LagDetector()
    onsets = detector.burst_onsets(sorted(series))
    for earlier, later in zip(onsets, onsets[1:]):
        assert later - earlier > detector.quiescent_period_s


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=1e4, max_value=1e7),
)
def test_rate_controller_q_stays_in_bounds(seed, target):
    config = VideoCodecConfig()
    controller = RateController(config, target_bps=target, fps=15)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        bits = float(rng.uniform(10, 1e6))
        controller.update(bits, keyframe=bool(rng.integers(0, 2)))
        assert config.q_min <= controller.q_step <= config.q_max


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_psnr_ssim_bounded_and_reflexive(seed):
    rng = np.random.default_rng(seed)
    frame = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
    assert psnr(frame, frame) == 60.0
    assert ssim(frame, frame) >= 0.99
    other = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
    assert psnr(frame, other) <= 60.0
    assert -1.0 <= ssim(frame, other) <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.floats(min_value=1e3, max_value=1e9),
)
def test_transmission_delay_positive_and_linear(size, rate):
    delay = transmission_delay(size, rate)
    assert delay > 0
    assert transmission_delay(2 * size, rate) == 2 * delay
