"""The deterministic fault-injection plane and fabric hardening.

Backoff schedules must be reproducible bit-for-bit, fault plans must
fire exactly ``times`` across a whole process tree, transient store
I/O must be retried (and torn debris healed) without ever weakening
refuse-on-corruption, poison cells must be quarantined instead of
eating the retry budget, and a crash-looping executor must degrade to
inline and still finish the grid.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CellRecord,
    FaultPlan,
    FaultSpec,
    backoff_delay,
    calibration_campaign,
    open_store,
    run_campaign,
)
from repro.campaign.fabric import faults
from repro.campaign.fabric.faults import derive_faults
from repro.campaign.fabric.selfcheck import _ok_content, _subprocess_env
from repro.errors import CampaignError


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no active fault plan."""
    faults.deactivate()
    yield
    faults.deactivate()


# --------------------------------------------------------------------- #
# Backoff schedule
# --------------------------------------------------------------------- #

class TestBackoffDelay:
    def test_deterministic(self):
        a = backoff_delay("noop:index=3", 2, seed=42)
        b = backoff_delay("noop:index=3", 2, seed=42)
        assert a == b

    def test_jitter_varies_by_cell_attempt_and_seed(self):
        base = backoff_delay("cell-a", 1, seed=1)
        assert backoff_delay("cell-b", 1, seed=1) != base
        assert backoff_delay("cell-a", 2, seed=1) != base
        assert backoff_delay("cell-a", 1, seed=2) != base

    def test_bounds_half_to_full_of_raw(self):
        for attempt in range(1, 8):
            raw = min(2.0, 0.05 * 2 ** (attempt - 1))
            delay = backoff_delay("cell", attempt)
            assert raw * 0.5 <= delay < raw

    def test_exponential_growth_saturates_at_cap(self):
        # Compare upper envelopes, not samples (jitter can reorder
        # neighbours); deep attempts must sit inside the cap.
        assert backoff_delay("c", 6, base_s=0.1, cap_s=1.0) <= 1.0
        assert backoff_delay("c", 50, base_s=0.1, cap_s=1.0) <= 1.0
        assert backoff_delay("c", 50, base_s=0.1, cap_s=1.0) >= 0.5

    def test_non_positive_attempt_is_free(self):
        assert backoff_delay("c", 0) == 0.0
        assert backoff_delay("c", -1) == 0.0


# --------------------------------------------------------------------- #
# Fault specs and plans
# --------------------------------------------------------------------- #

class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(CampaignError):
            FaultSpec("cell.explode")

    def test_store_append_requires_mode(self):
        with pytest.raises(CampaignError):
            FaultSpec("store.append")
        FaultSpec("store.append", mode="torn")  # valid

    def test_times_must_be_positive(self):
        with pytest.raises(CampaignError):
            FaultSpec("cell.crash", times=0)

    def test_roundtrip(self):
        spec = FaultSpec("cell.hang", cell_id="noop:index=1", delay_s=2.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_save_load_roundtrip(self, tmp_path):
        plan = FaultPlan(
            chaos_seed=7,
            specs=(FaultSpec("store.append", mode="eio", times=3),),
            state_dir=str(tmp_path / "state"),
        )
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_claims_exactly_times(self, tmp_path):
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("gc.crash", times=3),),
            state_dir=str(tmp_path / "state"),
        )
        os.makedirs(plan.state_dir, exist_ok=True)
        claimed = [plan.claim("gc.crash") for _ in range(5)]
        assert sum(spec is not None for spec in claimed) == 3
        assert plan.fired("gc.crash") == 3

    def test_claims_shared_across_plan_instances(self, tmp_path):
        # Two loads of the same plan (two processes, in spirit) share
        # the claim files, so `times` is a process-tree-wide budget.
        spec = (FaultSpec("gc.crash", times=1),)
        state = str(tmp_path / "state")
        first = FaultPlan(chaos_seed=0, specs=spec, state_dir=state)
        second = FaultPlan(chaos_seed=0, specs=spec, state_dir=state)
        os.makedirs(state, exist_ok=True)
        assert first.claim("gc.crash") is not None
        assert second.claim("gc.crash") is None

    def test_cell_scoped_fault_ignores_other_cells(self, tmp_path):
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("cell.slow", cell_id="target", delay_s=0.1),),
            state_dir=str(tmp_path / "state"),
        )
        os.makedirs(plan.state_dir, exist_ok=True)
        assert plan.claim("cell.slow", "bystander") is None
        assert plan.claim("cell.slow", "target") is not None

    def test_worker_only_sites_never_fire_in_parent(self, tmp_path):
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("cell.crash", times=5),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        # This process is the recorded parent: a claim here must
        # refuse, or the test process would SIGKILL itself.
        assert faults.claim("cell.crash", "any-cell") is None

    def test_activation_is_env_visible_and_reversible(self, tmp_path):
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("gc.crash"),),
            state_dir=str(tmp_path / "state"),
        )
        path = str(tmp_path / "plan.json")
        faults.activate(plan, path)
        assert os.environ[faults.PLAN_ENV] == os.path.abspath(path)
        assert faults.active_plan() == plan
        faults.deactivate()
        assert faults.PLAN_ENV not in os.environ
        assert faults.active_plan() is None

    def test_plan_loads_from_env_alone(self, tmp_path):
        # Simulates a worker/CLI process: no in-process activation,
        # just the environment variable pointing at the JSON plan.
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("gc.crash"),),
            state_dir=str(tmp_path / "state"),
        )
        path = str(tmp_path / "plan.json")
        plan.save(path)
        os.environ[faults.PLAN_ENV] = path
        assert faults.active_plan() == plan

    def test_derive_faults_deterministic(self):
        cells = [f"noop:index={i}" for i in range(10)]
        first = derive_faults(3, 7, cells, sites=("cell.crash", "gc.crash"))
        second = derive_faults(3, 7, cells, sites=("cell.crash", "gc.crash"))
        assert first == second
        assert first[0].cell_id in cells
        assert first[1].cell_id is None  # gc has no cell context


# --------------------------------------------------------------------- #
# Store append hardening
# --------------------------------------------------------------------- #

def _record(cell_id="noop:index=0,spin_ms=0.0"):
    return CellRecord.from_dict({
        "type": "cell", "cell_id": cell_id, "kind": "noop",
        "params": {"index": 0, "spin_ms": 0.0}, "seed": 1,
        "spec_hash": "x" * 16, "status": "ok",
        "metrics": {"value": 1.0}, "error": None,
        "duration_s": 0.0, "finished_at": 0.0, "worker": 0,
    })


def _fresh_store(tmp_path, name="store.jsonl"):
    spec = calibration_campaign(cells=1, name="append-hardening")
    store = open_store(str(tmp_path / name))
    store.initialise(spec)
    return store


class TestAppendHardening:
    @pytest.mark.parametrize("mode", ["eio", "enospc"])
    def test_transient_errors_retried(self, tmp_path, mode):
        store = _fresh_store(tmp_path)
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("store.append", mode=mode, times=2),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        store.append_cell(_record())
        store.close()
        assert plan.fired("store.append") == 2
        assert len(_ok_content(store.path)) == 1

    def test_torn_write_healed_by_retry(self, tmp_path):
        store = _fresh_store(tmp_path)
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("store.append", mode="torn", times=1),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        store.append_cell(_record())
        store.close()
        # The torn partial line must be gone: every line parses.
        with open(store.path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)
        assert len(_ok_content(store.path)) == 1

    def test_exhausted_retries_raise(self, tmp_path):
        store = _fresh_store(tmp_path)
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("store.append", mode="eio", times=50),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        with pytest.raises(CampaignError, match="append .* failed after"):
            store.append_cell(_record())

    def test_corruption_still_refused(self, tmp_path):
        # Hardening must not soften integrity: junk in the *middle* of
        # a store (not an unsynced tail) is corruption, not debris.
        store = _fresh_store(tmp_path)
        store.append_cell(_record())
        store.close()
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell_id": "torn\n')
            handle.write("not json either\n")
        with pytest.raises(CampaignError):
            list(open_store(store.path).cell_records())


# --------------------------------------------------------------------- #
# Quarantine and degradation, end to end
# --------------------------------------------------------------------- #

def _target_cell(spec):
    return sorted(cell.cell_id for cell in spec.expand())[0]


class TestHardeningIntegration:
    def test_poison_cell_quarantined(self, tmp_path):
        spec = calibration_campaign(cells=4, spin_ms=5.0, name="poison")
        target = _target_cell(spec)
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("cell.crash", cell_id=target, times=99),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        summary = run_campaign(
            spec, str(tmp_path / "store.jsonl"),
            workers=2, executor="spawn", max_attempts=10,
            poison_threshold=2, backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        assert summary.quarantined == 1
        assert summary.degraded is None
        poison = [
            r for r in open_store(str(tmp_path / "store.jsonl")).cell_records()
            if r.cell_id == target
        ]
        assert len(poison) == 1
        assert not poison[0].ok
        assert "fabric:poison" in poison[0].error
        # Quarantine must not cost the rest of the grid anything.
        assert len(_ok_content(str(tmp_path / "store.jsonl"))) == 3

    def test_crash_loop_degrades_to_inline_and_finishes(self, tmp_path):
        spec = calibration_campaign(cells=4, spin_ms=5.0, name="crashloop")
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("executor.crashloop", times=500),),
            state_dir=str(tmp_path / "state"),
        )
        faults.activate(plan, str(tmp_path / "plan.json"))
        summary = run_campaign(
            spec, str(tmp_path / "store.jsonl"),
            workers=2, executor="spawn", max_attempts=10,
            crashloop_threshold=3, backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        assert summary.degraded is not None
        assert "inline" in summary.degraded
        assert summary.failed == 0
        assert len(_ok_content(str(tmp_path / "store.jsonl"))) == 4


class TestQuarantineSurvivesKillResume:
    def test_quarantine_state_survives_sigkill_and_resume(self, tmp_path):
        """SIGKILL after the poison verdict; resume must remember it.

        The checkpoint sidecar carries the quarantine set across the
        kill, so the resumed run neither burns fresh workers on the
        poison cell nor duplicates its ``fabric:poison`` record.
        """
        spec = calibration_campaign(
            cells=8, spin_ms=60.0, name="quarantine-resume"
        )
        target = _target_cell(spec)
        plan = FaultPlan(
            chaos_seed=0,
            specs=(FaultSpec("cell.crash", cell_id=target, times=99),),
            state_dir=str(tmp_path / "state"),
        )
        plan_path = str(tmp_path / "plan.json")
        plan.save(plan_path)
        spec_path = str(tmp_path / "spec.json")
        spec.save(spec_path)
        store_path = str(tmp_path / "store.jsonl")
        env = _subprocess_env()
        env[faults.PLAN_ENV] = plan_path

        def launch(resume):
            command = [
                sys.executable, "-m", "repro", "campaign", "run",
                "--spec-json", spec_path, "--store", store_path,
                "--workers", "2", "--executor", "spawn",
                "--max-attempts", "10", "--poison-threshold", "2",
                "--backoff-base", "0.01",
            ]
            if resume:
                command.append("--resume")
            return subprocess.Popen(
                command, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True,
            )

        def poison_records():
            try:
                store = open_store(store_path)
                if not store.exists():
                    return []
            except CampaignError:
                return []
            return [
                r for r in store.cell_records()
                if r.error and "fabric:poison" in r.error
            ]

        child = launch(resume=False)
        deadline = time.monotonic() + 90.0
        killed = False
        while child.poll() is None:
            if poison_records():
                os.kill(child.pid, signal.SIGKILL)
                killed = True
                break
            if time.monotonic() > deadline:
                child.kill()
                child.wait()
                pytest.fail("poison record never appeared")
            time.sleep(0.05)
        child.wait()
        if not killed:
            # The run finished before we saw the record land; the
            # quarantine still must round-trip through the resume.
            assert poison_records(), child.stdout.read()

        resumed = launch(resume=True)
        output, _ = resumed.communicate(timeout=90.0)
        # The poison record predates the resume, so the resumed run
        # itself appends no failures.
        assert resumed.returncode == 0, output
        records = poison_records()
        assert len(records) == 1, (
            "resume forgot the quarantine and re-judged the poison cell"
        )
        content = _ok_content(store_path)
        assert target not in content
        assert len(content) == spec.cell_count() - 1
