"""Padding workflow (Fig. 13), A/V alignment, loopback devices."""

import numpy as np
import pytest

from repro.errors import AnalysisError, MediaError
from repro.media.audio import SpeechLikeSource, ToneSource
from repro.media.feeds import HighMotionFeed, LowMotionFeed
from repro.media.frames import FrameSpec
from repro.media.loopback import VirtualCamera, VirtualMicrophone
from repro.media.padding import (
    PaddedSource,
    add_padding,
    crop_padding,
    pad_size,
    resize_frame,
)
from repro.media.sync import (
    align_recordings,
    find_audio_offset,
    measure_loudness,
    normalize_loudness,
    trim_to_offset,
)


class TestPadding:
    def test_pad_size(self):
        assert pad_size(100, 0.15) == 15

    def test_pad_fraction_bounds(self):
        with pytest.raises(MediaError):
            pad_size(100, 0.6)

    def test_add_padding_dimensions(self):
        frame = np.zeros((48, 64), dtype=np.uint8)
        padded = add_padding(frame, 0.25)
        assert padded.shape == (48 + 24, 64 + 32)

    def test_crop_roundtrip(self):
        frame = np.arange(48 * 64, dtype=np.uint8).reshape(48, 64)
        padded = add_padding(frame, 0.2)
        assert np.array_equal(crop_padding(padded, frame.shape), frame)

    def test_crop_too_large_rejected(self):
        with pytest.raises(MediaError):
            crop_padding(np.zeros((10, 10)), (20, 20))

    def test_padding_value_is_mid_grey(self):
        padded = add_padding(np.zeros((48, 64), dtype=np.uint8), 0.2)
        assert padded[0, 0] == 128

    def test_multichannel_rejected(self):
        with pytest.raises(MediaError):
            add_padding(np.zeros((10, 10, 3)))


class TestPaddedSource:
    def test_spec_expanded(self, small_spec):
        padded = PaddedSource(LowMotionFeed(small_spec), 0.15)
        assert padded.spec.width > small_spec.width
        assert padded.spec.height > small_spec.height

    def test_frame_crop_roundtrip(self, small_spec):
        content = LowMotionFeed(small_spec)
        padded = PaddedSource(content, 0.2)
        frame = padded.frame(4)
        assert np.array_equal(padded.crop(frame), content.frame(4))

    def test_fps_preserved(self, small_spec):
        padded = PaddedSource(LowMotionFeed(small_spec), 0.15)
        assert padded.spec.fps == small_spec.fps


class TestResize:
    def test_identity(self):
        frame = np.arange(100, dtype=np.uint8).reshape(10, 10)
        assert np.array_equal(resize_frame(frame, (10, 10)), frame)

    def test_downscale_shape(self):
        frame = np.zeros((48, 64), dtype=np.uint8)
        assert resize_frame(frame, (24, 32)).shape == (24, 32)

    def test_upscale_shape(self):
        frame = np.zeros((24, 32), dtype=np.uint8)
        assert resize_frame(frame, (48, 64)).shape == (48, 64)

    def test_constant_frame_preserved(self):
        frame = np.full((32, 32), 77, dtype=np.uint8)
        out = resize_frame(frame, (20, 28))
        assert np.all(out == 77)

    def test_dtype_preserved_for_uint8(self):
        frame = np.zeros((16, 16), dtype=np.uint8)
        assert resize_frame(frame, (24, 24)).dtype == np.uint8

    def test_invalid_target(self):
        with pytest.raises(MediaError):
            resize_frame(np.zeros((16, 16)), (0, 10))


class TestVideoAlignment:
    def test_finds_known_shift(self, small_spec):
        feed = HighMotionFeed(small_spec)
        reference = feed.frames(30)
        recorded = feed.frames(25, start=5)  # starts 5 frames late
        shift, ref_aligned, rec_aligned = align_recordings(
            reference, recorded, max_shift=10
        )
        assert shift == -5
        assert len(ref_aligned) == len(rec_aligned)
        assert np.array_equal(ref_aligned[0], rec_aligned[0])

    def test_zero_shift(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(20)
        shift, _, _ = align_recordings(frames, frames, max_shift=5)
        assert shift == 0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            align_recordings([], [np.zeros((8, 8))])


class TestAudioAlignment:
    def test_finds_sample_offset(self):
        speech = SpeechLikeSource().read_duration(0, 1.0)
        recorded = speech[400:]
        offset = find_audio_offset(speech, recorded, max_offset=1000)
        assert offset == -400

    def test_positive_offset(self):
        speech = SpeechLikeSource().read_duration(0, 1.0)
        recorded = np.concatenate([np.zeros(300), speech])
        offset = find_audio_offset(speech, recorded, max_offset=1000)
        assert offset == 300

    def test_trim_to_offset(self):
        reference = np.arange(100, dtype=np.float64)
        recorded = np.concatenate([np.zeros(10), reference])
        ref_aligned, rec_aligned = trim_to_offset(reference, recorded, 10)
        assert np.array_equal(ref_aligned, rec_aligned[: len(ref_aligned)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            find_audio_offset(np.array([]), np.array([1.0]))


class TestLoudness:
    def test_normalized_loudness_hits_target(self):
        speech = SpeechLikeSource().read_duration(0, 2.0)
        out = normalize_loudness(speech, target_lufs=-23.0)
        assert measure_loudness(out) == pytest.approx(-23.0, abs=0.5)

    def test_quiet_signal_amplified(self):
        speech = SpeechLikeSource().read_duration(0, 2.0) * 0.01
        out = normalize_loudness(speech, target_lufs=-23.0)
        assert np.abs(out).max() > np.abs(speech).max()

    def test_silence_measures_floor(self):
        assert measure_loudness(np.zeros(16_000)) == -70.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            measure_loudness(np.array([]))


class TestLoopback:
    def test_camera_serves_frames_by_time(self, small_spec):
        camera = VirtualCamera(LowMotionFeed(small_spec))
        frame = camera.read_frame_at(1.0)
        assert frame.shape == small_spec.shape
        assert camera.frame_index_at(1.0) == small_spec.fps

    def test_camera_counts_served(self, small_spec):
        camera = VirtualCamera(LowMotionFeed(small_spec))
        camera.read_frame_at(0.0)
        camera.read_frame(3)
        assert camera.frames_served == 2

    def test_camera_negative_time_rejected(self, small_spec):
        with pytest.raises(MediaError):
            VirtualCamera(LowMotionFeed(small_spec)).read_frame_at(-1.0)

    def test_microphone_serves_samples(self):
        microphone = VirtualMicrophone(ToneSource())
        samples = microphone.read_at(0.5, 0.25)
        assert len(samples) == 4000
        assert microphone.samples_served == 4000

    def test_microphone_sample_rate(self):
        assert VirtualMicrophone(ToneSource()).sample_rate == 16_000
