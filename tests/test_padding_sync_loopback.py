"""Padding workflow (Fig. 13), A/V alignment, loopback devices."""

import numpy as np
import pytest

from repro.errors import AnalysisError, MediaError
from repro.media.audio import SpeechLikeSource, ToneSource
from repro.media.feeds import HighMotionFeed, LowMotionFeed
from repro.media.frames import FrameSpec
from repro.media.loopback import VirtualCamera, VirtualMicrophone
from repro.media.padding import (
    PaddedSource,
    add_padding,
    crop_padding,
    pad_size,
    resize_frame,
    resize_frames,
)
from repro.media.sync import (
    _frame_similarity,
    align_recordings,
    find_audio_offset,
    measure_loudness,
    normalize_loudness,
    trim_to_offset,
)


class TestPadding:
    def test_pad_size(self):
        assert pad_size(100, 0.15) == 15

    def test_pad_fraction_bounds(self):
        with pytest.raises(MediaError):
            pad_size(100, 0.6)

    def test_add_padding_dimensions(self):
        frame = np.zeros((48, 64), dtype=np.uint8)
        padded = add_padding(frame, 0.25)
        assert padded.shape == (48 + 24, 64 + 32)

    def test_crop_roundtrip(self):
        frame = np.arange(48 * 64, dtype=np.uint8).reshape(48, 64)
        padded = add_padding(frame, 0.2)
        assert np.array_equal(crop_padding(padded, frame.shape), frame)

    def test_crop_too_large_rejected(self):
        with pytest.raises(MediaError):
            crop_padding(np.zeros((10, 10)), (20, 20))

    def test_padding_value_is_mid_grey(self):
        padded = add_padding(np.zeros((48, 64), dtype=np.uint8), 0.2)
        assert padded[0, 0] == 128

    def test_multichannel_rejected(self):
        with pytest.raises(MediaError):
            add_padding(np.zeros((10, 10, 3)))


class TestPaddedSource:
    def test_spec_expanded(self, small_spec):
        padded = PaddedSource(LowMotionFeed(small_spec), 0.15)
        assert padded.spec.width > small_spec.width
        assert padded.spec.height > small_spec.height

    def test_frame_crop_roundtrip(self, small_spec):
        content = LowMotionFeed(small_spec)
        padded = PaddedSource(content, 0.2)
        frame = padded.frame(4)
        assert np.array_equal(padded.crop(frame), content.frame(4))

    def test_fps_preserved(self, small_spec):
        padded = PaddedSource(LowMotionFeed(small_spec), 0.15)
        assert padded.spec.fps == small_spec.fps


class TestResize:
    def test_identity(self):
        frame = np.arange(100, dtype=np.uint8).reshape(10, 10)
        assert np.array_equal(resize_frame(frame, (10, 10)), frame)

    def test_downscale_shape(self):
        frame = np.zeros((48, 64), dtype=np.uint8)
        assert resize_frame(frame, (24, 32)).shape == (24, 32)

    def test_upscale_shape(self):
        frame = np.zeros((24, 32), dtype=np.uint8)
        assert resize_frame(frame, (48, 64)).shape == (48, 64)

    def test_constant_frame_preserved(self):
        frame = np.full((32, 32), 77, dtype=np.uint8)
        out = resize_frame(frame, (20, 28))
        assert np.all(out == 77)

    def test_dtype_preserved_for_uint8(self):
        frame = np.zeros((16, 16), dtype=np.uint8)
        assert resize_frame(frame, (24, 24)).dtype == np.uint8

    def test_invalid_target(self):
        with pytest.raises(MediaError):
            resize_frame(np.zeros((16, 16)), (0, 10))


class TestResizeFrames:
    def test_matches_per_frame_exactly(self, rng):
        stack = rng.integers(0, 256, (20, 48, 64), dtype=np.uint8)
        batched = resize_frames(stack, (30, 40))
        per_frame = np.stack([resize_frame(f, (30, 40)) for f in stack])
        assert np.array_equal(batched, per_frame)

    def test_matches_per_frame_float(self, rng):
        stack = rng.random((6, 24, 32))
        batched = resize_frames(stack, (48, 64))
        per_frame = np.stack([resize_frame(f, (48, 64)) for f in stack])
        assert np.array_equal(batched, per_frame)

    def test_block_boundaries_consistent(self, rng, monkeypatch):
        # Stacks longer than one processing block must stitch cleanly.
        from repro.media import padding

        stack = rng.integers(0, 256, (40, 48, 64), dtype=np.uint8)
        expected = np.stack([resize_frame(f, (30, 40)) for f in stack])
        monkeypatch.setattr(padding, "_RESIZE_BLOCK_BYTES", 48 * 64 * 8 * 3)
        assert np.array_equal(resize_frames(stack, (30, 40)), expected)

    def test_identity_copies(self):
        stack = np.zeros((3, 16, 16), dtype=np.uint8)
        out = resize_frames(stack, (16, 16))
        assert out is not stack
        assert np.array_equal(out, stack)

    def test_rejects_non_stack(self):
        with pytest.raises(MediaError):
            resize_frames(np.zeros((16, 16)), (8, 8))

    def test_plan_cache_reused(self):
        from repro.media.padding import _resize_plan

        _resize_plan.cache_clear()
        resize_frame(np.zeros((16, 16), dtype=np.uint8), (8, 8))
        resize_frame(np.ones((16, 16), dtype=np.uint8), (8, 8))
        info = _resize_plan.cache_info()
        assert info.hits >= 1 and info.misses == 1


class TestVideoAlignment:
    def test_finds_known_shift(self, small_spec):
        feed = HighMotionFeed(small_spec)
        reference = feed.frames(30)
        recorded = feed.frames(25, start=5)  # starts 5 frames late
        shift, ref_aligned, rec_aligned = align_recordings(
            reference, recorded, max_shift=10
        )
        assert shift == -5
        assert len(ref_aligned) == len(rec_aligned)
        assert np.array_equal(ref_aligned[0], rec_aligned[0])

    def test_zero_shift(self, small_spec):
        feed = HighMotionFeed(small_spec)
        frames = feed.frames(20)
        shift, _, _ = align_recordings(frames, frames, max_shift=5)
        assert shift == 0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            align_recordings([], [np.zeros((8, 8))])

    def test_accepts_frame_stacks(self, small_spec):
        feed = HighMotionFeed(small_spec)
        reference = np.stack(feed.frames(30))
        recorded = np.stack(feed.frames(25, start=5))
        shift, ref_aligned, rec_aligned = align_recordings(
            reference, recorded, max_shift=10
        )
        assert shift == -5
        assert np.array_equal(ref_aligned[0], rec_aligned[0])

    def test_matches_sequential_search(self, small_spec, rng):
        # The one-matrix scoring must pick the same shift the original
        # per-shift Python loop would.
        feed = HighMotionFeed(small_spec)
        reference = feed.frames(40)
        for true_shift in (-7, -3, 0, 4, 9):
            if true_shift >= 0:
                recorded = [
                    np.clip(
                        f.astype(int) + rng.integers(-2, 3), 0, 255
                    ).astype(np.uint8)
                    for f in feed.frames(25, start=true_shift)
                ]
                shift, _, _ = align_recordings(
                    reference, recorded, max_shift=12
                )
                assert shift == -true_shift
            else:
                # Reference starting late means the recording leads it:
                # a positive shift of the same magnitude.
                recorded = feed.frames(25)
                shift, _, _ = align_recordings(
                    feed.frames(40, start=-true_shift), recorded, max_shift=12
                )
                assert shift == -true_shift

    def test_ragged_frames_rejected(self):
        with pytest.raises(AnalysisError):
            align_recordings(
                [np.zeros((8, 8)), np.zeros((9, 9))], [np.zeros((8, 8))]
            )


class TestFrameSimilarity:
    def test_textured_identical(self, rng):
        frame = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        assert _frame_similarity(frame, frame) == pytest.approx(1.0)

    def test_flat_frames_different_brightness_not_identical(self):
        # Regression: mean subtraction used to map flat frames of any
        # brightness to zero vectors that compared as identical.
        dark = np.zeros((16, 16), dtype=np.uint8)
        bright = np.full((16, 16), 200, dtype=np.uint8)
        assert _frame_similarity(dark, bright) == 0.0

    def test_flat_frames_same_brightness_identical(self):
        flat = np.full((16, 16), 93, dtype=np.uint8)
        assert _frame_similarity(flat, flat.copy()) == 1.0

    def test_flat_vs_textured_not_identical(self, rng):
        flat = np.full((16, 16), 128, dtype=np.uint8)
        textured = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        assert _frame_similarity(flat, textured) == 0.0

    def test_alignment_not_fooled_by_flat_leader(self, small_spec):
        # A recording led by flat frames at the wrong brightness must
        # not align to a flat stretch of the reference.
        feed = LowMotionFeed(small_spec)
        reference = [np.full(small_spec.shape, 30, dtype=np.uint8)] * 3
        reference += feed.frames(20)
        recorded = [np.full(small_spec.shape, 200, dtype=np.uint8)] * 3
        recorded += feed.frames(20)
        shift, ref_aligned, rec_aligned = align_recordings(
            reference, recorded, max_shift=5
        )
        assert shift == 0
        assert np.array_equal(ref_aligned[5], rec_aligned[5])


class TestAudioAlignment:
    def test_finds_sample_offset(self):
        speech = SpeechLikeSource().read_duration(0, 1.0)
        recorded = speech[400:]
        offset = find_audio_offset(speech, recorded, max_offset=1000)
        assert offset == -400

    def test_positive_offset(self):
        speech = SpeechLikeSource().read_duration(0, 1.0)
        recorded = np.concatenate([np.zeros(300), speech])
        offset = find_audio_offset(speech, recorded, max_offset=1000)
        assert offset == 300

    def test_trim_to_offset(self):
        reference = np.arange(100, dtype=np.float64)
        recorded = np.concatenate([np.zeros(10), reference])
        ref_aligned, rec_aligned = trim_to_offset(reference, recorded, 10)
        assert np.array_equal(ref_aligned, rec_aligned[: len(ref_aligned)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            find_audio_offset(np.array([]), np.array([1.0]))


class TestLoudness:
    def test_normalized_loudness_hits_target(self):
        speech = SpeechLikeSource().read_duration(0, 2.0)
        out = normalize_loudness(speech, target_lufs=-23.0)
        assert measure_loudness(out) == pytest.approx(-23.0, abs=0.5)

    def test_quiet_signal_amplified(self):
        speech = SpeechLikeSource().read_duration(0, 2.0) * 0.01
        out = normalize_loudness(speech, target_lufs=-23.0)
        assert np.abs(out).max() > np.abs(speech).max()

    def test_silence_measures_floor(self):
        assert measure_loudness(np.zeros(16_000)) == -70.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            measure_loudness(np.array([]))


class TestLoopback:
    def test_camera_serves_frames_by_time(self, small_spec):
        camera = VirtualCamera(LowMotionFeed(small_spec))
        frame = camera.read_frame_at(1.0)
        assert frame.shape == small_spec.shape
        assert camera.frame_index_at(1.0) == small_spec.fps

    def test_camera_counts_served(self, small_spec):
        camera = VirtualCamera(LowMotionFeed(small_spec))
        camera.read_frame_at(0.0)
        camera.read_frame(3)
        assert camera.frames_served == 2

    def test_camera_negative_time_rejected(self, small_spec):
        with pytest.raises(MediaError):
            VirtualCamera(LowMotionFeed(small_spec)).read_frame_at(-1.0)

    def test_microphone_serves_samples(self):
        microphone = VirtualMicrophone(ToneSource())
        samples = microphone.read_at(0.5, 0.25)
        assert len(samples) == 4000
        assert microphone.samples_served == 4000

    def test_microphone_sample_rate(self):
        assert VirtualMicrophone(ToneSource()).sample_rate == 16_000
