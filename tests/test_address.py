"""Addressing: transport addresses, endpoint keys, allocators."""

import pytest

from repro.errors import ConfigurationError
from repro.net.address import (
    Address,
    EndpointKey,
    EphemeralPortAllocator,
    IpAllocator,
    MEET_UDP_PORT,
    WEBEX_UDP_PORT,
    ZOOM_UDP_PORT,
)


class TestDesignatedPorts:
    def test_paper_port_numbers(self):
        # Section 4.2: UDP/8801 Zoom, UDP/9000 Webex, UDP/19305 Meet.
        assert ZOOM_UDP_PORT == 8801
        assert WEBEX_UDP_PORT == 9000
        assert MEET_UDP_PORT == 19305


class TestAddress:
    def test_str(self):
        assert str(Address("10.0.0.1", 8801)) == "10.0.0.1:8801"

    def test_port_range_low(self):
        with pytest.raises(ConfigurationError):
            Address("10.0.0.1", 0)

    def test_port_range_high(self):
        with pytest.raises(ConfigurationError):
            Address("10.0.0.1", 65536)

    def test_empty_ip_rejected(self):
        with pytest.raises(ConfigurationError):
            Address("", 80)

    def test_with_port(self):
        a = Address("10.0.0.1", 80)
        assert a.with_port(443) == Address("10.0.0.1", 443)

    def test_ordering_and_hash(self):
        a = Address("10.0.0.1", 80)
        b = Address("10.0.0.1", 81)
        assert a < b
        assert len({a, b, Address("10.0.0.1", 80)}) == 2


class TestEndpointKey:
    def test_of_address(self):
        key = EndpointKey.of(Address("1.2.3.4", 8801))
        assert key == EndpointKey("1.2.3.4", 8801, "udp")

    def test_address_roundtrip(self):
        key = EndpointKey("1.2.3.4", 9000)
        assert key.address == Address("1.2.3.4", 9000)

    def test_str(self):
        assert str(EndpointKey("1.2.3.4", 19305)) == "udp://1.2.3.4:19305"

    def test_hashable_distinct_by_port(self):
        keys = {EndpointKey("1.2.3.4", 80), EndpointKey("1.2.3.4", 81)}
        assert len(keys) == 2


class TestIpAllocator:
    def test_unique_across_calls(self):
        allocator = IpAllocator()
        ips = {allocator.allocate() for _ in range(500)}
        assert len(ips) == 500

    def test_tier_prefixes(self):
        allocator = IpAllocator()
        assert allocator.allocate("client").startswith("10.0.")
        assert allocator.allocate("infra").startswith("172.16.")
        assert allocator.allocate("mobile").startswith("192.168.")

    def test_unknown_tier(self):
        with pytest.raises(ConfigurationError):
            IpAllocator().allocate("underwater")


class TestEphemeralPorts:
    def test_sequential(self):
        allocator = EphemeralPortAllocator()
        first = allocator.allocate()
        assert allocator.allocate() == first + 1

    def test_range_start(self):
        assert EphemeralPortAllocator().allocate() >= 49152

    def test_bad_base(self):
        with pytest.raises(ConfigurationError):
            EphemeralPortAllocator(base=1000)

    def test_exhaustion(self):
        allocator = EphemeralPortAllocator(base=65535)
        allocator.allocate()
        with pytest.raises(ConfigurationError):
            allocator.allocate()
