"""The Figure 2 lag detector as pure trace analysis."""

import pytest

from repro.core.lag import (
    LagDetector,
    LagMeasurement,
    lag_statistics_ms,
    measure_streaming_lag,
)
from repro.errors import MeasurementError
from repro.net.capture import Capture, Direction
from repro.net.address import Address
from repro.net.packet import Packet


def synth_capture(times_and_sizes, direction, host="h"):
    capture = Capture(host)
    for t, size in times_and_sizes:
        packet = Packet(
            src=Address("10.0.0.1", 1000),
            dst=Address("10.0.0.2", 2000),
            payload_bytes=size,
        )
        capture.record(packet, direction, t)
    return capture


class TestBurstOnsets:
    def test_detects_first_big_packet(self):
        detector = LagDetector()
        series = [(0.0, 100), (1.0, 100), (2.0, 1200), (2.01, 1200)]
        assert detector.burst_onsets(series) == [2.0]

    def test_requires_quiescence(self):
        detector = LagDetector()
        # Big packets 0.5 s apart: one burst, not two.
        series = [(0.0, 1200), (0.5, 1200), (1.0, 1200)]
        assert detector.burst_onsets(series) == [0.0]

    def test_two_bursts_with_gap(self):
        detector = LagDetector()
        series = [(0.0, 1200), (2.0, 1200)]
        assert detector.burst_onsets(series) == [0.0, 2.0]

    def test_small_packets_ignored(self):
        detector = LagDetector()
        series = [(0.0, 1200), (1.0, 150), (1.5, 199), (2.0, 1200)]
        assert detector.burst_onsets(series) == [0.0, 2.0]

    def test_threshold_boundary(self):
        detector = LagDetector(big_packet_bytes=200)
        assert detector.burst_onsets([(0.0, 200)]) == []
        assert detector.burst_onsets([(0.0, 201)]) == [0.0]


class TestMatching:
    def test_simple_match(self):
        detector = LagDetector()
        matches = detector.match_bursts([0.0, 2.0], [0.04, 2.05])
        assert len(matches) == 2
        assert matches[0].lag_ms == pytest.approx(40.0)
        assert matches[1].lag_ms == pytest.approx(50.0)

    def test_lost_flash_skipped(self):
        detector = LagDetector()
        # Second sender burst never arrives.
        matches = detector.match_bursts([0.0, 2.0, 4.0], [0.04, 4.06])
        assert len(matches) == 2
        assert matches[1].sent_at == 4.0

    def test_max_lag_bound(self):
        detector = LagDetector()
        matches = detector.match_bursts([0.0], [1.5], max_lag_s=0.9)
        assert matches == []

    def test_bad_max_lag(self):
        with pytest.raises(MeasurementError):
            LagDetector().match_bursts([0.0], [0.1], max_lag_s=0)

    def test_receiver_burst_before_sender_ignored(self):
        detector = LagDetector()
        matches = detector.match_bursts([1.0], [0.5, 1.03])
        assert len(matches) == 1
        assert matches[0].received_at == 1.03


class TestEndToEnd:
    def test_measure_from_captures(self):
        sender = synth_capture(
            [(0.0, 1200), (2.0, 1200), (4.0, 1200)], Direction.OUT
        )
        receiver = synth_capture(
            [(0.035, 1200), (2.04, 1200), (4.03, 1200)], Direction.IN
        )
        lags = measure_streaming_lag(sender, receiver)
        assert [round(m.lag_ms) for m in lags] == [35, 40, 30]

    def test_empty_sender_raises(self):
        sender = synth_capture([], Direction.OUT)
        receiver = synth_capture([(0.0, 1200)], Direction.IN)
        with pytest.raises(MeasurementError):
            measure_streaming_lag(sender, receiver)

    def test_statistics(self):
        measurements = [
            LagMeasurement(0.0, 0.030),
            LagMeasurement(2.0, 2.040),
            LagMeasurement(4.0, 4.050),
        ]
        stats = lag_statistics_ms(measurements)
        assert stats["count"] == 3
        assert stats["median"] == pytest.approx(40.0)
        assert stats["mean"] == pytest.approx(40.0)

    def test_statistics_empty_raises(self):
        with pytest.raises(MeasurementError):
            lag_statistics_ms([])
