"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(2.0, order.append, "b")
        simulator.schedule(1.0, order.append, "a")
        simulator.schedule(3.0, order.append, "c")
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        simulator = Simulator()
        order = []
        for tag in "abc":
            simulator.schedule(1.0, order.append, tag)
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        simulator = Simulator()
        times = []
        simulator.schedule(0.5, lambda: times.append(simulator.now))
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [0.5, 1.5]

    def test_negative_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self):
        simulator = Simulator()
        seen = []

        def tick(n):
            seen.append(n)
            if n < 4:
                simulator.schedule(1.0, tick, n + 1)

        simulator.schedule(0.0, tick, 0)
        simulator.run()
        assert seen == [0, 1, 2, 3, 4]
        assert simulator.now == pytest.approx(4.0)


class TestRunUntil:
    def test_stops_at_boundary(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, seen.append, 1)
        simulator.schedule(2.0, seen.append, 2)
        simulator.run(until=1.5)
        assert seen == [1]
        assert simulator.now == pytest.approx(1.5)

    def test_boundary_inclusive(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, seen.append, 1)
        simulator.run(until=1.0)
        assert seen == [1]

    def test_run_for(self):
        simulator = Simulator()
        simulator.run_for(5.0)
        assert simulator.now == pytest.approx(5.0)

    def test_run_for_negative_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().run_for(-1.0)

    def test_remaining_events_survive(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(2.0, seen.append, 2)
        simulator.run(until=1.0)
        assert simulator.pending_events == 1
        simulator.run()
        assert seen == [2]


class TestSafety:
    def test_not_reentrant(self):
        simulator = Simulator()

        def evil():
            simulator.run()

        simulator.schedule(0.0, evil)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_event_storm_guard(self):
        simulator = Simulator()

        def storm():
            simulator.schedule(0.0, storm)

        simulator.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            simulator.run(max_events=1000)

    def test_max_events_is_an_exact_bound(self):
        # Regression: the guard used to fire only after max_events + 1
        # events had already executed.
        simulator = Simulator()
        for _ in range(6):
            simulator.schedule(0.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.run(max_events=5)
        assert simulator.events_processed == 5

    def test_max_events_allows_exactly_that_many(self):
        simulator = Simulator()
        for _ in range(5):
            simulator.schedule(0.0, lambda: None)
        simulator.run(max_events=5)  # must drain without raising
        assert simulator.events_processed == 5

    def test_processed_counter(self):
        simulator = Simulator()
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 5
