"""Bit-identity of the codec batching engine.

PR 5 vectorises both codecs -- one DCT over a tick's audio frame
matrix, stacked block transforms and sparse block gathering for video
-- but, like the packet-path fast lane, batching must be *exactly* the
same codec: identical quantiser walks, identical sparse coefficients,
identical size estimates, identical reconstructions and rate-controller
state.  These tests diff the batched entry points against their
per-frame twins (``batch=False``) coefficient by coefficient, then run
a full session both ways and diff every artifact.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

import repro.media.batching as batching
import repro.net.packet as packet_mod
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.errors import CodecError
from repro.media.audio import SpeechLikeSource, ToneSource
from repro.media.audio_codec import (
    AudioCodec,
    AudioCodecConfig,
    AudioDecoder,
)
from repro.media.feeds import HighMotionFeed, LowMotionFeed, StaticFeed
from repro.media.frames import FrameSpec
from repro.media.transport import fragment_frame, fragment_frames
from repro.media.video_codec import (
    BLOCK,
    VideoCodec,
    VideoCodecConfig,
    VideoDecoder,
    _block_dct,
    _block_idct,
    _estimate_bits,
    _pad_to_blocks,
    _skip_deadzone_mask,
)


@pytest.fixture(autouse=True)
def _restore_batch_default():
    original = batching.BATCH_DEFAULT
    yield
    batching.BATCH_DEFAULT = original


def assert_audio_frames_equal(batched, per_frame):
    assert len(batched) == len(per_frame)
    for a, b in zip(batched, per_frame):
        assert a.index == b.index
        assert a.q_step == b.q_step
        assert a.frame_samples == b.frame_samples
        assert a.indices.dtype == b.indices.dtype
        assert a.values.dtype == b.values.dtype
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)
        assert a.size_bytes == b.size_bytes


def assert_video_frames_equal(batched, per_frame):
    assert len(batched) == len(per_frame)
    for a, b in zip(batched, per_frame):
        assert a.index == b.index
        assert a.keyframe == b.keyframe
        assert a.q_step == b.q_step
        assert a.shape == b.shape
        assert tuple(a.crop) == tuple(b.crop)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)
        assert a.size_bytes == b.size_bytes


# --------------------------------------------------------------------- #
# Audio codec.
# --------------------------------------------------------------------- #


class TestAudioEncodeEquivalence:
    @pytest.mark.parametrize("bitrate", [8_000, 45_000, 90_000])
    def test_speech_bit_identical(self, bitrate):
        config = AudioCodecConfig(bitrate_bps=bitrate)
        speech = SpeechLikeSource(seed=5).read_duration(0.0, 1.5)
        batched = AudioCodec(config, batch=True).encode(speech)
        per_frame = AudioCodec(config, batch=False).encode(speech)
        assert batched, "speech clip produced no frames"
        assert_audio_frames_equal(batched, per_frame)

    def test_per_frame_path_is_the_encode_frame_loop(self):
        config = AudioCodecConfig(bitrate_bps=45_000)
        speech = SpeechLikeSource(seed=5).read_duration(0.0, 0.5)
        codec = AudioCodec(config, batch=False)
        loop = AudioCodec(config, batch=True)
        frame_samples = config.frame_samples
        manual = [
            loop.encode_frame(speech[i : i + frame_samples])
            for i in range(0, len(speech), frame_samples)
        ]
        assert_audio_frames_equal(manual, codec.encode(speech))

    def test_silence_and_noise_and_overload(self):
        config = AudioCodecConfig(bitrate_bps=45_000)
        rng = np.random.default_rng(0)
        signals = [
            np.zeros(320 * 7),
            rng.normal(0.0, 0.4, 320 * 13),
            rng.normal(0.0, 80.0, 320 * 3),  # far beyond any budget
            ToneSource().read_duration(0.0, 0.2),
        ]
        for samples in signals:
            batched = AudioCodec(config, batch=True).encode(samples)
            per_frame = AudioCodec(config, batch=False).encode(samples)
            assert_audio_frames_equal(batched, per_frame)

    def test_empty_buffer(self):
        assert AudioCodec(batch=True).encode(np.zeros(0)) == []

    def test_misaligned_buffer_rejected(self):
        codec = AudioCodec(batch=True)
        with pytest.raises(CodecError):
            codec.encode(np.zeros(codec.config.frame_samples + 1))

    def test_batch_default_respected(self):
        batching.BATCH_DEFAULT = False
        assert not AudioCodec().batch
        batching.BATCH_DEFAULT = True
        assert AudioCodec().batch
        assert not AudioCodec(batch=False).batch

    def test_index_continuity_across_batches(self):
        """Tick-sized batches continue the frame index like the loop."""
        config = AudioCodecConfig(bitrate_bps=45_000)
        speech = SpeechLikeSource(seed=5).read_duration(0.0, 1.0)
        tick = 5 * config.frame_samples
        batched = AudioCodec(config, batch=True)
        per_frame = AudioCodec(config, batch=False)
        out_b, out_s = [], []
        for start in range(0, len(speech), tick):
            out_b += batched.encode(speech[start : start + tick])
            out_s += per_frame.encode(speech[start : start + tick])
        assert [f.index for f in out_b] == list(range(len(out_b)))
        assert_audio_frames_equal(out_b, out_s)


class TestAudioDecodeEquivalence:
    def _frames(self):
        config = AudioCodecConfig(bitrate_bps=45_000)
        speech = SpeechLikeSource(seed=5).read_duration(0.0, 1.0)
        return config, AudioCodec(config).encode(speech)

    def test_lazy_batched_waveform_bit_identical(self):
        config, frames = self._frames()
        lazy = AudioDecoder(AudioCodec(config), batch=True)
        eager = AudioDecoder(AudioCodec(config), batch=False)
        order = [f for f in frames if f.index not in {5, 6, 40}]
        random.Random(1).shuffle(order)
        order.append(order[3])  # duplicate delivery
        for frame in order:
            lazy.push(frame)
            eager.push(frame)
        total = len(frames)
        assert np.array_equal(lazy.waveform(total), eager.waveform(total))
        assert lazy.frames_received == eager.frames_received
        assert lazy.frames_concealed == eager.frames_concealed

    def test_waveform_idempotent_after_drain(self):
        config, frames = self._frames()
        lazy = AudioDecoder(AudioCodec(config), batch=True)
        for frame in frames:
            lazy.push(frame)
        first = lazy.waveform(len(frames))
        again = lazy.waveform(len(frames))
        assert np.array_equal(first, again)

    def test_push_after_drain_decodes_late_frame(self):
        config, frames = self._frames()
        lazy = AudioDecoder(AudioCodec(config), batch=True)
        eager = AudioDecoder(AudioCodec(config), batch=False)
        for frame in frames[:-1]:
            lazy.push(frame)
            eager.push(frame)
        lazy.waveform(len(frames))  # drain mid-stream
        lazy.push(frames[-1])
        eager.push(frames[-1])
        assert np.array_equal(
            lazy.waveform(len(frames)), eager.waveform(len(frames))
        )


class TestQuantiserProperties:
    def test_silent_frame_minimal_size(self):
        codec = AudioCodec(batch=True)
        [frame] = codec.encode(np.zeros(codec.config.frame_samples))
        assert frame.indices.size == 0
        assert frame.values.size == 0
        assert frame.size_bytes == 8  # ceil(64-bit header / 8)

    def test_fitted_step_meets_budget(self):
        """The returned step's realised probe bits fit the budget."""
        config = AudioCodecConfig(bitrate_bps=45_000)
        codec = AudioCodec(config)
        speech = SpeechLikeSource(seed=5).read_duration(0.0, 0.5)
        n = config.frame_samples
        from scipy import fft as sp_fft

        for start in range(0, len(speech), n):
            coeffs = sp_fft.dct(speech[start : start + n], norm="ortho")
            step = codec._fit_quantiser(coeffs, config.frame_budget_bits)
            levels = np.round(np.abs(coeffs) / step)
            bits = float(codec._probe_bits(levels))
            assert bits <= config.frame_budget_bits or step == 10.0

    def test_batch_fit_matches_scalar_fit(self):
        config = AudioCodecConfig(bitrate_bps=45_000)
        codec = AudioCodec(config)
        rng = np.random.default_rng(2)
        from scipy import fft as sp_fft

        stack = sp_fft.dct(rng.normal(0, 0.5, (17, 320)), norm="ortho")
        batched = codec._fit_quantiser_batch(stack, config.frame_budget_bits)
        scalar = [
            codec._fit_quantiser(stack[i], config.frame_budget_bits)
            for i in range(stack.shape[0])
        ]
        assert np.array_equal(batched, np.array(scalar))

    def test_higher_budget_finer_step(self):
        codec = AudioCodec()
        rng = np.random.default_rng(3)
        from scipy import fft as sp_fft

        coeffs = sp_fft.dct(rng.normal(0, 0.5, 320), norm="ortho")
        fine = codec._fit_quantiser(coeffs, 2000.0)
        coarse = codec._fit_quantiser(coeffs, 500.0)
        assert fine <= coarse


# --------------------------------------------------------------------- #
# Video codec.
# --------------------------------------------------------------------- #


SPEC = FrameSpec(128, 96, 12)


def _encode_both(spec, feed_cls, count, gop=5, rate=300_000, splits=None,
                 force_at=None, retarget_at=None, dtype=None):
    """Encode the same frames batched and per-frame; return both lists."""
    config = VideoCodecConfig(gop_size=gop)
    batched = VideoCodec(spec, config, target_bps=rate, batch=True)
    per_frame = VideoCodec(spec, config, target_bps=rate, batch=False)
    feed = feed_cls(spec, seed=3)
    frames = np.stack(feed.frames(count))
    if dtype is not None:
        frames = frames.astype(dtype)
    splits = splits or [count]
    out_b, out_s = [], []
    start = 0
    for size in splits:
        if force_at is not None and start == force_at:
            batched.request_keyframe()
            per_frame.request_keyframe()
        if retarget_at is not None and start == retarget_at:
            batched.rate_controller.set_target(rate / 3.0)
            per_frame.rate_controller.set_target(rate / 3.0)
        chunk = frames[start : start + size]
        out_b += batched.encode_batch(chunk)
        out_s += [per_frame.encode(frame) for frame in chunk]
        start += size
    assert_video_frames_equal(out_b, out_s)
    assert batched.rate_controller.q_step == per_frame.rate_controller.q_step
    assert np.array_equal(batched._reference, per_frame._reference)
    return out_b, out_s


class TestVideoEncodeEquivalence:
    def test_gop_cadence_bit_identical(self):
        _encode_both(SPEC, LowMotionFeed, 17, gop=5, splits=[8, 9])

    def test_high_motion_with_forced_keyframe(self):
        _encode_both(SPEC, HighMotionFeed, 14, gop=30, splits=[7, 7],
                     force_at=7)

    def test_rate_change_boundary(self):
        _encode_both(SPEC, HighMotionFeed, 16, gop=8, splits=[8, 8],
                     retarget_at=8)

    def test_static_feed_skip_deadzone(self):
        encoded, _ = _encode_both(SPEC, StaticFeed, 12, gop=600)
        # The deadzone must actually engage: settled frames code nothing.
        assert any(f.values.size == 0 and not f.keyframe for f in encoded)

    def test_odd_resolution_through_padding(self):
        _encode_both(FrameSpec(100, 75, 10), LowMotionFeed, 9,
                     splits=[3, 3, 3])

    def test_minimal_plane(self):
        _encode_both(FrameSpec(16, 16, 10), LowMotionFeed, 6)

    def test_float_input_stack(self):
        _encode_both(SPEC, LowMotionFeed, 6, dtype=np.float64)
        _encode_both(SPEC, LowMotionFeed, 6, dtype=np.float32)

    def test_single_frame_and_empty_batch(self):
        codec = VideoCodec(SPEC, batch=True)
        assert codec.encode_batch(np.zeros((0,) + SPEC.shape, np.uint8)) == []
        _encode_both(SPEC, LowMotionFeed, 1)

    def test_wrong_geometry_rejected(self):
        codec = VideoCodec(SPEC, batch=True)
        with pytest.raises(CodecError):
            codec.encode_batch(np.zeros((3, 10, 10), dtype=np.uint8))


class TestVideoDecodeEquivalence:
    def _encoded(self, count=24, gop=6):
        codec = VideoCodec(SPEC, VideoCodecConfig(gop_size=gop),
                           target_bps=300_000)
        return codec.encode_batch(np.stack(LowMotionFeed(SPEC).frames(count)))

    def _assert_same_decode(self, frames):
        batched = VideoDecoder(SPEC, batch=True)
        per_frame = VideoDecoder(SPEC, batch=False)
        out_b = batched.decode_batch(frames)
        out_s = [per_frame.decode(frame) for frame in frames]
        assert len(out_b) == len(out_s)
        for a, b in zip(out_b, out_s):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)
        assert batched.frames_decoded == per_frame.frames_decoded
        assert batched.frames_frozen == per_frame.frames_frozen
        if per_frame._reference is None:
            assert batched._reference is None
        else:
            assert np.array_equal(batched._reference, per_frame._reference)

    def test_clean_burst(self):
        self._assert_same_decode(self._encoded())

    def test_losses_freeze_and_resync(self):
        frames = self._encoded()
        self._assert_same_decode([f for f in frames if f.index not in {3, 13}])

    def test_burst_starting_on_inter_frame(self):
        frames = self._encoded()
        self._assert_same_decode(frames[2:])

    def test_burst_ending_frozen_keeps_awaiting_state(self):
        """A burst whose tail is lost leaves the decoder awaiting a
        keyframe, so later per-frame decodes freeze exactly like the
        pure per-frame history."""
        frames = self._encoded(count=20, gop=8)
        kept = [f for f in frames[:12] if f.index != 10]  # ends frozen
        batched = VideoDecoder(SPEC, batch=True)
        per_frame = VideoDecoder(SPEC, batch=False)
        batched.decode_batch(kept)
        [per_frame.decode(f) for f in kept]
        for frame in frames[12:]:
            a = batched.decode(frame)
            b = per_frame.decode(frame)
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)
        assert batched.frames_decoded == per_frame.frames_decoded
        assert batched.frames_frozen == per_frame.frames_frozen
        assert np.array_equal(batched._reference, per_frame._reference)

    def test_mark_lost_between_bursts(self):
        frames = self._encoded()
        batched = VideoDecoder(SPEC, batch=True)
        per_frame = VideoDecoder(SPEC, batch=False)
        batched.decode_batch(frames[:2])
        [per_frame.decode(f) for f in frames[:2]]
        batched.mark_lost(2)
        per_frame.mark_lost(2)
        out_b = batched.decode_batch(frames[3:])
        out_s = [per_frame.decode(f) for f in frames[3:]]
        for a, b in zip(out_b, out_s):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a, b)
        assert batched.frames_frozen == per_frame.frames_frozen

    def test_stats_only_decoder_matches_pixel_stats(self):
        frames = self._encoded()
        kept = [f for f in frames if f.index not in {4, 9, 10}]
        stats = VideoDecoder(SPEC, pixels=False)
        pixel = VideoDecoder(SPEC, pixels=True)
        for frame in kept:
            stats.decode(frame)
            pixel.decode(frame)
        assert stats.frames_decoded == pixel.frames_decoded
        assert stats.frames_frozen == pixel.frames_frozen
        assert stats.last_frame is None
        assert pixel.last_frame is not None


class TestDeferredDecodeEquivalence:
    """Deferred receiver decode: park events, replay at materialise.

    ``defer=True`` runs the freeze/resync metadata machine eagerly but
    parks all pixel work as an event log; :meth:`materialise` replays it
    through an internal eager decoder.  Counters must read true at every
    simulated moment, and each recorder token must resolve to exactly
    the frame the eager path would have grabbed.
    """

    def _encoded(self, count=24, gop=6):
        codec = VideoCodec(SPEC, VideoCodecConfig(gop_size=gop),
                           target_bps=300_000)
        return codec.encode_batch(np.stack(LowMotionFeed(SPEC).frames(count)))

    def test_token_replay_bit_identical(self):
        frames = self._encoded()
        deferred = VideoDecoder(SPEC, defer=True)
        eager = VideoDecoder(SPEC, defer=False)
        expected = []
        for frame in frames:
            if frame.index in {3, 13}:  # transport losses
                assert deferred.mark_lost(frame.index) is None
                expected.append(eager.mark_lost(frame.index))
            else:
                assert deferred.decode(frame) is None
                expected.append(eager.decode(frame))
            # The metadata state machine is eager and exact throughout.
            assert deferred.frames_decoded == eager.frames_decoded
            assert deferred.frames_frozen == eager.frames_frozen
            assert deferred.has_output == (eager.frames_decoded > 0)
        assert deferred.events_seen == len(expected)
        assert deferred.frame_at_token(0) is None
        for token, want in enumerate(expected, start=1):
            got = deferred.frame_at_token(token)
            if want is None:
                assert got is None
            else:
                assert np.array_equal(got, want)
        assert np.array_equal(deferred.last_frame, eager.last_frame)
        assert np.array_equal(deferred._reference, eager._reference)

    def test_materialise_cycles_compose(self):
        """Mid-stream materialise + further deferral stays exact."""
        frames = self._encoded(count=20, gop=5)
        deferred = VideoDecoder(SPEC, defer=True)
        eager = VideoDecoder(SPEC, defer=False)
        expected = []
        for frame in frames[:8]:
            deferred.decode(frame)
            expected.append(eager.decode(frame))
        assert np.array_equal(deferred.last_frame, eager.last_frame)
        deferred.mark_lost(8)
        expected.append(eager.mark_lost(8))
        for frame in frames[9:]:
            deferred.decode(frame)
            expected.append(eager.decode(frame))
        for token, want in enumerate(expected, start=1):
            got = deferred.frame_at_token(token)
            if want is None:
                assert got is None
            else:
                assert np.array_equal(got, want)

    def test_defer_requires_pixels(self):
        assert not VideoDecoder(SPEC, pixels=False, defer=True).defer
        assert VideoDecoder(SPEC, pixels=True, defer=True).defer


class TestBlockKernelProperties:
    def test_stacked_pad_matches_per_frame(self):
        rng = np.random.default_rng(1)
        stack = rng.integers(0, 256, size=(5, 75, 100)).astype(np.float64)
        padded = _pad_to_blocks(stack)
        assert padded.shape == (5, 80, 104)
        for i in range(5):
            assert np.array_equal(padded[i], _pad_to_blocks(stack[i]))
        # Edge padding replicates the border rows/columns.
        assert np.array_equal(padded[0, 75:, :100],
                              np.tile(stack[0, 74], (5, 1)))

    def test_stacked_block_dct_matches_per_frame(self):
        rng = np.random.default_rng(2)
        stack = rng.normal(0, 30, size=(4, 32, 40))
        coeffs = _block_dct(stack)
        for i in range(4):
            assert np.array_equal(coeffs[i], _block_dct(stack[i]))
        back = _block_idct(coeffs, (32, 40))
        for i in range(4):
            assert np.array_equal(back[i], _block_idct(coeffs[i], (32, 40)))

    def test_single_block_plane_roundtrip(self):
        rng = np.random.default_rng(3)
        plane = rng.normal(0, 10, size=(BLOCK, BLOCK))
        coeffs = _block_dct(plane)
        assert coeffs.shape == (1, 1, BLOCK, BLOCK)
        assert np.allclose(_block_idct(coeffs, plane.shape), plane)

    def test_skip_deadzone_mask_matches_reference_formulation(self):
        rng = np.random.default_rng(4)
        residual = rng.normal(0, 1.0, size=(24, 40))
        by, bx = residual.shape[0] // BLOCK, residual.shape[1] // BLOCK
        reference = np.abs(residual).reshape(by, BLOCK, bx, BLOCK).transpose(
            0, 2, 1, 3
        ).reshape(by, bx, -1).max(axis=-1) < 1.25
        assert np.array_equal(_skip_deadzone_mask(residual), reference)

    def test_estimate_bits_empty_is_skip_flags_only(self):
        assert _estimate_bits(np.zeros(0, np.int16), 192, 0) == int(
            np.ceil((192 + 256) / 8.0)
        )

    def test_estimate_bits_monotone_in_occupancy(self):
        values = np.array([3, -4, 10], dtype=np.int16)
        assert _estimate_bits(values, 192, 3) >= _estimate_bits(values, 192, 1)

    def test_budget_exhaustion_every_block_skipped(self):
        """A settled static scene codes zero coefficients everywhere."""
        codec = VideoCodec(SPEC, VideoCodecConfig(gop_size=600),
                           target_bps=300_000)
        feed = StaticFeed(SPEC)
        frames = codec.encode_batch(np.stack(feed.frames(8)))
        settled = frames[-1]
        assert not settled.keyframe
        assert settled.values.size == 0
        num_blocks = (settled.shape[0] // BLOCK) * (settled.shape[1] // BLOCK)
        assert settled.size_bytes == int(np.ceil((num_blocks + 256) / 8.0))


class TestTransportBatch:
    def test_fragment_frames_matches_per_frame(self):
        frames = ["a", "b", "c"]
        sizes = [2500, 0, 1200]
        indices = [7, 8, 9]
        batched = fragment_frames(frames, sizes, indices)
        for frame, size, index, fragments in zip(
            frames, sizes, indices, batched
        ):
            assert fragments == fragment_frame(frame, size, index)

    def test_fragment_frames_length_mismatch(self):
        from repro.errors import MediaError

        with pytest.raises(MediaError):
            fragment_frames(["a"], [1, 2], [0])


# --------------------------------------------------------------------- #
# End-to-end: one session, batching on vs off.
# --------------------------------------------------------------------- #


CLIENTS = ("US-East", "US-East2", "US-Central")


def _run_session(codec_batch: bool, defer=None):
    """One short A/V session; returns comparable artifact signatures."""
    packet_mod._packet_ids = itertools.count(1)
    testbed = Testbed(TestbedConfig(seed=11))
    for name in CLIENTS:
        testbed.add_vm(name)
    config = SessionConfig(
        duration_s=4.0,
        feed="low",
        pad_fraction=0.15,
        content_spec=FrameSpec(128, 96, 12),
        audio=True,
        record_video=True,
        record_audio=True,
        probes=False,
        session_index=0,
        feed_seed=11,
        codec_batch=codec_batch,
        defer_decode=defer,
    )
    artifacts = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
    captures = {
        name: [tuple(row) for row in capture._rows]
        for name, capture in artifacts.captures.items()
    }
    qoe_inputs = {
        name: b"".join(frame.tobytes() for frame in recorder.frames_head(16))
        for name, recorder in artifacts.recorders.items()
    }
    audio_flow = artifacts.wiring.audio_flow("US-East")
    waveforms = {
        name: artifacts.recorded_audio(name, audio_flow).tobytes()
        for name in CLIENTS
        if name != "US-East"
    }
    network = testbed.network
    return {
        "captures": captures,
        "qoe_inputs": qoe_inputs,
        "waveforms": waveforms,
        "rng_state": str(network.rng.bit_generator.state),
        "now": network.simulator.now,
        "rates": artifacts.rate_summary(),
    }


class TestSessionRegression:
    def test_batching_on_off_bit_identical(self):
        on = _run_session(True)
        off = _run_session(False)
        assert on["captures"] == off["captures"]
        assert on["qoe_inputs"] == off["qoe_inputs"]
        assert on["waveforms"] == off["waveforms"]
        assert on["rng_state"] == off["rng_state"]
        assert on["now"] == off["now"]
        assert on["rates"] == off["rates"]

    def test_defer_decode_on_off_bit_identical(self):
        """Parking receiver decodes must not move a single artifact."""
        on = _run_session(True, defer=True)
        off = _run_session(True, defer=False)
        assert on["captures"] == off["captures"]
        assert on["qoe_inputs"] == off["qoe_inputs"]
        assert on["waveforms"] == off["waveforms"]
        assert on["rng_state"] == off["rng_state"]
        assert on["now"] == off["now"]
        assert on["rates"] == off["rates"]
