"""Bit-identity of the packet-path fast lane.

The fused packet path (:mod:`repro.net.routing`) removes up to two of
the three heap events every packet costs, but it must be *exactly* the
same simulation: identical capture rows, identical rng consumption,
identical QoE inputs.  These tests run full sessions -- one static, one
with a multi-phase dynamics timeline whose boundaries force in-flight
packets back onto the slow path -- with the fast lane force-disabled
and force-enabled, and diff everything.
"""

from __future__ import annotations

import itertools

import pytest

import repro.net.packet as packet_mod
import repro.net.routing as routing
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.media.frames import FrameSpec
from repro.net.dynamics import bandwidth_ramp_timeline, handover_timeline
from repro.net.geo import GeoPoint, LatencyModel
from repro.net.packet import Packet, PacketKind
from repro.net.routing import Network
from repro.units import mbps

CLIENTS = ("US-East", "US-East2", "US-Central")


@pytest.fixture(autouse=True)
def _restore_fast_lane_default():
    original = routing.FAST_LANE_DEFAULT
    original_burst = routing.BURST_DEFAULT
    yield
    routing.FAST_LANE_DEFAULT = original
    routing.BURST_DEFAULT = original_burst


def _run_session(fast_lane: bool, timeline=None, probes: bool = True,
                 burst=None):
    """One full session; returns comparable artifact signatures."""
    routing.FAST_LANE_DEFAULT = fast_lane
    if burst is not None:
        routing.BURST_DEFAULT = burst
    # Packet ids are process-global; reset so runs are comparable.
    packet_mod._packet_ids = itertools.count(1)
    testbed = Testbed(TestbedConfig(seed=11))
    for name in CLIENTS:
        testbed.add_vm(name)
    config = SessionConfig(
        duration_s=6.0,
        feed="high",
        pad_fraction=0.15,
        content_spec=FrameSpec(128, 96, 12),
        probes=probes,
        record_video=True,
        session_index=0,
        feed_seed=11,
        timelines=None if timeline is None else {"US-East2": timeline},
    )
    artifacts = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
    captures = {
        name: [tuple(row) for row in capture._rows]
        for name, capture in artifacts.captures.items()
    }
    qoe_inputs = {
        name: b"".join(frame.tobytes() for frame in recorder.frames_head(24))
        for name, recorder in artifacts.recorders.items()
    }
    network = testbed.network
    return {
        "captures": captures,
        "qoe_inputs": qoe_inputs,
        "rng_state": str(network.rng.bit_generator.state),
        "now": network.simulator.now,
        "rates": artifacts.rate_summary(),
        "fused": network.fast_lane_fused,
        "epoch_misses": network.fast_lane_epoch_misses,
        "shaper_dropped": network.packets_shaper_dropped,
        "condition_lost": network.packets_condition_lost,
        "burst_trains": network.burst_trains,
        "burst_packets": network.burst_packets,
    }


def _assert_identical(fast: dict, slow: dict) -> None:
    assert fast["captures"] == slow["captures"]
    assert fast["qoe_inputs"] == slow["qoe_inputs"]
    assert fast["rng_state"] == slow["rng_state"]
    assert fast["now"] == slow["now"]
    assert fast["rates"] == slow["rates"]
    assert fast["shaper_dropped"] == slow["shaper_dropped"]
    assert fast["condition_lost"] == slow["condition_lost"]


class TestStaticSession:
    def test_bit_identical_and_fast_lane_engaged(self):
        fast = _run_session(True)
        slow = _run_session(False)
        _assert_identical(fast, slow)
        assert slow["fused"] == 0
        assert fast["fused"] > 1000, "fast lane never engaged"
        assert fast["epoch_misses"] == 0


class TestDynamicsSessions:
    def test_handover_timeline_bit_identical(self):
        timeline = handover_timeline(3.0, 3.0, outage_s=0.5)
        fast = _run_session(True, timeline=timeline)
        slow = _run_session(False, timeline=timeline)
        _assert_identical(fast, slow)
        assert fast["fused"] > 0
        assert fast["epoch_misses"] == 0

    def test_ramp_timeline_bit_identical(self):
        timeline = bandwidth_ramp_timeline(
            [mbps(4), mbps(1), mbps(0.5), mbps(2)], step_s=1.5
        )
        fast = _run_session(True, timeline=timeline)
        slow = _run_session(False, timeline=timeline)
        _assert_identical(fast, slow)
        assert fast["fused"] > 0
        assert fast["epoch_misses"] == 0


class TestFullFusion:
    """The jitter-free topology where the single-event path engages."""

    def _drive(self, fast_lane: bool, packets: int = 400):
        from repro.net.simulator import Simulator
        import numpy as np

        packet_mod._packet_ids = itertools.count(1)
        simulator = Simulator()
        network = Network(
            simulator=simulator,
            latency_model=LatencyModel(jitter_fraction=0.0),
            rng=np.random.default_rng(0),
            fast_lane=fast_lane,
        )
        tx = network.add_host("tx", GeoPoint("tx", 40.0, -74.0))
        rx = network.add_host("rx", GeoPoint("rx", 41.0, -87.0))
        rx.start_capture()
        delivered = []
        rx.bind(5000, lambda p, h: delivered.append((simulator.now, p.packet_id)))
        src = tx.address(4000)
        dst = rx.address(5000)
        for i in range(packets):
            simulator.schedule_at(
                i * 5e-5,
                lambda: tx.send(Packet.fast(src, dst, 1200,
                                            PacketKind.MEDIA_VIDEO, "f")),
            )
        simulator.run()
        rows = [tuple(row) for row in rx._captures[0]._rows]
        return delivered, rows, network

    def test_single_event_path_is_exact(self):
        fast_delivered, fast_rows, fast_net = self._drive(True)
        slow_delivered, slow_rows, slow_net = self._drive(False)
        assert fast_delivered == slow_delivered
        assert fast_rows == slow_rows
        assert fast_net.fast_lane_sender_fused == len(fast_delivered)
        assert fast_net.fast_lane_epoch_misses == 0

    def test_backlogged_downlink_rearms_exactly(self):
        """Deliveries behind a slow downlink still match the slow path."""
        from repro.net.link import AccessLink
        from repro.net.simulator import Simulator
        import numpy as np

        def drive(fast_lane):
            simulator = Simulator()
            network = Network(
                simulator=simulator,
                latency_model=LatencyModel(jitter_fraction=0.0),
                rng=np.random.default_rng(0),
                fast_lane=fast_lane,
            )
            tx = network.add_host("tx", GeoPoint("tx", 40.0, -74.0))
            # A downlink slower than the offered rate: every fused
            # delivery estimate lands early and must re-arm.
            rx = network.add_host(
                "rx", GeoPoint("rx", 41.0, -87.0),
                link=AccessLink(downlink_bps=2_000_000.0),
            )
            delivered = []
            rx.bind(5000, lambda p, h: delivered.append((simulator.now, p.payload_bytes)))
            src = tx.address(4000)
            dst = rx.address(5000)
            for i in range(200):
                simulator.schedule_at(
                    i * 1e-4,
                    lambda: tx.send(Packet.fast(src, dst, 1200,
                                                PacketKind.MEDIA_VIDEO, "f")),
                )
            simulator.run()
            return delivered, network

        fast_delivered, fast_net = drive(True)
        slow_delivered, _ = drive(False)
        assert fast_delivered == slow_delivered
        assert fast_net.fast_lane_rearmed > 0


def _run_model_session(burst: bool):
    """A 6-party size-modelled (SFU fan-out) session, burst on or off."""
    routing.FAST_LANE_DEFAULT = True
    routing.BURST_DEFAULT = burst
    packet_mod._packet_ids = itertools.count(1)
    names = ["US-East", "US-East2", "US-East3",
             "US-Central", "US-Central2", "US-West"]
    testbed = Testbed(TestbedConfig(seed=11))
    for name in names:
        testbed.add_vm(name)
    config = SessionConfig(
        duration_s=4.0,
        feed="high",
        use_codec=False,
        content_spec=FrameSpec(640, 480, 30),
        probes=True,
        record_video=False,
        audio=False,
        session_index=0,
        feed_seed=11,
    )
    artifacts = testbed.run_session("webex", names, names[0], config)
    network = testbed.network
    return {
        "captures": {
            name: [tuple(row) for row in capture._rows]
            for name, capture in artifacts.captures.items()
        },
        "rng_state": str(network.rng.bit_generator.state),
        "now": network.simulator.now,
        "rates": artifacts.rate_summary(),
        "packets": sum(host.packets_sent for host in network.hosts()),
    }


class TestBurstSessions:
    """Burst mode on vs off across full sessions: bit-identical artifacts.

    Inside a live session the bulk tier is expected to refuse trains
    whenever anything could interleave (receiver closures, competing
    heap events, timeline flips) -- the contract under test is that
    flipping :data:`repro.net.routing.BURST_DEFAULT` never changes a
    single capture row, QoE input byte, or RNG draw.
    """

    def test_static_session_burst_identical(self):
        on = _run_session(True, burst=True)
        off = _run_session(True, burst=False)
        _assert_identical(on, off)
        assert off["burst_trains"] == 0

    def test_handover_session_burst_identical(self):
        timeline = handover_timeline(3.0, 3.0, outage_s=0.5)
        on = _run_session(True, timeline=timeline, burst=True)
        off = _run_session(True, timeline=timeline, burst=False)
        _assert_identical(on, off)

    def test_ramp_session_burst_identical(self):
        timeline = bandwidth_ramp_timeline(
            [mbps(4), mbps(1), mbps(0.5), mbps(2)], step_s=1.5
        )
        on = _run_session(True, timeline=timeline, burst=True)
        off = _run_session(True, timeline=timeline, burst=False)
        _assert_identical(on, off)

    def test_model_session_burst_identical(self):
        on = _run_model_session(True)
        off = _run_model_session(False)
        assert on["captures"] == off["captures"]
        assert on["rng_state"] == off["rng_state"]
        assert on["now"] == off["now"]
        assert on["rates"] == off["rates"]
        assert on["packets"] == off["packets"]


class TestBurstCommit:
    """The array-level bulk tier vs the exact per-packet loop."""

    def _drive(self, mode: str, packets: int = 400, downlink_bps=None):
        """``mode``: 'train' (bulk commit) or 'loop' (per-packet sends)."""
        import numpy as np

        from repro.net.burst import PacketTrain
        from repro.net.link import AccessLink
        from repro.net.simulator import Simulator

        packet_mod._packet_ids = itertools.count(1)
        simulator = Simulator()
        network = Network(
            simulator=simulator,
            latency_model=LatencyModel(jitter_fraction=0.0),
            rng=np.random.default_rng(0),
            fast_lane=True,
            burst=True,
        )
        tx = network.add_host("tx", GeoPoint("tx", 40.0, -74.0))
        rx_link = (
            None if downlink_bps is None
            else AccessLink(downlink_bps=downlink_bps)
        )
        rx = network.add_host("rx", GeoPoint("rx", 41.0, -87.0), link=rx_link)
        tx.start_capture()
        rx.start_capture()
        delivered = []

        class Sink:
            def __call__(self, packet, host):
                delivered.append((simulator.now, packet.payload_bytes))

            def on_train(self, train, deliveries, host):
                delivered.extend(
                    (t, size)
                    for t, size in zip(deliveries.tolist(),
                                       train.payload_sizes)
                )

        rx.bind(5000, Sink())
        src = tx.address(4000)
        dst = rx.address(5000)
        interval = 5e-5
        sizes = [1200] * packets
        accepted = []

        def emit_train():
            times = simulator.now + np.arange(packets) * interval
            train = PacketTrain(src, dst, PacketKind.MEDIA_VIDEO, "f",
                                times, sizes, seq_start=0)
            accepted.append(tx.send_train(train))

        def emit_loop():
            for i in range(packets):
                simulator.schedule_at(
                    i * interval,
                    lambda seq=i: tx.send(
                        Packet.fast(src, dst, 1200, PacketKind.MEDIA_VIDEO,
                                    "f", seq=seq)
                    ),
                )

        if mode == "train":
            simulator.schedule_at(0.0, emit_train)
        else:
            emit_loop()
        simulator.run()
        rows = {
            "tx": [tuple(row) for row in tx._captures[0]._rows],
            "rx": [tuple(row) for row in rx._captures[0]._rows],
        }
        return {
            "delivered": delivered,
            "rows": rows,
            "accepted": accepted,
            "events": simulator.events_processed,
            "network": network,
            "tx": tx,
            "rx": rx,
            "next_packet_id": next(packet_mod._packet_ids),
        }

    def test_bulk_commit_bit_identical(self):
        train = self._drive("train")
        loop = self._drive("loop")
        assert train["accepted"] == [400]
        assert train["network"].burst_trains == 1
        assert train["network"].burst_packets == 400
        # One heap event (the emit) vs send + fused delivery per packet.
        assert train["events"] == 1
        assert loop["events"] == 2 * 400
        # Everything observable is bit-identical: delivery times and
        # contents, both capture files, link clocks, fused counters,
        # the global packet-id cursor.
        assert train["delivered"] == loop["delivered"]
        assert train["rows"] == loop["rows"]
        assert train["next_packet_id"] == loop["next_packet_id"]
        for side in ("tx", "rx"):
            assert (train[side].link._uplink_free
                    == loop[side].link._uplink_free)
            assert (train[side].link._downlink_free
                    == loop[side].link._downlink_free)
        assert (train["network"].fast_lane_fused
                == loop["network"].fast_lane_fused)
        assert (train["network"].fast_lane_sender_fused
                == loop["network"].fast_lane_sender_fused)

    def test_backlogged_downlink_refuses_without_mutation(self):
        """An ineligible train is refused atomically: nothing changes."""
        # 2 Mbit/s downlink: serialising 1228 wire bytes takes ~4.9 ms,
        # far beyond the 50 us emission grid, so deliveries would
        # overlap and the all-or-nothing commit must refuse.
        result = self._drive("train", downlink_bps=2_000_000.0)
        assert result["accepted"] == [0]
        network = result["network"]
        assert network.burst_trains == 0
        assert network.burst_packets == 0
        assert result["delivered"] == []
        assert result["rows"] == {"tx": [], "rx": []}
        assert result["tx"].packets_sent == 0
        assert result["tx"].link._uplink_free == 0.0
        assert result["rx"].link._downlink_free == 0.0
