"""ServiceRelay behaviour: forwarding, thinning, feedback, probes."""

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.net.packet import Packet, PacketKind
from repro.platforms.base import RelayTiming, ServiceRelay


@pytest.fixture
def relay_setup(network, registry):
    relay_host = network.add_host(
        "relay", registry.site("zoom-us-east"), tier="infra"
    )
    sender = network.add_host("sender", registry.get("US-East").location)
    receiver = network.add_host("receiver", registry.get("US-West").location)
    rng = np.random.default_rng(0)
    relay = ServiceRelay.install(relay_host, 8801, RelayTiming(), rng)
    inbox = []
    receiver.bind(40404, lambda p, h: inbox.append(p))
    sender.bind(40404, lambda p, h: inbox.append(("sender", p)))
    return network, relay, sender, receiver, inbox


def media_packet(sender, relay, flow="s|a|v-high", size=1000):
    return Packet(
        src=sender.address(40404),
        dst=relay.address,
        payload_bytes=size,
        kind=PacketKind.MEDIA_VIDEO,
        flow_id=flow,
    )


class TestForwarding:
    def test_routed_flow_forwarded(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route("s|a|v-high", [receiver.address(40404)])
        sender.send(media_packet(sender, relay))
        network.simulator.run()
        assert len(inbox) == 1
        assert relay.packets_forwarded == 1

    def test_unrouted_flow_dropped(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        sender.send(media_packet(sender, relay, flow="unknown"))
        network.simulator.run()
        assert inbox == []

    def test_never_reflects_to_origin(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route(
            "s|a|v-high", [sender.address(40404), receiver.address(40404)]
        )
        sender.send(media_packet(sender, relay))
        network.simulator.run()
        assert len(inbox) == 1  # only the receiver copy

    def test_forwarding_adds_processing_delay(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route("s|a|v-high", [receiver.address(40404)])
        sender.send(media_packet(sender, relay))
        network.simulator.run()
        direct = network.one_way_delay(sender, relay.host) + network.one_way_delay(
            relay.host, receiver
        )
        assert network.simulator.now > direct + relay.timing.base_delay_s * 0.9

    def test_session_load_inflates_delay(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route("s|a|v-high", [receiver.address(40404)])
        relay.set_session_load("s", 0.050)
        times = []
        receiver.unbind(40404)
        receiver.bind(40404, lambda p, h: times.append(network.simulator.now))
        sender.send(media_packet(sender, relay))
        network.simulator.run()
        assert times[0] > 0.050

    def test_thinned_route_forwards_fraction(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route("s|a|v-high", [(receiver.address(40404), 0.5)])
        for _ in range(300):
            sender.send(media_packet(sender, relay))
        network.simulator.run()
        assert 90 < len(inbox) < 210

    def test_invalid_fraction_rejected(self, relay_setup):
        _, relay, _, receiver, _ = relay_setup
        with pytest.raises(PlatformError):
            relay.register_route("f", [(receiver.address(40404), 1.5)])


class TestProbesAndFeedback:
    def test_probe_answered(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        replies = []
        probe_src = sender.bind_ephemeral(lambda p, h: replies.append(p))
        sender.send(
            Packet(
                src=probe_src,
                dst=relay.address,
                payload_bytes=20,
                kind=PacketKind.PROBE,
            )
        )
        network.simulator.run()
        assert len(replies) == 1
        assert replies[0].kind is PacketKind.PROBE_REPLY
        assert relay.probes_answered == 1

    def test_feedback_routed_to_sender(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_feedback_route("s|a|v-high", sender.address(40404))
        receiver.send(
            Packet(
                src=receiver.address(40404),
                dst=relay.address,
                payload_bytes=64,
                kind=PacketKind.FEEDBACK,
                flow_id="s|a|v-high",
                metadata={"loss": 0.3},
            )
        )
        network.simulator.run()
        assert len(inbox) == 1
        tag, packet = inbox[0]
        assert tag == "sender"
        assert packet.metadata["loss"] == 0.3

    def test_signaling_absorbed(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        sender.send(
            Packet(
                src=sender.address(40404),
                dst=relay.address,
                payload_bytes=120,
                kind=PacketKind.SIGNALING,
                flow_id="s|a|join",
            )
        )
        network.simulator.run()
        assert inbox == []


class TestLifecycle:
    def test_install_is_idempotent(self, relay_setup):
        _, relay, _, _, _ = relay_setup
        again = ServiceRelay.install(
            relay.host, 8801, RelayTiming(), np.random.default_rng(0)
        )
        assert again is relay

    def test_install_conflicting_port_rejected(self, relay_setup):
        _, relay, _, _, _ = relay_setup
        with pytest.raises(PlatformError):
            ServiceRelay.install(
                relay.host, 9000, RelayTiming(), np.random.default_rng(0)
            )

    def test_unregister_session_clears_routes(self, relay_setup):
        network, relay, sender, receiver, inbox = relay_setup
        relay.register_route("s1|a|v-high", [receiver.address(40404)])
        relay.register_route("s2|a|v-high", [receiver.address(40404)])
        relay.unregister_session("s1")
        sender.send(media_packet(sender, relay, flow="s1|a|v-high"))
        sender.send(media_packet(sender, relay, flow="s2|a|v-high"))
        network.simulator.run()
        assert len(inbox) == 1
