"""Experiment drivers: scales, grids and result aggregation."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.experiments.bandwidth_study import (
    RATE_LIMITS,
    limit_label,
    run_bandwidth_cell,
)
from repro.experiments.lag_study import LAG_SCENARIOS, run_lag_scenario
from repro.experiments.mobile_study import MobileScenario, run_mobile_scenario
from repro.experiments.qoe_study import (
    degradation_table,
    run_qoe_cell,
)
from repro.experiments.scale import ExperimentScale, PAPER_SCALE, QUICK_SCALE
from repro.media.frames import FrameSpec

FAST = ExperimentScale(
    sessions=1,
    lag_session_duration_s=8.0,
    qoe_session_duration_s=5.0,
    content_spec=FrameSpec(96, 72, 10),
    probe_count=4,
    score_frames=15,
)


class TestScale:
    def test_quick_scale_valid(self):
        assert QUICK_SCALE.sessions >= 1

    def test_paper_scale_matches_protocol(self):
        assert PAPER_SCALE.sessions == 20
        assert PAPER_SCALE.lag_session_duration_s == 120.0
        assert PAPER_SCALE.probe_count == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(sessions=0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(lag_session_duration_s=1.0)


class TestLagStudy:
    def test_scenarios_cover_four_figures(self):
        figures = [s[0] for s in LAG_SCENARIOS]
        assert figures == ["fig4", "fig5", "fig6", "fig7"]

    def test_result_structure(self):
        result = run_lag_scenario("zoom", "US-East", "US", scale=FAST)
        assert len(result.lags_ms) == 6  # six receivers
        assert len(result.sessions) == 1
        lo, hi = result.lag_range_ms()
        assert lo <= hi

    def test_unknown_host_rejected(self):
        with pytest.raises(MeasurementError):
            run_lag_scenario("zoom", "CH", "US", scale=FAST)

    def test_median_requires_samples(self):
        result = run_lag_scenario("zoom", "US-East", "US", scale=FAST)
        with pytest.raises(MeasurementError):
            result.median_lag_ms("nonexistent")


class TestQoeStudy:
    def test_cell_aggregation(self):
        cell = run_qoe_cell("zoom", "low", 3, scale=FAST, compute_vifp=False)
        assert cell.num_participants == 3
        assert cell.psnr_mean > 20
        assert 0 < cell.ssim_mean <= 1
        assert cell.upload_mbps > 0
        assert len(cell.sessions) == 1

    def test_invalid_n_rejected(self):
        with pytest.raises(MeasurementError):
            run_qoe_cell("zoom", "low", 99, scale=FAST)

    def test_degradation_table(self):
        low = run_qoe_cell("zoom", "low", 3, scale=FAST, compute_vifp=False)
        high = run_qoe_cell("zoom", "high", 3, scale=FAST, compute_vifp=False)
        table = degradation_table([low, high])
        assert ("zoom", 3) in table
        assert table[("zoom", 3)]["psnr"] > 0  # LM better than HM


class TestBandwidthStudy:
    def test_limit_labels(self):
        labels = [limit_label(l) for l in RATE_LIMITS]
        assert labels == ["250Kbps", "500Kbps", "1Mbps", "Infinite"]

    def test_cell_runs_and_restores_cap(self):
        cell = run_bandwidth_cell(
            "meet", "high", 1e6, scale=FAST, compute_vifp=False
        )
        assert cell.mos_lqo_mean >= 1.0
        assert cell.psnr_mean > 0
        assert cell.download_mbps <= 1.15


class TestMobileStudy:
    def test_scenario_parsing(self):
        scenario = MobileScenario.parse("LM-Video-View")
        assert scenario.motion == "low"
        assert scenario.camera_on
        assert scenario.view_mode == "gallery"
        assert scenario.screen_on

    def test_off_scenario(self):
        scenario = MobileScenario.parse("LM-Off")
        assert not scenario.screen_on

    def test_bad_label(self):
        with pytest.raises(ConfigurationError):
            MobileScenario.parse("XL-View")

    def test_scenario_produces_readings(self):
        result = run_mobile_scenario("zoom", "LM", scale=FAST)
        assert set(result.readings) == {"S10", "J3"}
        assert result.readings["J3"].discharge_mah > 0

    def test_too_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mobile_scenario("zoom", "LM", scale=FAST, num_participants=2)

    def test_table4_n6_has_extra_senders(self):
        result = run_mobile_scenario(
            "zoom", "HM", scale=FAST, num_participants=6
        )
        assert result.num_participants == 6
        assert result.readings["S10"].mean_rate_mbps > 0
