"""Campaign orchestration: specs, store, runner, aggregation, CLI."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    CellRecord,
    ScenarioSpec,
    derive_seed,
    get_adapter,
    paper_campaign,
    report_from_store,
    run_campaign,
    smoke_campaign,
    status_table,
    SMOKE_SCALE,
)
from repro.campaign.runner import execute_cell
from repro.cli import main
from repro.core.results import SummaryStats
from repro.errors import CampaignError, StoreIntegrityError
from repro.experiments.scale import ExperimentScale


def tiny_campaign(platforms=("zoom",), name="tiny", master_seed=7):
    """A one-platform lag+qoe grid that runs in about a second."""
    return CampaignSpec(
        name=name,
        scenarios=(
            ScenarioSpec("lag", {
                "platform": platforms,
                "host": ("US-East",),
                "group": ("US",),
            }),
            ScenarioSpec("qoe", {
                "platform": platforms,
                "motion": ("low",),
                "participants": (2,),
            }),
        ),
        scale=SMOKE_SCALE,
        master_seed=master_seed,
    )


class TestSpecExpansion:
    def test_grid_is_cartesian_product(self):
        spec = ScenarioSpec("qoe", {
            "platform": ("zoom", "meet"),
            "motion": ("low", "high"),
            "participants": (2, 3, 4),
        })
        assert spec.cell_count() == 12
        cells = list(spec.cells())
        assert len(cells) == 12
        assert {frozenset(c.items()) for c in cells} == {
            frozenset({"platform": p, "motion": m, "participants": n}.items())
            for p in ("zoom", "meet")
            for m in ("low", "high")
            for n in (2, 3, 4)
        }

    def test_duplicate_cells_are_deduplicated(self):
        spec = CampaignSpec(
            name="dup",
            scenarios=(
                ScenarioSpec("lag", {"platform": ("zoom",),
                                     "host": ("US-East",),
                                     "group": ("US",)}),
                ScenarioSpec("lag", {"platform": ("zoom",),
                                     "host": ("US-East",),
                                     "group": ("US",)}),
            ),
        )
        assert spec.cell_count() == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            ScenarioSpec("teleport", {"platform": ("zoom",)})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            ScenarioSpec("lag", {"platform": ()})

    def test_round_trip(self):
        spec = tiny_campaign()
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone.spec_hash() == spec.spec_hash()
        assert [c.cell_id for c in clone.expand()] == [
            c.cell_id for c in spec.expand()
        ]

    def test_paper_campaign_covers_all_kinds(self):
        spec = paper_campaign(scale=SMOKE_SCALE)
        kinds = {c.kind for c in spec.expand()}
        assert kinds == {"lag", "qoe", "bandwidth", "mobile", "endpoints",
                         "dynamics"}
        # 3 platforms x 4 hosts of lag alone
        assert spec.cell_count() > 12


class TestSeedDeterminism:
    def test_same_spec_same_seeds(self):
        first = [c.seed for c in tiny_campaign().expand()]
        second = [c.seed for c in tiny_campaign().expand()]
        assert first == second

    def test_master_seed_changes_cell_seeds(self):
        base = tiny_campaign(master_seed=7).expand()
        other = tiny_campaign(master_seed=8).expand()
        assert [c.cell_id for c in base] == [c.cell_id for c in other]
        assert all(a.seed != b.seed for a, b in zip(base, other))

    def test_cell_seeds_are_distinct(self):
        seeds = [c.seed for c in paper_campaign(scale=SMOKE_SCALE).expand()]
        assert len(set(seeds)) == len(seeds)

    def test_seed_independent_of_grid_membership(self):
        # Adding a scenario must not change existing cells' seeds.
        small = {c.cell_id: c.seed for c in tiny_campaign().expand()}
        grown = {
            c.cell_id: c.seed
            for c in tiny_campaign(platforms=("zoom", "meet")).expand()
        }
        for cell_id, seed in small.items():
            assert grown[cell_id] == seed
        assert derive_seed(7, "x") != derive_seed(7, "y")


class TestStore:
    def record(self, cell_id="lag:x", status="ok"):
        return CellRecord(
            cell_id=cell_id, kind="lag", params={"platform": "zoom"},
            seed=3, spec_hash="abc", status=status, duration_s=1.5,
            metrics={"lag_ms": SummaryStats.from_values([1, 2, 3]).to_dict()},
        )

    def test_round_trip(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        spec = tiny_campaign()
        store.initialise(spec)
        store.append_cell(self.record("lag:a"))
        store.append_cell(self.record("lag:b", status="error"))
        assert store.spec().spec_hash() == spec.spec_hash()
        records = store.cell_records()
        assert [r.cell_id for r in records] == ["lag:a", "lag:b"]
        assert records[0].metrics["lag_ms"]["count"] == 3
        assert store.completed_ids() == {"lag:a"}

    def test_initialise_refuses_existing(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        store.initialise(tiny_campaign())
        with pytest.raises(CampaignError):
            store.initialise(tiny_campaign())

    def test_verify_spec_mismatch(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        store.initialise(tiny_campaign())
        store.verify_spec(tiny_campaign())
        with pytest.raises(StoreIntegrityError):
            store.verify_spec(tiny_campaign(master_seed=99))

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = CampaignStore(str(path))
        store.initialise(tiny_campaign())
        store.append_cell(self.record("lag:a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell_id": "lag:trunc')
        assert store.completed_ids() == {"lag:a"}

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignStore(str(tmp_path / "absent.jsonl")).header()


class TestRunner:
    def test_run_and_resume_skips_completed(self, tmp_path):
        spec = tiny_campaign()
        path = str(tmp_path / "c.jsonl")
        first = run_campaign(spec, path, workers=1)
        assert first.executed == 2 and first.failed == 0
        again = run_campaign(spec, path, workers=1, resume=True)
        assert again.executed == 0
        assert again.skipped == first.total == 2

    def test_existing_store_requires_resume(self, tmp_path):
        spec = tiny_campaign()
        path = str(tmp_path / "c.jsonl")
        run_campaign(spec, path)
        with pytest.raises(CampaignError):
            run_campaign(spec, path)

    def test_resume_rejects_changed_spec(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        run_campaign(tiny_campaign(), path)
        with pytest.raises(StoreIntegrityError):
            run_campaign(tiny_campaign(master_seed=99), path, resume=True)

    def test_failed_cell_recorded_and_retried(self, tmp_path):
        # participants=9 exceeds the roster: the driver raises, the
        # campaign records the failure and carries on.
        spec = CampaignSpec(
            name="bad",
            scenarios=(
                ScenarioSpec("qoe", {"platform": ("zoom",),
                                     "participants": (9,)}),
                ScenarioSpec("lag", {"platform": ("zoom",),
                                     "host": ("US-East",),
                                     "group": ("US",)}),
            ),
            scale=SMOKE_SCALE,
        )
        path = str(tmp_path / "c.jsonl")
        summary = run_campaign(spec, path, workers=1)
        assert summary.executed == 2 and summary.failed == 1
        failed = [r for r in summary.records if not r.ok]
        assert len(failed) == 1 and "roster" in failed[0].error
        # A failed cell is not "completed": resume retries it.
        again = run_campaign(spec, path, workers=1, resume=True)
        assert again.executed == 1 and again.failed == 1

    def test_parallel_matches_serial(self, tmp_path):
        spec = tiny_campaign(platforms=("zoom", "meet"))
        serial = run_campaign(spec, str(tmp_path / "serial.jsonl"), workers=1)
        parallel = run_campaign(
            spec, str(tmp_path / "parallel.jsonl"), workers=2
        )
        by_id_serial = {r.cell_id: r.metrics for r in serial.records}
        by_id_parallel = {r.cell_id: r.metrics for r in parallel.records}
        assert by_id_serial == by_id_parallel

    def test_execute_cell_is_deterministic(self):
        cell = tiny_campaign().expand()[0]
        payload = {
            "cell_id": cell.cell_id,
            "kind": cell.kind,
            "params": dict(cell.params),
            "seed": cell.seed,
            "spec_hash": "x",
            "scale": SMOKE_SCALE.to_dict(),
        }
        first = execute_cell(payload)
        second = execute_cell(payload)
        assert first["status"] == "ok"
        assert first["metrics"] == second["metrics"]


class TestTimelineAxes:
    """Condition timelines as first-class, serializable grid axes."""

    def spec_with_timeline(self, master_seed=7):
        from repro.net.dynamics import bandwidth_ramp_timeline

        timeline = bandwidth_ramp_timeline((None, 250e3, None), step_s=2.0)
        return CampaignSpec(
            name="dyn",
            scenarios=(
                ScenarioSpec("dynamics", {
                    "platform": ("zoom",),
                    "scenario": ("custom-ramp",),
                    "timeline": (timeline,),
                }),
            ),
            scale=SMOKE_SCALE,
            master_seed=master_seed,
        )

    def test_timeline_axis_is_json_and_hash_stable(self):
        spec = self.spec_with_timeline()
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.spec_hash() == spec.spec_hash()
        assert [c.cell_id for c in clone.expand()] == [
            c.cell_id for c in spec.expand()
        ]

    def test_cell_params_carry_tagged_timeline(self):
        from repro.net.dynamics import ConditionTimeline, TIMELINE_TAG

        cell = self.spec_with_timeline().expand()[0]
        value = cell.params["timeline"]
        assert TIMELINE_TAG in value
        timeline = ConditionTimeline.coerce(value)
        assert timeline.phase_names() == [
            "p0-uncapped", "p1-250kbps", "p2-uncapped"
        ]

    def test_dynamics_cell_executes_from_serialized_timeline(self, tmp_path):
        spec = self.spec_with_timeline()
        summary = run_campaign(spec, str(tmp_path / "dyn.jsonl"), workers=1)
        assert summary.executed == 1 and summary.failed == 0
        metrics = summary.records[0].metrics
        assert set(metrics["phases"]) == {
            "p0-uncapped", "p1-250kbps", "p2-uncapped"
        }
        capped = metrics["phases"]["p1-250kbps"]
        free = metrics["phases"]["p0-uncapped"]
        assert capped["download_mbps"] < free["download_mbps"]


class TestRegistry:
    def test_defaults_fill_unswept_axes(self):
        adapter = get_adapter("qoe")
        bound = adapter.bind({"platform": "meet"})
        assert bound["motion"] == "high"
        assert bound["participants"] == 3

    def test_dynamics_defaults(self):
        adapter = get_adapter("dynamics")
        bound = adapter.bind({"platform": "meet"})
        assert bound["scenario"] == "ramp"
        assert bound["timeline"] is None

    def test_unknown_param_rejected(self):
        with pytest.raises(CampaignError):
            get_adapter("lag").bind({"flux_capacitor": 1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            get_adapter("teleport")


class TestAggregation:
    def test_report_from_store_alone(self, tmp_path):
        spec = tiny_campaign()
        path = str(tmp_path / "c.jsonl")
        run_campaign(spec, path, workers=1)
        text = report_from_store(path).render()
        assert "Campaign report: tiny" in text
        assert "Streaming lag" in text and "Video QoE" in text
        assert "Median lag (ms)" in text and "PSNR" in text

    def test_retried_failure_not_reported(self, tmp_path):
        # An error record superseded by an ok record on resume is not
        # a failure.
        spec = tiny_campaign()
        cell = spec.expand()[0]
        store = CampaignStore(str(tmp_path / "c.jsonl"))
        store.initialise(spec)
        base = dict(cell_id=cell.cell_id, kind=cell.kind,
                    params=dict(cell.params), seed=cell.seed,
                    spec_hash=spec.spec_hash())
        store.append_cell(CellRecord(status="error", error="boom", **base))
        store.append_cell(CellRecord(
            status="ok",
            metrics={"lag_band_ms": [1.0, 2.0],
                     "lag_ms": SummaryStats.from_values([1.0]).to_dict(),
                     "rtt_ms": None, "median_lag_ms": {}, "mean_rtt_ms": {},
                     "sessions": 1},
            **base,
        ))
        from repro.campaign import build_report
        text = build_report(spec, store.cell_records()).render()
        assert "## Failures" not in text
        assert "0 failures" in text

    def test_status_table(self, tmp_path):
        spec = tiny_campaign()
        path = str(tmp_path / "c.jsonl")
        run_campaign(spec, path, workers=1)
        store = CampaignStore(path)
        text = status_table(store.spec(), store.cell_records()).render()
        assert "Pending" in text
        assert "lag" in text and "qoe" in text


class TestSerializationHelpers:
    def test_summary_stats_round_trip(self):
        stats = SummaryStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert SummaryStats.from_dict(stats.to_dict()) == stats

    def test_scale_round_trip(self):
        scale = SMOKE_SCALE
        clone = ExperimentScale.from_dict(
            json.loads(json.dumps(scale.to_dict()))
        )
        assert clone == scale
        assert clone.with_seed(99).seed == 99


class TestCampaignCli:
    def test_run_status_report(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        smoke = ["campaign", "run", "--store", store, "--smoke",
                 "--workers", "1"]
        assert main(smoke) == 0
        out = capsys.readouterr().out
        assert "5 executed" in out

        assert main(smoke + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "5 resumed, 0 executed" in out

        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Pending" in out

        assert main(["campaign", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Campaign report: smoke" in out

    def test_run_refuses_existing_store_without_resume(self, tmp_path,
                                                       capsys):
        store = str(tmp_path / "cli.jsonl")
        args = ["campaign", "run", "--store", store, "--smoke"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "already holds a campaign" in capsys.readouterr().err

    def test_report_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["campaign", "report", "--store", missing]) == 2
        assert "no campaign store" in capsys.readouterr().err
