"""Unit conversion helpers."""

import pytest

from repro import units
from repro.errors import ConfigurationError


class TestRates:
    def test_kbps(self):
        assert units.kbps(500) == 500_000.0

    def test_mbps(self):
        assert units.mbps(1.5) == 1_500_000.0

    def test_gbps(self):
        assert units.gbps(2) == 2e9

    def test_to_kbps_roundtrip(self):
        assert units.to_kbps(units.kbps(90)) == pytest.approx(90)

    def test_to_mbps_roundtrip(self):
        assert units.to_mbps(units.mbps(2.6)) == pytest.approx(2.6)


class TestTimes:
    def test_ms(self):
        assert units.ms(20) == 0.02

    def test_us(self):
        assert units.us(100) == pytest.approx(1e-4)

    def test_minutes(self):
        assert units.minutes(5) == 300.0

    def test_hours(self):
        assert units.hours(1) == 3600.0

    def test_to_ms_roundtrip(self):
        assert units.to_ms(units.ms(35.5)) == pytest.approx(35.5)


class TestSizes:
    def test_kib(self):
        assert units.kib(1) == 1024

    def test_mib(self):
        assert units.mib(1) == 1024 * 1024

    def test_mb_decimal(self):
        assert units.mb(175) == 175_000_000

    def test_gb_decimal(self):
        assert units.gb(1) == 1_000_000_000

    def test_to_mb(self):
        assert units.to_mb(units.mb(2.5)) == pytest.approx(2.5)

    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(10) == 80


class TestDerived:
    def test_transmission_delay(self):
        # 1250 bytes at 1 Mbps = 10 ms.
        assert units.transmission_delay(1250, 1e6) == pytest.approx(0.01)

    def test_transmission_delay_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            units.transmission_delay(100, 0)

    def test_transmission_delay_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            units.transmission_delay(100, -5)

    def test_rate_from_bytes(self):
        assert units.rate_from_bytes(125_000, 1.0) == pytest.approx(1e6)

    def test_rate_from_bytes_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            units.rate_from_bytes(100, 0)
