"""Timeline-driven sessions: static equivalence and phase segmentation."""

import numpy as np
import pytest

from repro.core.postprocess import segment_series_by_phase
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.errors import AnalysisError, MeasurementError
from repro.media.frames import FrameSpec
from repro.net.dynamics import (
    PhaseWindow,
    LinkConditions,
    bandwidth_ramp_timeline,
    constant_timeline,
)
from repro.units import kbps, mbps

CLIENTS = ("US-East", "US-East2", "US-Central")
SPEC = FrameSpec(96, 72, 10)


def _testbed() -> Testbed:
    testbed = Testbed(TestbedConfig(seed=123))
    for name in CLIENTS:
        testbed.add_vm(name)
    return testbed


def _config(**overrides) -> SessionConfig:
    settings = dict(
        duration_s=4.0,
        feed="high",
        pad_fraction=0.15,
        audio=False,
        content_spec=SPEC,
        probes=False,
        record_video=True,
        gop_size=30,
        feed_seed=5,
    )
    settings.update(overrides)
    return SessionConfig(**settings)


def _session_fingerprint(artifacts):
    captures = {
        name: [(r.timestamp, r.wire_bytes, r.flow_id) for r in capture]
        for name, capture in artifacts.captures.items()
    }
    recorder = artifacts.recorders["US-East2"]
    return captures, list(recorder.timestamps), recorder.frames


class TestConstantTimelineEquivalence:
    """A one-phase timeline must reproduce the static setup exactly."""

    def test_capped_session_bit_identical(self):
        config = _config()
        cap = kbps(300)

        static = _testbed()
        static.apply_bandwidth_cap("US-East2", cap)
        static_artifacts = static.run_session("zoom", list(CLIENTS),
                                              "US-East", config)

        dynamic = _testbed()
        timeline_config = _config(timelines={
            "US-East2": constant_timeline(
                duration_s=config.settle_s + config.duration_s + config.grace_s,
                start_offset_s=-config.settle_s,
                ingress_cap_bps=cap,
                cap_burst_bytes=8_000,
            )
        })
        dynamic_artifacts = dynamic.run_session("zoom", list(CLIENTS),
                                                "US-East", timeline_config)

        static_caps, static_ticks, static_frames = _session_fingerprint(
            static_artifacts
        )
        dynamic_caps, dynamic_ticks, dynamic_frames = _session_fingerprint(
            dynamic_artifacts
        )
        # Capture timestamps (and packet identities) are bit-identical.
        assert static_caps == dynamic_caps
        # Recorder tick clock and recorded pixels are bit-identical,
        # which pins the QoE pipeline output without re-scoring.
        assert static_ticks == dynamic_ticks
        assert len(static_frames) == len(dynamic_frames)
        for a, b in zip(static_frames, dynamic_frames):
            assert np.array_equal(a, b)
        # Measured rates follow.
        assert (static_artifacts.rate_summary()
                == dynamic_artifacts.rate_summary())

    def test_uncapped_session_bit_identical(self):
        config = _config()
        static_artifacts = _testbed().run_session("zoom", list(CLIENTS),
                                                  "US-East", config)
        timeline_config = _config(timelines={
            "US-East2": constant_timeline(config.duration_s)
        })
        dynamic_artifacts = _testbed().run_session("zoom", list(CLIENTS),
                                                   "US-East", timeline_config)
        assert (_session_fingerprint(static_artifacts)[0]
                == _session_fingerprint(dynamic_artifacts)[0])


class TestPhaseSegmentedSession:
    @pytest.fixture(scope="class")
    def ramp_artifacts(self):
        timeline = bandwidth_ramp_timeline(
            (None, kbps(250), None), step_s=2.0
        )
        config = _config(duration_s=6.0,
                         timelines={"US-East2": timeline})
        return _testbed().run_session("zoom", list(CLIENTS),
                                      "US-East", config)

    def test_phase_windows_recorded_and_clipped(self, ramp_artifacts):
        windows = ramp_artifacts.phase_windows("US-East2")
        start, end = ramp_artifacts.media_window
        assert [w.name for w in windows] == [
            "p0-uncapped", "p1-250kbps", "p2-uncapped"
        ]
        assert windows[0].start_s == pytest.approx(start)
        assert windows[-1].end_s == pytest.approx(end)

    def test_no_timeline_raises(self, ramp_artifacts):
        with pytest.raises(MeasurementError):
            ramp_artifacts.phase_windows("US-Central")

    def test_unknown_timeline_target_fails_before_side_effects(self):
        from repro.errors import SessionError

        testbed = _testbed()
        config = _config(timelines={"US-West": constant_timeline(4.0)})
        with pytest.raises(SessionError):
            testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        # The rejection happened before any event was scheduled, so the
        # shared simulator is clean and the next session is unpolluted.
        assert testbed.network.simulator.pending_events == 0
        good = _config()
        artifacts = testbed.run_session("zoom", list(CLIENTS),
                                        "US-East", good)
        assert len(artifacts.captures) == 3

    def test_capped_phase_slower_than_uncapped(self, ramp_artifacts):
        rates = ramp_artifacts.phase_download_rates_bps("US-East2")
        assert rates["p1-250kbps"] < rates["p0-uncapped"]
        assert rates["p1-250kbps"] < mbps(1)

    def test_shaper_stats_segmented_by_phase(self, ramp_artifacts):
        stats = ramp_artifacts.phase_shaper_stats("US-East2")
        assert stats["p1-250kbps"].accepted > 0
        # Uncapped phases install no shaper, so only the capped phase
        # (and nothing else) accounts packets.
        assert set(stats) == {"p1-250kbps"}

    def test_shaper_stats_scoped_to_one_session(self):
        # The link and its counters are shared across sessions on one
        # testbed; artifacts must report only their own session's
        # activity, and must not mutate when later sessions run.
        timeline = bandwidth_ramp_timeline((None, kbps(250), None), step_s=2.0)
        testbed = _testbed()
        config = _config(duration_s=6.0, timelines={"US-East2": timeline})
        first = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        first_stats = first.phase_shaper_stats("US-East2")["p1-250kbps"]
        first_accepted = first_stats.accepted
        assert first_accepted > 0
        second = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        second_stats = second.phase_shaper_stats("US-East2")["p1-250kbps"]
        # Session 1's snapshot is frozen, and session 2 reports a
        # same-order (not doubled-up) count of its own.
        assert first.phase_shaper_stats("US-East2")["p1-250kbps"].accepted \
            == first_accepted
        assert second_stats.accepted < 2 * first_accepted

    def test_freeze_fractions_cover_phases(self, ramp_artifacts):
        freezes = ramp_artifacts.phase_freeze_fractions("US-East2")
        assert set(freezes) == {"p0-uncapped", "p1-250kbps", "p2-uncapped"}
        for fraction in freezes.values():
            assert 0.0 <= fraction <= 1.0


class TestBurstAtTimelineBoundaries:
    """Burst trains vs ``arm_timeline`` phase flips.

    A ``schedule_periodic`` emitter hands the network one train per
    tick.  Trains whose flight window is clear of every scheduled
    boundary may take the bulk commit; a train *spanning* a phase flip
    must be refused and fall back to the exact per-packet path (its
    packets straddle the condition change, so only the event cascade
    orders them correctly).  Burst on vs off must be bit-identical
    throughout, and the bulk tier must re-engage after the flip with a
    rebuilt fusion plan.
    """

    PACE = 1e-4
    TRAIN = 200

    def _drive(self, burst: bool):
        import itertools

        import repro.net.packet as packet_mod
        from repro.net.burst import PacketTrain
        from repro.net.dynamics import arm_timeline
        from repro.net.geo import GeoPoint, LatencyModel
        from repro.net.packet import Packet, PacketKind
        from repro.net.routing import Network
        from repro.net.simulator import Simulator

        packet_mod._packet_ids = itertools.count(1)
        simulator = Simulator()
        network = Network(
            simulator=simulator,
            latency_model=LatencyModel(jitter_fraction=0.0),
            rng=np.random.default_rng(0),
            fast_lane=True,
            burst=burst,
        )
        tx = network.add_host("tx", GeoPoint("tx", 40.0, -74.0))
        rx = network.add_host("rx", GeoPoint("rx", 41.0, -87.0))
        tx.start_capture()
        rx.start_capture()
        delivered = []

        class Sink:
            def __call__(self, packet, host):
                delivered.append((simulator.now, packet.payload_bytes))

            def on_train(self, train, deliveries, host):
                delivered.extend(
                    (t, size)
                    for t, size in zip(deliveries.tolist(),
                                       train.payload_sizes)
                )

        rx.bind(5000, Sink())
        src = tx.address(4000)
        dst = rx.address(5000)
        # Phase flip at t=0.05 (a 5 ms latency adder), restored at
        # t=0.07 -- both boundaries land inside the 0.04 tick's train
        # window (emissions 0.04..0.06, deliveries ~10 ms later).
        arm_timeline(
            simulator,
            tx.link,
            constant_timeline(0.02, extra_latency_s=0.005),
            media_start_s=0.05,
        )
        accepted = []
        seq = [0]

        def emit_tick():
            if simulator.now >= 0.12:
                return False
            times = simulator.now + np.arange(self.TRAIN) * self.PACE
            start = seq[0]
            seq[0] += self.TRAIN
            sent = 0
            if network.burst:
                train = PacketTrain(
                    src, dst, PacketKind.MEDIA_VIDEO, "f", times,
                    [900] * self.TRAIN, seq_start=start,
                )
                sent = tx.send_train(train)
            if sent:
                accepted.append(simulator.now)
                return None
            # Exact per-packet fallback, as the streamers do it.
            for i in range(self.TRAIN):
                simulator.schedule_at(
                    float(times[i]),
                    lambda s=start + i: tx.send(
                        Packet.fast(src, dst, 900, PacketKind.MEDIA_VIDEO,
                                    "f", seq=s)
                    ),
                )
            return None

        simulator.schedule_at(
            0.0, lambda: simulator.schedule_periodic(None, emit_tick, rate=25)
        )
        simulator.run()
        rows = {
            "tx": [tuple(row) for row in tx._captures[0]._rows],
            "rx": [tuple(row) for row in rx._captures[0]._rows],
        }
        return {
            "delivered": delivered,
            "rows": rows,
            "accepted": accepted,
            "network": network,
        }

    def test_spanning_train_splits_to_slow_path_exactly(self):
        on = self._drive(True)
        off = self._drive(False)
        # The quiet trains (ticks 0 and 0.08) bulk-commit; the tick
        # 0.04 train spans the flip and must take the per-packet path.
        assert on["accepted"] == [0.0, pytest.approx(0.08)]
        assert on["network"].burst_trains == 2
        assert on["network"].burst_packets == 2 * self.TRAIN
        assert off["network"].burst_trains == 0
        # Bit-identical either way -- including the packets that
        # crossed the boundary and picked up the phase's latency adder.
        assert on["delivered"] == off["delivered"]
        assert on["rows"] == off["rows"]
        # The flip visibly moved deliveries: packets in the phase
        # window arrive with the extra 5 ms.
        in_phase = [t for t, _ in on["delivered"] if 0.055 < t < 0.075]
        assert in_phase, "no deliveries landed inside the phase window"


class TestSegmentSeriesByPhase:
    def test_means_per_window(self):
        windows = [
            PhaseWindow("a", 0.0, 1.0, LinkConditions()),
            PhaseWindow("b", 1.0, 2.0, LinkConditions()),
        ]
        series = [1.0, 2.0, 10.0, 20.0]
        times = [0.2, 0.7, 1.2, 1.7]
        out = segment_series_by_phase(series, times, windows)
        assert out["a"] == (2, pytest.approx(1.5))
        assert out["b"] == (2, pytest.approx(15.0))

    def test_windows_sharing_name_pool(self):
        windows = [
            PhaseWindow("a", 0.0, 1.0, LinkConditions()),
            PhaseWindow("a", 2.0, 3.0, LinkConditions()),
        ]
        out = segment_series_by_phase([1.0, 3.0], [0.5, 2.5], windows)
        assert out["a"] == (2, pytest.approx(2.0))

    def test_empty_phase_is_nan(self):
        windows = [PhaseWindow("a", 5.0, 6.0, LinkConditions())]
        count, mean = segment_series_by_phase([1.0], [0.5], windows)["a"]
        assert count == 0
        assert np.isnan(mean)

    def test_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            segment_series_by_phase([1.0], [0.5, 0.6], [])
