"""Timeline-driven sessions: static equivalence and phase segmentation."""

import numpy as np
import pytest

from repro.core.postprocess import segment_series_by_phase
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.errors import AnalysisError, MeasurementError
from repro.media.frames import FrameSpec
from repro.net.dynamics import (
    PhaseWindow,
    LinkConditions,
    bandwidth_ramp_timeline,
    constant_timeline,
)
from repro.units import kbps, mbps

CLIENTS = ("US-East", "US-East2", "US-Central")
SPEC = FrameSpec(96, 72, 10)


def _testbed() -> Testbed:
    testbed = Testbed(TestbedConfig(seed=123))
    for name in CLIENTS:
        testbed.add_vm(name)
    return testbed


def _config(**overrides) -> SessionConfig:
    settings = dict(
        duration_s=4.0,
        feed="high",
        pad_fraction=0.15,
        audio=False,
        content_spec=SPEC,
        probes=False,
        record_video=True,
        gop_size=30,
        feed_seed=5,
    )
    settings.update(overrides)
    return SessionConfig(**settings)


def _session_fingerprint(artifacts):
    captures = {
        name: [(r.timestamp, r.wire_bytes, r.flow_id) for r in capture]
        for name, capture in artifacts.captures.items()
    }
    recorder = artifacts.recorders["US-East2"]
    return captures, list(recorder.timestamps), recorder.frames


class TestConstantTimelineEquivalence:
    """A one-phase timeline must reproduce the static setup exactly."""

    def test_capped_session_bit_identical(self):
        config = _config()
        cap = kbps(300)

        static = _testbed()
        static.apply_bandwidth_cap("US-East2", cap)
        static_artifacts = static.run_session("zoom", list(CLIENTS),
                                              "US-East", config)

        dynamic = _testbed()
        timeline_config = _config(timelines={
            "US-East2": constant_timeline(
                duration_s=config.settle_s + config.duration_s + config.grace_s,
                start_offset_s=-config.settle_s,
                ingress_cap_bps=cap,
                cap_burst_bytes=8_000,
            )
        })
        dynamic_artifacts = dynamic.run_session("zoom", list(CLIENTS),
                                                "US-East", timeline_config)

        static_caps, static_ticks, static_frames = _session_fingerprint(
            static_artifacts
        )
        dynamic_caps, dynamic_ticks, dynamic_frames = _session_fingerprint(
            dynamic_artifacts
        )
        # Capture timestamps (and packet identities) are bit-identical.
        assert static_caps == dynamic_caps
        # Recorder tick clock and recorded pixels are bit-identical,
        # which pins the QoE pipeline output without re-scoring.
        assert static_ticks == dynamic_ticks
        assert len(static_frames) == len(dynamic_frames)
        for a, b in zip(static_frames, dynamic_frames):
            assert np.array_equal(a, b)
        # Measured rates follow.
        assert (static_artifacts.rate_summary()
                == dynamic_artifacts.rate_summary())

    def test_uncapped_session_bit_identical(self):
        config = _config()
        static_artifacts = _testbed().run_session("zoom", list(CLIENTS),
                                                  "US-East", config)
        timeline_config = _config(timelines={
            "US-East2": constant_timeline(config.duration_s)
        })
        dynamic_artifacts = _testbed().run_session("zoom", list(CLIENTS),
                                                   "US-East", timeline_config)
        assert (_session_fingerprint(static_artifacts)[0]
                == _session_fingerprint(dynamic_artifacts)[0])


class TestPhaseSegmentedSession:
    @pytest.fixture(scope="class")
    def ramp_artifacts(self):
        timeline = bandwidth_ramp_timeline(
            (None, kbps(250), None), step_s=2.0
        )
        config = _config(duration_s=6.0,
                         timelines={"US-East2": timeline})
        return _testbed().run_session("zoom", list(CLIENTS),
                                      "US-East", config)

    def test_phase_windows_recorded_and_clipped(self, ramp_artifacts):
        windows = ramp_artifacts.phase_windows("US-East2")
        start, end = ramp_artifacts.media_window
        assert [w.name for w in windows] == [
            "p0-uncapped", "p1-250kbps", "p2-uncapped"
        ]
        assert windows[0].start_s == pytest.approx(start)
        assert windows[-1].end_s == pytest.approx(end)

    def test_no_timeline_raises(self, ramp_artifacts):
        with pytest.raises(MeasurementError):
            ramp_artifacts.phase_windows("US-Central")

    def test_unknown_timeline_target_fails_before_side_effects(self):
        from repro.errors import SessionError

        testbed = _testbed()
        config = _config(timelines={"US-West": constant_timeline(4.0)})
        with pytest.raises(SessionError):
            testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        # The rejection happened before any event was scheduled, so the
        # shared simulator is clean and the next session is unpolluted.
        assert testbed.network.simulator.pending_events == 0
        good = _config()
        artifacts = testbed.run_session("zoom", list(CLIENTS),
                                        "US-East", good)
        assert len(artifacts.captures) == 3

    def test_capped_phase_slower_than_uncapped(self, ramp_artifacts):
        rates = ramp_artifacts.phase_download_rates_bps("US-East2")
        assert rates["p1-250kbps"] < rates["p0-uncapped"]
        assert rates["p1-250kbps"] < mbps(1)

    def test_shaper_stats_segmented_by_phase(self, ramp_artifacts):
        stats = ramp_artifacts.phase_shaper_stats("US-East2")
        assert stats["p1-250kbps"].accepted > 0
        # Uncapped phases install no shaper, so only the capped phase
        # (and nothing else) accounts packets.
        assert set(stats) == {"p1-250kbps"}

    def test_shaper_stats_scoped_to_one_session(self):
        # The link and its counters are shared across sessions on one
        # testbed; artifacts must report only their own session's
        # activity, and must not mutate when later sessions run.
        timeline = bandwidth_ramp_timeline((None, kbps(250), None), step_s=2.0)
        testbed = _testbed()
        config = _config(duration_s=6.0, timelines={"US-East2": timeline})
        first = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        first_stats = first.phase_shaper_stats("US-East2")["p1-250kbps"]
        first_accepted = first_stats.accepted
        assert first_accepted > 0
        second = testbed.run_session("zoom", list(CLIENTS), "US-East", config)
        second_stats = second.phase_shaper_stats("US-East2")["p1-250kbps"]
        # Session 1's snapshot is frozen, and session 2 reports a
        # same-order (not doubled-up) count of its own.
        assert first.phase_shaper_stats("US-East2")["p1-250kbps"].accepted \
            == first_accepted
        assert second_stats.accepted < 2 * first_accepted

    def test_freeze_fractions_cover_phases(self, ramp_artifacts):
        freezes = ramp_artifacts.phase_freeze_fractions("US-East2")
        assert set(freezes) == {"p0-uncapped", "p1-250kbps", "p2-uncapped"}
        for fraction in freezes.values():
            assert 0.0 <= fraction <= 1.0


class TestSegmentSeriesByPhase:
    def test_means_per_window(self):
        windows = [
            PhaseWindow("a", 0.0, 1.0, LinkConditions()),
            PhaseWindow("b", 1.0, 2.0, LinkConditions()),
        ]
        series = [1.0, 2.0, 10.0, 20.0]
        times = [0.2, 0.7, 1.2, 1.7]
        out = segment_series_by_phase(series, times, windows)
        assert out["a"] == (2, pytest.approx(1.5))
        assert out["b"] == (2, pytest.approx(15.0))

    def test_windows_sharing_name_pool(self):
        windows = [
            PhaseWindow("a", 0.0, 1.0, LinkConditions()),
            PhaseWindow("a", 2.0, 3.0, LinkConditions()),
        ]
        out = segment_series_by_phase([1.0, 3.0], [0.5, 2.5], windows)
        assert out["a"] == (2, pytest.approx(2.0))

    def test_empty_phase_is_nan(self):
        windows = [PhaseWindow("a", 5.0, 6.0, LinkConditions())]
        count, mean = segment_series_by_phase([1.0], [0.5], windows)["a"]
        assert count == 0
        assert np.isnan(mean)

    def test_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            segment_series_by_phase([1.0], [0.5, 0.6], [])
