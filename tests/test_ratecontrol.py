"""Rate contexts and adaptation policies."""

import pytest

from repro.errors import ConfigurationError
from repro.platforms.ratecontrol import (
    AdaptationPolicy,
    RateContext,
    SenderRateState,
)


class TestRateContext:
    def test_defaults(self):
        context = RateContext()
        assert context.num_participants == 2

    def test_min_participants(self):
        with pytest.raises(ConfigurationError):
            RateContext(num_participants=1)

    def test_motion_validated(self):
        with pytest.raises(ConfigurationError):
            RateContext(motion="medium")

    def test_device_validated(self):
        with pytest.raises(ConfigurationError):
            RateContext(device="toaster")


class TestPolicyValidation:
    def test_decrease_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(decrease_factor=0.0)

    def test_increase_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(increase_factor=0.9)

    def test_floor_positive(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(floor_bps=0)

    def test_patience_positive(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(patience_reports=0)


class TestSenderRateState:
    def make(self, **policy_kwargs):
        policy = AdaptationPolicy(
            loss_threshold=0.05,
            recovery_threshold=0.01,
            decrease_factor=0.5,
            increase_factor=1.1,
            floor_bps=100_000,
            patience_reports=2,
            **policy_kwargs,
        )
        return SenderRateState(base_bps=1_000_000, policy=policy)

    def test_no_change_below_threshold(self):
        state = self.make()
        assert state.on_feedback(0.02) is None
        assert state.current_bps == 1_000_000

    def test_patience_before_decrease(self):
        state = self.make()
        assert state.on_feedback(0.2) is None  # 1st congested report
        assert state.on_feedback(0.2) == pytest.approx(500_000)

    def test_floor_respected(self):
        state = self.make()
        for _ in range(40):
            state.on_feedback(0.5)
        assert state.current_bps == 100_000

    def test_recovery_climbs_back(self):
        state = self.make()
        state.on_feedback(0.5)
        state.on_feedback(0.5)
        assert state.current_bps == 500_000
        new = state.on_feedback(0.0)
        assert new == pytest.approx(550_000)

    def test_recovery_capped_at_base(self):
        state = self.make()
        state.on_feedback(0.5)
        state.on_feedback(0.5)
        for _ in range(50):
            state.on_feedback(0.0)
        assert state.current_bps == 1_000_000

    def test_per_reporter_patience_not_reset_by_others(self):
        """A healthy receiver must not mask a congested one."""
        state = self.make()
        assert state.on_feedback(0.2, reporter="lossy") is None
        # Interleaved clean report from another receiver.
        state.on_feedback(0.0, reporter="clean")
        assert state.on_feedback(0.2, reporter="lossy") is not None

    def test_recovery_blocked_while_any_reporter_lossy(self):
        state = self.make()
        state.on_feedback(0.5, reporter="lossy")
        state.on_feedback(0.5, reporter="lossy")
        assert state.current_bps == 500_000
        # The clean receiver reports, but the lossy one's last report
        # is still bad: no recovery.
        assert state.on_feedback(0.0, reporter="clean") is None

    def test_loss_fraction_validated(self):
        state = self.make()
        with pytest.raises(ConfigurationError):
            state.on_feedback(1.5)

    def test_counters(self):
        state = self.make()
        state.on_feedback(0.5)
        state.on_feedback(0.5)
        state.on_feedback(0.0)
        assert state.decreases == 1
        assert state.increases == 1
