"""Session orchestration and the testbed."""

import pytest

from repro.core.probing import Prober
from repro.core.session import MeetingSession, SessionConfig, make_feed
from repro.core.testbed import Testbed, TestbedConfig
from repro.errors import ConfigurationError, MeasurementError, SessionError
from repro.media.feeds import FlashFeed, HighMotionFeed, LowMotionFeed, StaticFeed
from repro.media.frames import FrameSpec
from repro.net.address import EndpointKey


SMALL = FrameSpec(64, 48, 10)


def quick_config(**kwargs):
    defaults = dict(
        duration_s=6.0,
        feed="flash",
        pad_fraction=0.0,
        content_spec=SMALL,
        probes=False,
        gop_size=600,
    )
    defaults.update(kwargs)
    return SessionConfig(**defaults)


class TestSessionConfig:
    def test_motion_property(self):
        assert quick_config(feed="high").motion == "high"
        assert quick_config(feed="low").motion == "low"
        assert quick_config(feed="flash").motion == "low"

    def test_feed_validated(self):
        with pytest.raises(SessionError):
            quick_config(feed="hologram")

    def test_duration_validated(self):
        with pytest.raises(SessionError):
            quick_config(duration_s=0)

    def test_wire_normalisation_default(self):
        assert not quick_config(feed="flash").wire_normalized
        assert quick_config(feed="low").wire_normalized

    def test_wire_normalisation_override(self):
        config = quick_config(feed="low", normalize_wire_rates=False)
        assert not config.wire_normalized

    def test_make_feed_types(self):
        assert isinstance(make_feed(quick_config(feed="flash")), FlashFeed)
        assert isinstance(make_feed(quick_config(feed="low")), LowMotionFeed)
        assert isinstance(make_feed(quick_config(feed="high")), HighMotionFeed)
        assert isinstance(make_feed(quick_config(feed="static")), StaticFeed)
        assert make_feed(quick_config(feed=None)) is None


class TestTestbed:
    def test_deploy_group_counts(self, testbed):
        assert len(testbed.deploy_group("US")) == 7

    def test_duplicate_vm_rejected(self, testbed):
        testbed.add_vm("US-East")
        with pytest.raises(ConfigurationError):
            testbed.add_vm("US-East")

    def test_platform_cached(self, testbed):
        assert testbed.platform("zoom") is testbed.platform("zoom")

    def test_run_session_requires_deployed_clients(self, testbed):
        testbed.add_vm("US-East")
        with pytest.raises(ConfigurationError):
            testbed.run_session(
                "zoom", ["US-East", "ghost"], "US-East", quick_config()
            )

    def test_vm_clocks_are_synced_but_imperfect(self, testbed):
        a = testbed.add_vm("US-East")
        b = testbed.add_vm("US-West")
        assert a.host.clock.offset_s != b.host.clock.offset_s
        assert abs(a.host.clock.offset_s) < 0.001

    def test_bandwidth_cap_roundtrip(self, testbed):
        testbed.add_vm("US-East")
        testbed.apply_bandwidth_cap("US-East", 1e6)
        assert testbed.clients["US-East"].host.link.ingress_shaper is not None
        testbed.apply_bandwidth_cap("US-East", None)
        assert testbed.clients["US-East"].host.link.ingress_shaper is None


class TestSessionRun:
    @pytest.fixture
    def three_vms(self, testbed):
        for name in ("US-East", "US-East2", "US-West"):
            testbed.add_vm(name)
        return testbed

    def test_artifacts_have_captures(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "zoom", names, "US-East", quick_config()
        )
        assert set(artifacts.captures) == set(names)
        assert all(len(c) > 0 for c in artifacts.captures.values())

    def test_lag_measurable(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "zoom", names, "US-East", quick_config(duration_s=8.0)
        )
        lags = artifacts.lag_measurements("US-West")
        assert len(lags) >= 2
        assert all(0 < m.lag_ms < 200 for m in lags)

    def test_rate_summary(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "zoom", names, "US-East",
            quick_config(feed="low", pad_fraction=0.15, duration_s=5.0,
                         gop_size=30),
        )
        rates = artifacts.rate_summary()
        assert rates.upload_bps > 0
        assert set(rates.download_bps_by_client) == {"US-East2", "US-West"}

    def test_probing_collects_rtts(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "zoom", names, "US-East",
            quick_config(probes=True, probe_count=5, probe_interval_s=0.3),
        )
        rtt = artifacts.mean_rtt_ms("US-West")
        assert 1.0 < rtt < 150.0

    def test_endpoint_discovery_sees_platform_port(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "webex", names, "US-East", quick_config()
        )
        endpoints = artifacts.discovered_endpoints("US-West")
        assert endpoints
        assert all(e.port == 9000 for e in endpoints)

    def test_sessions_are_reentrant(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        first = three_vms.run_session("zoom", names, "US-East", quick_config())
        second = three_vms.run_session("zoom", names, "US-East", quick_config())
        assert first.wiring.session_id != second.wiring.session_id
        assert len(second.captures["US-West"]) > 0

    def test_zoom_two_party_is_p2p(self, three_vms):
        artifacts = three_vms.run_session(
            "zoom", ["US-East", "US-West"], "US-East", quick_config()
        )
        assert artifacts.wiring.p2p

    def test_host_must_be_member(self, three_vms):
        with pytest.raises(SessionError):
            MeetingSession(
                three_vms.platform("zoom"),
                [three_vms.clients["US-East"], three_vms.clients["US-West"]],
                "CH",
                quick_config(),
            )

    def test_mean_rtt_without_probes_raises(self, three_vms):
        names = ["US-East", "US-East2", "US-West"]
        artifacts = three_vms.run_session(
            "zoom", names, "US-East", quick_config(probes=False)
        )
        with pytest.raises(MeasurementError):
            artifacts.mean_rtt_ms("US-West")


class TestProberUnit:
    def test_probe_and_reply(self, testbed):
        testbed.add_vm("US-East")
        testbed.add_vm("US-West")
        artifacts = testbed.run_session(
            "webex", ["US-East", "US-West"], "US-East", quick_config()
        )
        # Fresh prober against the session endpoint after the fact.
        client = testbed.clients["US-East"]
        endpoint = artifacts.wiring.service_endpoint_key("US-East")
        prober = Prober(client.host)
        result = prober.probe(endpoint, count=3, interval_s=0.1)
        testbed.network.simulator.run()
        prober.finalize()
        assert result.received == 3
        assert result.lost == 0
        assert result.mean_rtt_ms() > 0

    def test_probe_validation(self, testbed):
        client = testbed.add_vm("US-East")
        prober = Prober(client.host)
        with pytest.raises(MeasurementError):
            prober.probe(EndpointKey("1.2.3.4", 80), count=0)

    def test_unanswered_probes_counted_lost(self, testbed):
        client = testbed.add_vm("US-East")
        silent = testbed.add_vm("US-West")  # no relay bound at 8801
        prober = Prober(client.host)
        result = prober.probe(
            EndpointKey(silent.host.ip, 8801), count=2, interval_s=0.1
        )
        testbed.network.simulator.run()
        prober.finalize()
        assert result.lost == 2
        with pytest.raises(MeasurementError):
            result.mean_rtt_ms()
