"""repro: a reproduction of "Can You See Me Now?" (IMC 2021).

A measurement harness for videoconferencing systems -- emulated
clients, packet-trace lag extraction, active RTT probing, QoE scoring
-- together with simulation models of Zoom, Webex and Google Meet that
reproduce the externally-observable behaviour the paper measures, over
a geographic packet-level network simulator.

Quickstart::

    from repro import Testbed, SessionConfig

    testbed = Testbed()
    testbed.deploy_group("US")
    names = testbed.registry.vm_names("US")
    config = SessionConfig(duration_s=12.0, feed="flash", pad_fraction=0)
    artifacts = testbed.run_session("zoom", names, "US-East", config)
    for receiver in names[1:]:
        lags = artifacts.lag_measurements(receiver)
        print(receiver, sorted(m.lag_ms for m in lags)[len(lags) // 2])

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from .core.lag import LagDetector, LagMeasurement, measure_streaming_lag
from .core.probing import ProbeResult, Prober
from .core.session import MeetingSession, SessionArtifacts, SessionConfig
from .core.testbed import Testbed, TestbedConfig
from .errors import ReproError
from .media.frames import FrameSpec
from .net.routing import Network
from .net.simulator import Simulator
from .platforms import make_platform

__version__ = "1.0.0"

__all__ = [
    "FrameSpec",
    "LagDetector",
    "LagMeasurement",
    "MeetingSession",
    "Network",
    "ProbeResult",
    "Prober",
    "ReproError",
    "SessionArtifacts",
    "SessionConfig",
    "Simulator",
    "Testbed",
    "TestbedConfig",
    "__version__",
    "make_platform",
    "measure_streaming_lag",
]
