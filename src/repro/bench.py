"""Tracked performance benchmarks: the repo's perf trajectory.

Every PR that touches a hot path should leave a comparable number
behind.  This module runs a pinned set of micro and macro benchmarks --
the raw packet path, a dynamics session, the batched QoE kernels, the
codec batching engine (audio/video batched vs per-frame) and a full
bandwidth-study session -- and writes them to a ``BENCH_*.json`` file
(``BENCH_pr4.json``, then ``BENCH_pr5.json``) so regressions show up
as diffs rather than folklore.

Two kinds of numbers are reported:

* **absolute throughput** (packets/sec, events/sec, frames/sec,
  session wall-clock) -- comparable across commits *on one machine*,
* **speedup ratios measured within one process** (fused packet path
  vs the forced slow path; batched codec vs the per-frame loop, same
  seed) -- comparable across machines, which is what the CI
  regression gate checks: hardware noise cancels out of a ratio,
  while "the fast lane silently stopped engaging" or "codec batching
  quietly fell back to per-frame" does not.

Run via ``python -m repro bench`` (or ``benchmarks/run_bench.py``);
``--quick`` shrinks every workload for CI, ``--check`` compares the
fresh run against a committed baseline and exits non-zero on a >20%
packet-path regression.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from .media.frames import FrameSpec
from .net.geo import GeoPoint, LatencyModel
from .net.packet import Packet, PacketKind
from .net.routing import Network
from .net.simulator import Simulator

#: Relative packet-path regression tolerated by ``--check`` before the
#: gate fails (generous: CI machines are shared and noisy; the ratio
#: metric is already hardware-independent).
CHECK_TOLERANCE = 0.20


@dataclass
class BenchProfile:
    """Workload sizes for one run of the suite."""

    packet_count: int = 120_000
    session_duration_s: float = 8.0
    qoe_frames: int = 96
    qoe_shape: "tuple[int, int]" = (144, 192)
    audio_seconds: float = 5.0
    video_frames: int = 48
    fabric_cells: int = 96
    fabric_spin_ms: float = 2.0

    @classmethod
    def quick(cls) -> "BenchProfile":
        return cls(
            packet_count=30_000,
            session_duration_s=5.0,
            qoe_frames=32,
            qoe_shape=(96, 128),
            audio_seconds=2.0,
            video_frames=24,
            fabric_cells=32,
        )


# --------------------------------------------------------------------- #
# Packet-path micro benchmark.
# --------------------------------------------------------------------- #

def _packet_path_once(packets: int, fast_lane: bool) -> Dict[str, float]:
    """Drive ``packets`` media packets sender -> receiver, timed.

    The topology is pinned: two hosts 1000 km apart, a jitter-free
    latency model (so the fully fused single-event path is eligible),
    captures running on both ends, and a paced sender emitting
    MTU-sized fragments -- the same per-packet work a streamer session
    does, minus the codec.
    """
    simulator = Simulator()
    network = Network(
        simulator=simulator,
        latency_model=LatencyModel(jitter_fraction=0.0),
        rng=np.random.default_rng(0),
        fast_lane=fast_lane,
    )
    sender = network.add_host("bench-tx", GeoPoint("tx", 40.0, -74.0))
    receiver = network.add_host("bench-rx", GeoPoint("rx", 41.0, -87.0))
    sender.start_capture()
    receiver.start_capture()
    received = []
    receiver.bind(5000, lambda packet, host: received.append(packet.payload_bytes))
    source = sender.address(4000)
    destination = receiver.address(5000)
    send = sender.send
    fast = Packet.fast

    def emit() -> None:
        send(fast(source, destination, 1200, PacketKind.MEDIA_VIDEO,
                  "bench|flow", seq=len(received)))

    # Pace sends at 20k packets/sec of simulated time so the uplink
    # never backlogs and every event stays on the packet path proper.
    interval = 5e-5
    for i in range(packets):
        simulator.schedule_at(i * interval, emit)
    start = time.perf_counter()
    simulator.run()
    wall = time.perf_counter() - start
    if len(received) != packets:
        raise RuntimeError(
            f"packet-path bench dropped packets: {len(received)}/{packets}"
        )
    return {
        "packets": packets,
        "wall_s": wall,
        "packets_per_s": packets / wall,
        "events_per_s": simulator.events_processed / wall,
        "events": simulator.events_processed,
        "fused": network.fast_lane_fused,
        "sender_fused": network.fast_lane_sender_fused,
    }


def _packet_path_burst_once(packets: int) -> Dict[str, float]:
    """Drive the pinned packet-path workload as one burst-committed train.

    Same topology, payloads and pacing grid as :func:`_packet_path_once`
    -- but the whole emission schedule is handed to the network as a
    single :class:`~repro.net.burst.PacketTrain`.  The burst event core
    executes it as one array-level commit (vectorised departures,
    arrivals, deliveries, block captures, one receiver handoff), so the
    run measures the ceiling of the bulk tier: zero per-packet heap
    events.  The commit is all-or-nothing; a refusal here is a bench
    bug, not a fallback, so it raises.
    """
    from .net.burst import PacketTrain

    simulator = Simulator()
    network = Network(
        simulator=simulator,
        latency_model=LatencyModel(jitter_fraction=0.0),
        rng=np.random.default_rng(0),
        fast_lane=True,
        burst=True,
    )
    sender = network.add_host("bench-tx", GeoPoint("tx", 40.0, -74.0))
    receiver = network.add_host("bench-rx", GeoPoint("rx", 41.0, -87.0))
    sender.start_capture()
    receiver.start_capture()
    received: "list[int]" = []

    class _Sink:
        """Receiver handler with both per-packet and train entry points."""

        def __call__(self, packet, host):
            received.append(packet.payload_bytes)

        def on_train(self, train, deliveries, host):
            received.extend(train.payload_sizes)

    receiver.bind(5000, _Sink())
    source = sender.address(4000)
    destination = receiver.address(5000)
    interval = 5e-5
    sizes = [1200] * packets

    def emit_train() -> None:
        times = simulator.now + np.arange(packets) * interval
        train = PacketTrain(source, destination, PacketKind.MEDIA_VIDEO,
                            "bench|flow", times, sizes, seq_start=0)
        if sender.send_train(train) != packets:
            raise RuntimeError("burst bench: train refused the bulk commit")

    simulator.schedule_at(0.0, emit_train)
    start = time.perf_counter()
    simulator.run()
    wall = time.perf_counter() - start
    if len(received) != packets:
        raise RuntimeError(
            f"burst packet-path bench dropped packets: {len(received)}/{packets}"
        )
    return {
        "packets": packets,
        "wall_s": wall,
        "packets_per_s": packets / wall,
        "events": simulator.events_processed,
        "trains": network.burst_trains,
    }


def bench_packet_path(profile: BenchProfile) -> Dict[str, float]:
    # Best-of-3 each way: the speedup ratio gates CI, so one GC pause
    # or noisy neighbour during a single run must not fail the build.
    fast = min(
        (_packet_path_once(profile.packet_count, fast_lane=True)
         for _ in range(3)),
        key=lambda r: r["wall_s"],
    )
    slow = min(
        (_packet_path_once(profile.packet_count, fast_lane=False)
         for _ in range(3)),
        key=lambda r: r["wall_s"],
    )
    burst = min(
        (_packet_path_burst_once(profile.packet_count) for _ in range(3)),
        key=lambda r: r["wall_s"],
    )
    return {
        "packets": fast["packets"],
        "packets_per_s": round(fast["packets_per_s"], 1),
        "events_per_s": round(fast["events_per_s"], 1),
        "events_per_packet": round(fast["events"] / fast["packets"], 3),
        "slow_packets_per_s": round(slow["packets_per_s"], 1),
        "slow_events_per_packet": round(slow["events"] / slow["packets"], 3),
        "speedup_vs_slow": round(fast["packets_per_s"] / slow["packets_per_s"], 3),
        "fused_fraction": round(fast["fused"] / fast["packets"], 4),
        "burst_packets_per_s": round(burst["packets_per_s"], 1),
        "burst_events_per_packet": round(
            burst["events"] / burst["packets"], 6
        ),
        "burst_trains": burst["trains"],
        "speedup_burst_vs_slow": round(
            burst["packets_per_s"] / slow["packets_per_s"], 3
        ),
    }


# --------------------------------------------------------------------- #
# Session macro benchmarks.
# --------------------------------------------------------------------- #

def _session_scale(profile: BenchProfile):
    from .experiments.scale import ExperimentScale

    return ExperimentScale(
        sessions=1,
        lag_session_duration_s=profile.session_duration_s,
        qoe_session_duration_s=profile.session_duration_s,
        content_spec=FrameSpec(128, 96, 12),
        probe_count=5,
        score_frames=24,
        seed=11,
    )


def bench_dynamics_session(profile: BenchProfile) -> Dict[str, float]:
    """Wall-clock of one multi-phase dynamics session (ramp scenario)."""
    from .core.session import SessionConfig
    from .core.testbed import Testbed, TestbedConfig
    from .net.dynamics import bandwidth_ramp_timeline
    from .units import mbps

    scale = _session_scale(profile)
    testbed = Testbed(TestbedConfig(seed=scale.seed))
    for name in ("US-East", "US-East2", "US-Central"):
        testbed.add_vm(name)
    timeline = bandwidth_ramp_timeline(
        [mbps(4), mbps(1), mbps(0.5), mbps(2)],
        step_s=profile.session_duration_s / 4.0,
    )
    config = SessionConfig(
        duration_s=profile.session_duration_s,
        feed="high",
        pad_fraction=0.15,
        content_spec=scale.content_spec,
        probes=False,
        record_video=True,
        session_index=0,
        feed_seed=scale.seed,
        timelines={"US-East2": timeline},
    )
    start = time.perf_counter()
    testbed.run_session(
        "zoom", ["US-East", "US-East2", "US-Central"], "US-East", config
    )
    wall = time.perf_counter() - start
    network = testbed.network
    events = network.simulator.events_processed
    packets = sum(host.packets_sent for host in network.hosts())
    return {
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "fused_fraction": round(network.fast_lane_fused / max(1, packets), 4),
    }


def bench_bandwidth_session(profile: BenchProfile) -> Dict[str, float]:
    """Wall-clock of one capped bandwidth-study cell (Fig. 17 path).

    Codec-bound by design: most of this cell is video/audio encode,
    decode and scoring, so it tracks the *whole* pipeline rather than
    the packet path (``model_session`` is the packet-dominated macro).
    """
    from .experiments.bandwidth_study import run_bandwidth_cell
    from .units import kbps

    scale = _session_scale(profile)

    def run_once() -> float:
        start = time.perf_counter()
        run_bandwidth_cell(
            "zoom", "low", kbps(500), scale=scale, compute_vifp=False
        )
        return time.perf_counter() - start

    # Best-of-2, same rationale as the packet path's best-of-3: the
    # first run also pays cold caches (resize plans, import tails).
    wall = min(run_once() for _ in range(2))
    return {"wall_s": round(wall, 3)}


def bench_model_session(profile: BenchProfile) -> Dict[str, float]:
    """Wall-clock of a 6-party size-modelled session (Table 4 shape).

    No codec work: traffic is size-modelled, so the discrete-event
    packet path dominates -- this is the macro benchmark the fast lane
    is accountable to at session level.
    """
    from .core.session import SessionConfig
    from .core.testbed import Testbed, TestbedConfig

    names = ["US-East", "US-East2", "US-East3",
             "US-Central", "US-Central2", "US-West"]
    testbed = Testbed(TestbedConfig(seed=11))
    for name in names:
        testbed.add_vm(name)
    config = SessionConfig(
        duration_s=profile.session_duration_s * 1.5,
        feed="high",
        use_codec=False,
        content_spec=FrameSpec(640, 480, 30),
        probes=True,
        record_video=False,
        audio=False,
        session_index=0,
        feed_seed=11,
    )
    start = time.perf_counter()
    testbed.run_session("webex", names, names[0], config)
    wall = time.perf_counter() - start
    network = testbed.network
    events = network.simulator.events_processed
    packets = sum(host.packets_sent for host in network.hosts())
    return {
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "packets_per_s": round(packets / wall, 1),
        "fused_fraction": round(network.fast_lane_fused / max(1, packets), 4),
    }


# --------------------------------------------------------------------- #
# Codec micro benchmarks (PR 5's batching engine).
# --------------------------------------------------------------------- #

def bench_audio_codec(profile: BenchProfile) -> Dict[str, float]:
    """Batched vs per-frame audio encode on one speech clip.

    The batched path runs one DCT over the whole ``(frames, samples)``
    matrix and one vectorised quantiser bisection; the per-frame path
    is the ``encode_frame`` loop.  Both produce bit-identical frames
    (``tests/test_codec_batch_equivalence.py``), so the speedup ratio
    is hardware-independent and gated by ``--check``.
    """
    from .media.audio import SpeechLikeSource
    from .media.audio_codec import AudioCodec, AudioCodecConfig

    config = AudioCodecConfig(bitrate_bps=45_000)
    speech = SpeechLikeSource(seed=3).read_duration(0.0, profile.audio_seconds)
    frames = len(speech) // config.frame_samples

    def run(batch: bool) -> float:
        start = time.perf_counter()
        AudioCodec(config, batch=batch).encode(speech)
        return time.perf_counter() - start

    batched = min(run(True) for _ in range(3))
    per_frame = min(run(False) for _ in range(3))
    return {
        "frames": frames,
        "batched_wall_s": round(batched, 4),
        "per_frame_wall_s": round(per_frame, 4),
        "frames_per_s": round(frames / batched, 1),
        "batched_speedup": round(per_frame / batched, 3),
    }


def bench_video_codec(profile: BenchProfile) -> Dict[str, float]:
    """Batched vs per-frame multi-frame video encode/decode bursts.

    Video transforms are big enough that pocketfft already amortises
    per-call overhead, so the burst speedup is modest (the stacked
    keyframe DCT and the skipped all-zero reconstructions carry it);
    the ratio is tracked to catch the batch path going pathologically
    slower than the loop it must stay bit-identical to.
    """
    from .media.feeds import LowMotionFeed
    from .media.video_codec import VideoCodec, VideoCodecConfig, VideoDecoder

    spec = FrameSpec(128, 96, 12)
    stack = np.stack(LowMotionFeed(spec, seed=3).frames(profile.video_frames))
    config = VideoCodecConfig(gop_size=12)

    def encode(batch: bool):
        codec = VideoCodec(spec, config, target_bps=400_000, batch=batch)
        start = time.perf_counter()
        encoded = codec.encode_batch(stack)
        return time.perf_counter() - start, encoded

    encode_batched, encoded = min(
        (encode(True) for _ in range(3)), key=lambda r: r[0]
    )
    encode_loop, _ = min((encode(False) for _ in range(3)), key=lambda r: r[0])

    def decode(batch: bool) -> float:
        decoder = VideoDecoder(spec, batch=batch)
        start = time.perf_counter()
        decoder.decode_batch(encoded)
        return time.perf_counter() - start

    decode_batched = min(decode(True) for _ in range(3))
    decode_loop = min(decode(False) for _ in range(3))
    return {
        "frames": profile.video_frames,
        "encode_wall_s": round(encode_batched, 4),
        "encode_frames_per_s": round(profile.video_frames / encode_batched, 1),
        "encode_batched_speedup": round(encode_loop / encode_batched, 3),
        "decode_wall_s": round(decode_batched, 4),
        "decode_batched_speedup": round(decode_loop / decode_batched, 3),
    }


def bench_qoe_batch(profile: BenchProfile) -> Dict[str, float]:
    """Frames/sec of the stacked PSNR+SSIM scoring kernels."""
    from .qoe.psnr import psnr_stack
    from .qoe.ssim import ssim_stack

    rng = np.random.default_rng(3)
    h, w = profile.qoe_shape
    reference = rng.integers(0, 256, size=(profile.qoe_frames, h, w))
    reference = reference.astype(np.float64)
    degraded = np.clip(
        reference + rng.normal(0.0, 6.0, size=reference.shape), 0, 255
    )
    start = time.perf_counter()
    psnr_stack(reference, degraded)
    ssim_stack(reference, degraded)
    wall = time.perf_counter() - start
    return {
        "frames": profile.qoe_frames,
        "wall_s": round(wall, 3),
        "frames_per_s": round(profile.qoe_frames / wall, 1),
    }


# --------------------------------------------------------------------- #
# Campaign fabric micro benchmark (PR 6's scheduler).
# --------------------------------------------------------------------- #

def bench_campaign_fabric(profile: BenchProfile) -> Dict[str, float]:
    """Scheduler + store overhead on a paced no-op calibration grid.

    Three timings of the same deterministic cells: a raw
    ``execute_cell`` loop (no scheduler, no store), the inline fabric
    (scheduler + JSONL store, one process), and the process pool with
    two workers.  ``inline_efficiency`` -- raw wall over inline wall,
    measured in one process on identical cells -- is the
    hardware-independent ratio the CI gate tracks: it decays towards 0
    if per-cell scheduling or store appends grow, and sits near 1 while
    the fabric stays cheap relative to a ~2 ms cell.
    """
    import os
    import tempfile

    from .campaign.grids import calibration_campaign
    from .campaign.runner import _cell_payload, execute_cell, run_campaign

    spec = calibration_campaign(
        cells=profile.fabric_cells, spin_ms=profile.fabric_spin_ms,
        name="bench-fabric",
    )
    spec_hash = spec.spec_hash()
    payloads = [_cell_payload(c, spec, spec_hash) for c in spec.expand()]

    def raw_once() -> float:
        start = time.perf_counter()
        for payload in payloads:
            execute_cell(payload)
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        def scheduled_once(tag: str, **kwargs: object) -> float:
            store = os.path.join(tmp, f"{tag}.jsonl")
            start = time.perf_counter()
            summary = run_campaign(spec, store, **kwargs)
            wall = time.perf_counter() - start
            os.remove(store)
            if summary.failed:
                raise RuntimeError(
                    f"fabric bench cells failed: {summary.failed}"
                )
            return wall

        # Best-of-2 per mode: the efficiency ratio gates CI.
        raw = min(raw_once() for _ in range(2))
        inline = min(
            scheduled_once(f"inline{i}", workers=1) for i in range(2)
        )
        pool = min(
            scheduled_once(f"pool{i}", workers=2, executor="pool")
            for i in range(2)
        )
    cells = len(payloads)
    return {
        "cells": cells,
        "spin_ms": profile.fabric_spin_ms,
        "raw_cells_per_s": round(cells / raw, 1),
        "inline_cells_per_s": round(cells / inline, 1),
        "pool_cells_per_s": round(cells / pool, 1),
        "inline_efficiency": round(raw / inline, 3),
        "pool_speedup": round(inline / pool, 3),
        "overhead_ms_per_cell": round((inline - raw) / cells * 1000.0, 3),
    }


# --------------------------------------------------------------------- #
# Suite driver.
# --------------------------------------------------------------------- #

BENCHMARKS: Dict[str, Callable[[BenchProfile], Dict[str, float]]] = {
    "packet_path": bench_packet_path,
    "model_session": bench_model_session,
    "dynamics_session": bench_dynamics_session,
    "bandwidth_session": bench_bandwidth_session,
    "qoe_batch": bench_qoe_batch,
    "audio_codec": bench_audio_codec,
    "video_codec": bench_video_codec,
    "campaign_fabric": bench_campaign_fabric,
}


def run_suite(quick: bool = False, only: Optional[str] = None) -> dict:
    """Run the benchmark suite; returns the BENCH_*.json payload."""
    profile = BenchProfile.quick() if quick else BenchProfile()
    results: Dict[str, Dict[str, float]] = {}
    for name, bench in BENCHMARKS.items():
        if only is not None and name != only:
            continue
        results[name] = bench(profile)
    return {
        "schema": 1,
        "quick": quick,
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "benchmarks": results,
    }


def check_against_baseline(
    fresh: dict, baseline: dict, tolerance: float = CHECK_TOLERANCE
) -> "list[str]":
    """Regression gate: compare a fresh run to a committed baseline.

    Only hardware-independent metrics are gated: the packet-path
    fast-vs-slow speedup ratio, the events-per-packet budget, and the
    codec batched-vs-per-frame speedup ratios (same process, same
    seed, so hardware noise cancels).  Codec gates only engage when
    the baseline records them (``BENCH_pr5.json`` onward).
    Returns a list of failure messages (empty = pass).
    """
    failures = []
    fresh_pp = fresh.get("benchmarks", {}).get("packet_path")
    base_pp = baseline.get("benchmarks", {}).get("packet_path")
    if fresh_pp is None or base_pp is None:
        return ["baseline or fresh run is missing the packet_path benchmark"]
    floor = base_pp["speedup_vs_slow"] * (1.0 - tolerance)
    if fresh_pp["speedup_vs_slow"] < floor:
        failures.append(
            "packet-path fast-lane speedup regressed: "
            f"{fresh_pp['speedup_vs_slow']:.2f}x vs baseline "
            f"{base_pp['speedup_vs_slow']:.2f}x (floor {floor:.2f}x)"
        )
    if fresh_pp["events_per_packet"] > base_pp["events_per_packet"] * (
        1.0 + tolerance
    ):
        failures.append(
            "packet-path event budget regressed: "
            f"{fresh_pp['events_per_packet']:.2f} events/packet vs "
            f"baseline {base_pp['events_per_packet']:.2f}"
        )
    # The audio ratio is large and stable (vectorised bisection vs a
    # python loop).  The video burst ratios hover around 1.0 by design
    # (plane-sized transforms amortise pocketfft already), so they get
    # doubled tolerance and their baseline is capped at parity -- a
    # lucky fast baseline run must not arm a flaky gate; the check is
    # for "the batch path got pathologically slower than the loop".
    # The fabric gate follows the same shape: inline_efficiency is a
    # within-process ratio (raw cell loop vs scheduled+stored cells)
    # capped at parity, engaging from BENCH_pr6.json onward.
    # The burst ratio compares the single-train bulk commit to the
    # forced slow path in the same process; it is huge (hundreds) and
    # wall-clock on the burst side is tiny, so it gets doubled
    # tolerance against timer noise.  Engages from BENCH_pr8.json on.
    codec_gates = (
        ("packet_path", "speedup_burst_vs_slow",
         "burst-mode packet-path speedup", 2.0 * tolerance, None),
        ("audio_codec", "batched_speedup",
         "audio batched-encode speedup", tolerance, None),
        ("video_codec", "encode_batched_speedup",
         "video burst-encode ratio", 2.0 * tolerance, 1.0),
        ("video_codec", "decode_batched_speedup",
         "video burst-decode ratio", 2.0 * tolerance, 1.0),
        ("campaign_fabric", "inline_efficiency",
         "fabric scheduling efficiency", 2.0 * tolerance, 1.0),
    )
    for bench_name, key, label, gate_tolerance, baseline_cap in codec_gates:
        fresh_bench = fresh.get("benchmarks", {}).get(bench_name)
        base_bench = baseline.get("benchmarks", {}).get(bench_name)
        if fresh_bench is None or base_bench is None or key not in base_bench:
            continue
        base_value = base_bench[key]
        if baseline_cap is not None:
            base_value = min(base_value, baseline_cap)
        floor = base_value * (1.0 - gate_tolerance)
        if fresh_bench[key] < floor:
            failures.append(
                f"{label} regressed: {fresh_bench[key]:.2f}x vs baseline "
                f"{base_bench[key]:.2f}x (floor {floor:.2f}x)"
            )
    return failures


def render_report(payload: dict) -> str:
    """Human-readable summary of one suite run."""
    lines = []
    profile = "quick" if payload.get("quick") else "full"
    lines.append(f"benchmark suite ({profile} profile)")
    for name, result in payload.get("benchmarks", {}).items():
        parts = []
        for key in ("packets_per_s", "burst_packets_per_s", "events_per_s",
                    "speedup_vs_slow", "speedup_burst_vs_slow",
                    "events_per_packet", "frames_per_s", "batched_speedup",
                    "encode_batched_speedup", "decode_batched_speedup",
                    "inline_cells_per_s", "inline_efficiency",
                    "pool_speedup", "wall_s"):
            if key in result:
                value = result[key]
                parts.append(f"{key}={value:,}" if isinstance(value, int)
                             else f"{key}={value:,.2f}")
        lines.append(f"  {name:20s} " + "  ".join(parts))
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI driver shared by ``repro bench`` and run_bench.py."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the tracked performance benchmark suite",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI profile)")
    parser.add_argument("--only", choices=sorted(BENCHMARKS), default=None,
                        help="run a single benchmark")
    parser.add_argument("-o", "--out", default=None,
                        help="write the JSON payload here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_*.json and "
                             "fail on regression")
    parser.add_argument("--tolerance", type=float, default=CHECK_TOLERANCE,
                        help="relative regression tolerated by --check")
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick, only=args.only)
    print(render_report(payload))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed vs {args.check}")
    return 0
