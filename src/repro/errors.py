"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch everything from this package with a single handler while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class RoutingError(SimulationError):
    """A packet could not be delivered because no route exists."""


class CaptureError(ReproError):
    """A traffic capture was used incorrectly (e.g. read before stop)."""


class MediaError(ReproError):
    """A media feed, codec or loopback device failed."""


class CodecError(MediaError):
    """Encoding or decoding failed (bad bitstream, wrong dimensions...)."""


class PlatformError(ReproError):
    """A videoconferencing platform model rejected an operation."""


class SessionError(PlatformError):
    """A meeting session operation was invalid (join twice, empty...)."""


class MeasurementError(ReproError):
    """A measurement could not be derived from collected data."""


class AnalysisError(ReproError):
    """Post-processing/analysis of results failed."""


class CampaignError(ReproError):
    """A measurement campaign was misconfigured or its store is unusable."""


class StoreIntegrityError(CampaignError):
    """A result store does not match the campaign spec it claims to hold."""
