"""Experiment drivers: one module per study in the paper.

Each driver reproduces the methodology of one evaluation section and
returns structured results that benchmarks render as the corresponding
tables/figures:

* :mod:`repro.experiments.lag_study` — streaming lag + endpoint RTTs
  (Figs. 2, 4-11),
* :mod:`repro.experiments.endpoint_study` — endpoint architecture and
  churn (Fig. 3, the 20/19.5/1.8 finding),
* :mod:`repro.experiments.qoe_study` — video QoE vs session size and
  motion (Figs. 12, 14, 15, 16),
* :mod:`repro.experiments.bandwidth_study` — QoE under ingress caps
  (Figs. 17, 18),
* :mod:`repro.experiments.mobile_study` — Android resource use
  (Fig. 19, Table 4),
* :mod:`repro.experiments.dynamics_study` — QoE under *time-varying*
  conditions (bandwidth ramps, handover), reported per timeline phase.

Every driver accepts an :class:`ExperimentScale`; ``QUICK_SCALE`` keeps
benchmark runtimes in seconds, ``PAPER_SCALE`` approaches the paper's
session counts and durations.

The drivers are one-shot and in-process; :mod:`repro.campaign` layers
parallel, persistent, resumable grid sweeps over them.
"""

from .bandwidth_study import run_bandwidth_cell, run_bandwidth_grid
from .dynamics_study import run_dynamics_cell, run_dynamics_grid
from .endpoint_study import run_endpoint_study
from .lag_study import run_all_platforms, run_lag_scenario
from .mobile_study import run_figure19, run_mobile_scenario, run_table4
from .qoe_study import run_qoe_cell, run_qoe_grid
from .scale import ExperimentScale, PAPER_SCALE, QUICK_SCALE

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "run_all_platforms",
    "run_bandwidth_cell",
    "run_bandwidth_grid",
    "run_dynamics_cell",
    "run_dynamics_grid",
    "run_endpoint_study",
    "run_figure19",
    "run_lag_scenario",
    "run_mobile_scenario",
    "run_qoe_cell",
    "run_qoe_grid",
    "run_table4",
]
