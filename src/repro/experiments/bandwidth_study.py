"""Bandwidth-constraint study: Figures 17 and 18.

Section 4.4: ingress caps of 250 Kbps / 500 Kbps / 1 Mbps / unlimited
are applied to a receiving VM with tc/ifb while the host streams the
padded feed with audio; video QoE is scored per Fig. 17 and audio is
normalised, offset-aligned and scored as MOS-LQO per Fig. 18 (speech
mode on the low-motion sessions, which contain only human voice).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.postprocess import score_recorded_audio, score_recorded_video
from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..errors import MeasurementError
from ..net.dynamics import ConditionTimeline, constant_timeline
from ..net.link import default_cap_burst
from ..units import kbps, mbps
from .scale import ExperimentScale, QUICK_SCALE

#: The download rate limits of Figures 17-18 (None = "Infinite").
RATE_LIMITS = (kbps(250), kbps(500), mbps(1), None)


def static_cap_timeline(
    limit_bps: Optional[float], config: SessionConfig
) -> ConditionTimeline:
    """The Section 4.4 fixed cap as a degenerate one-phase timeline.

    One phase spanning the whole session -- armed at the start of
    settle (the tc filter is installed before the meeting begins) and
    held through the grace drain -- reproduces the static
    ``set_ingress_cap`` setup bit-for-bit while running through the
    dynamics engine like any scripted scenario.
    """
    return constant_timeline(
        duration_s=config.settle_s + config.duration_s + config.grace_s,
        name=limit_label(limit_bps),
        start_offset_s=-config.settle_s,
        ingress_cap_bps=limit_bps,
        cap_burst_bytes=default_cap_burst(limit_bps),
    )


def limit_label(limit_bps: Optional[float]) -> str:
    """The paper's x-axis labels for the rate limits."""
    if limit_bps is None:
        return "Infinite"
    if limit_bps >= 1e6:
        return f"{limit_bps / 1e6:.0f}Mbps"
    return f"{limit_bps / 1e3:.0f}Kbps"


@dataclass
class BandwidthCell:
    """One (platform, motion, limit) cell of Figures 17-18."""

    platform: str
    motion: str
    limit_bps: Optional[float]
    psnr_mean: float
    ssim_mean: float
    vifp_mean: float
    mos_lqo_mean: float
    download_mbps: float
    frames_frozen: int


def run_bandwidth_cell(
    platform_name: str,
    motion: str,
    limit_bps: Optional[float],
    scale: ExperimentScale = QUICK_SCALE,
    testbed: Optional[Testbed] = None,
    capped_client: str = "US-East2",
    compute_vifp: bool = True,
) -> BandwidthCell:
    """Run the capped sessions of one cell and aggregate."""
    if testbed is None:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        for name in ("US-East", "US-East2", "US-Central"):
            testbed.add_vm(name)
    names = ["US-East", capped_client, "US-Central"]
    host = "US-East"
    # Steady state matters here: adaptation takes a few feedback
    # rounds, so score the back half of the recording.
    duration = max(scale.qoe_session_duration_s, 16.0)
    skip = int(duration * 0.5 * scale.content_spec.fps)

    psnrs: List[float] = []
    ssims: List[float] = []
    vifps: List[float] = []
    moses: List[float] = []
    downloads: List[float] = []
    frozen_total = 0
    try:
        for session_index in range(scale.sessions):
            config = SessionConfig(
                duration_s=duration,
                feed=motion,
                pad_fraction=0.15,
                audio=True,
                content_spec=scale.content_spec,
                probes=False,
                record_video=True,
                record_audio=True,
                gop_size=30,
                session_index=session_index,
                feed_seed=scale.seed + session_index,
            )
            # The fixed cap rides the dynamics engine as a one-phase
            # timeline covering settle through grace; the engine
            # restores the uncapped link when the session's plan ends.
            # replace() re-runs SessionConfig validation with the
            # timeline in place.
            config = replace(
                config,
                timelines={
                    capped_client: static_cap_timeline(limit_bps, config)
                },
            )
            artifacts = testbed.run_session(platform_name, names, host, config)
            recorder = artifacts.recorders[capped_client]
            report = score_recorded_video(
                artifacts.padded_feed,
                recorder.frames,
                skip_leading=skip,
                compute_vifp=compute_vifp,
                max_frames=scale.score_frames,
            )
            psnrs.append(report.mean_psnr)
            ssims.append(report.mean_ssim)
            if compute_vifp:
                vifps.append(report.mean_vifp)
            flow = artifacts.wiring.audio_flow(host)
            reference = artifacts.audio_source.read_duration(0, duration)
            recorded = artifacts.recorded_audio(capped_client, flow)
            moses.append(score_recorded_audio(reference, recorded))
            downloads.append(artifacts.download_rate_bps(capped_client))
            frozen_total += artifacts.host_video_decoder(
                capped_client
            ).frames_frozen
    finally:
        # A session that aborts mid-run leaves its timeline partially
        # executed; restore the shared link so later cells on this
        # testbed start unconditioned (the old static path's finally).
        testbed.clear_conditions(capped_client)

    if not psnrs:
        raise MeasurementError("bandwidth cell produced no sessions")
    return BandwidthCell(
        platform=platform_name,
        motion=motion,
        limit_bps=limit_bps,
        psnr_mean=float(np.mean(psnrs)),
        ssim_mean=float(np.mean(ssims)),
        vifp_mean=float(np.mean(vifps)) if vifps else float("nan"),
        mos_lqo_mean=float(np.mean(moses)),
        download_mbps=float(np.mean(downloads)) / 1e6,
        frames_frozen=frozen_total,
    )


def run_bandwidth_grid(
    platforms: Sequence[str] = ("zoom", "webex", "meet"),
    motion: str = "high",
    limits: Sequence[Optional[float]] = RATE_LIMITS,
    scale: ExperimentScale = QUICK_SCALE,
    compute_vifp: bool = True,
) -> List[BandwidthCell]:
    """The full Figure 17/18 sweep for one motion class."""
    cells = []
    for platform_name in platforms:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        for name in ("US-East", "US-East2", "US-Central"):
            testbed.add_vm(name)
        for limit in limits:
            cells.append(
                run_bandwidth_cell(
                    platform_name,
                    motion,
                    limit,
                    scale=scale,
                    testbed=testbed,
                    compute_vifp=compute_vifp,
                )
            )
    return cells
