"""Mobile resource study: Figure 19 and Table 4.

Section 5: a US-east cloud VM hosts the meeting and streams the
low-motion (LM) or high-motion (HM) feed; a Samsung S10 and J3 join
from a residential network behind 50 Mbps Raspberry-Pi WiFi.  Device
scenarios vary the UI: full screen (default), gallery view (``-View``),
cameras on (``-Video``), screen off (``-Off``).  CPU is sampled every
three seconds over adb, download rate comes from per-device captures,
and the J3's battery discharge is integrated by a Monsoon power meter.
Table 4 adds up to eight extra high-motion-streaming VMs to reach
N in {3, 6, 11}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..errors import ConfigurationError
from ..platforms.base import ViewContext
from .scale import ExperimentScale, QUICK_SCALE

#: The Figure 19 scenarios.
MOBILE_SCENARIOS = ("LM", "HM", "LM-View", "LM-Video-View", "LM-Off")


@dataclass(frozen=True)
class MobileScenario:
    """Decoded scenario label.

    Attributes:
        motion: Feed class of the meeting host.
        view_mode: Phone UI mode.
        camera_on: Whether the phones stream their own video.
        screen_on: Whether the phone screens are on.
    """

    motion: str
    view_mode: str
    camera_on: bool
    screen_on: bool

    @classmethod
    def parse(cls, label: str) -> "MobileScenario":
        """Parse a paper label like ``"LM-Video-View"``."""
        parts = label.split("-")
        if parts[0] not in ("LM", "HM"):
            raise ConfigurationError(f"bad scenario label: {label!r}")
        motion = "low" if parts[0] == "LM" else "high"
        camera_on = "Video" in parts[1:]
        gallery = "View" in parts[1:]
        screen_off = "Off" in parts[1:]
        return cls(
            motion=motion,
            view_mode="gallery" if gallery else "fullscreen",
            camera_on=camera_on,
            screen_on=not screen_off,
        )


@dataclass
class DeviceReading:
    """Per-device outputs of one scenario."""

    device: str
    median_cpu_pct: float
    mean_rate_mbps: float
    discharge_mah: float
    cpu_samples: List[float] = field(default_factory=list)


@dataclass
class MobileScenarioResult:
    """One row group of Figure 19 / one cell pair of Table 4."""

    platform: str
    scenario: str
    num_participants: int
    readings: Dict[str, DeviceReading] = field(default_factory=dict)


def run_mobile_scenario(
    platform_name: str,
    scenario_label: str,
    scale: ExperimentScale = QUICK_SCALE,
    num_participants: int = 3,
    devices: Sequence[str] = ("S10", "J3"),
) -> MobileScenarioResult:
    """Run one (platform, scenario, N) mobile experiment.

    For ``num_participants`` beyond the host and the phones, extra
    cloud VMs join and stream simultaneously (the Table 4 stress
    setup).  Media uses the size-modelled streamers: only traffic,
    CPU and battery are observed on the phones.
    """
    scenario = MobileScenario.parse(scenario_label)
    extra_vm_count = num_participants - 1 - len(devices)
    if extra_vm_count < 0:
        raise ConfigurationError(
            f"N={num_participants} too small for host + {len(devices)} phones"
        )

    testbed = Testbed(TestbedConfig(seed=scale.seed))
    testbed.add_vm("US-East")
    extra_names = []
    for index in range(extra_vm_count):
        name = f"extra-{index + 1}"
        host = testbed.network.add_host(
            name=name,
            location=testbed.registry.get("US-East").location,
            tier="client",
        )
        from ..clients.client import CloudVMClient

        testbed.clients[name] = CloudVMClient(name, host)
        extra_names.append(name)

    phone_names = []
    for short in devices:
        view = ViewContext(
            view_mode=scenario.view_mode if scenario.screen_on else "audio-only",
            device="mobile-highend" if short == "S10" else "mobile-lowend",
        )
        testbed.add_android(
            short,
            platform_name,
            view=view,
            camera_on=scenario.camera_on,
            screen_on=scenario.screen_on,
        )
        phone_names.append(short)

    names = ["US-East"] + extra_names + phone_names
    duration = scale.qoe_session_duration_s
    config = SessionConfig(
        duration_s=duration,
        feed=scenario.motion,
        pad_fraction=0.0,
        audio=True,
        use_codec=False,  # size-modelled senders; phones observe traffic
        content_spec=scale.content_spec,
        probes=False,
        device_profile="mobile-highend",
        feed_seed=scale.seed,
    )

    extra_senders = list(extra_names)
    if scenario.camera_on:
        extra_senders.extend(phone_names)

    # Thumbnail counts feed the CPU model: platforms that preview other
    # participants pay per-tile decode costs even in full screen.
    platform = testbed.platform(platform_name)
    for short in phone_names:
        phone = testbed.clients[short]
        remote_with_video = 1 + len(extra_senders) - (1 if scenario.camera_on else 0)
        if scenario.screen_on and scenario.view_mode == "fullscreen":
            phone.thumbnail_count = min(
                max(0, remote_with_video - 1), platform.thumbnails_in_fullscreen()
            )
        else:
            phone.thumbnail_count = 0
        phone.start_monitoring(duration, start_delay_s=config.settle_s)

    artifacts = testbed.run_session(
        platform_name,
        names,
        "US-East",
        config,
        extra_sender_names=extra_senders,
    )

    result = MobileScenarioResult(
        platform=platform_name,
        scenario=scenario_label,
        num_participants=num_participants,
    )
    for short in phone_names:
        phone = testbed.clients[short]
        phone.stop_monitoring()
        try:
            rate = artifacts.download_rate_bps(short) / 1e6
        except Exception:
            rate = 0.0
        result.readings[short] = DeviceReading(
            device=short,
            median_cpu_pct=phone.median_cpu_pct(),
            mean_rate_mbps=rate,
            discharge_mah=phone.discharge_mah(),
            cpu_samples=[s.usage_pct for s in phone.cpu_samples],
        )
    return result


def run_figure19(
    platforms: Sequence[str] = ("zoom", "webex", "meet"),
    scenarios: Sequence[str] = MOBILE_SCENARIOS,
    scale: ExperimentScale = QUICK_SCALE,
) -> List[MobileScenarioResult]:
    """All Figure 19 scenario rows."""
    results = []
    for platform_name in platforms:
        for scenario_label in scenarios:
            results.append(
                run_mobile_scenario(platform_name, scenario_label, scale=scale)
            )
    return results


def run_table4(
    platforms: Sequence[str] = ("zoom", "webex", "meet"),
    participant_counts: Sequence[int] = (3, 6, 11),
    scale: ExperimentScale = QUICK_SCALE,
) -> Dict[tuple, MobileScenarioResult]:
    """Table 4: (platform, N, view) -> readings for S10/J3."""
    results = {}
    for platform_name in platforms:
        for n in participant_counts:
            for view_label, scenario in (("Full screen", "HM"), ("Gallery", "HM-View")):
                result = run_mobile_scenario(
                    platform_name, scenario, scale=scale, num_participants=n
                )
                results[(platform_name, n, view_label)] = result
    return results
