"""Experiment scaling profiles.

The paper runs 700+ sessions over 48 hours; a reproduction must be able
to run the same *protocol* at reduced scale for CI and at near-paper
scale for full validation.  :class:`ExperimentScale` captures the knobs
that trade fidelity for runtime without changing any mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

from ..errors import ConfigurationError
from ..media.frames import FrameSpec


@dataclass(frozen=True)
class ExperimentScale:
    """Session counts, durations and media geometry for one run.

    Attributes:
        sessions: Sessions per scenario (the paper uses 20 for lag,
            5 per condition for QoE).
        lag_session_duration_s: Streaming time of each lag session
            (paper: 120 s -> 35-40 lag samples per session).
        qoe_session_duration_s: Streaming time of each QoE session
            (paper: 300 s).
        content_spec: Geometry of the synthetic feeds.  QoE numbers are
            computed at this resolution; rates on the wire are
            normalised to the paper's 640x480@30 pixel rate either way.
        probe_count: RTT probes per session (paper: 100).
        score_frames: Frames scored per recording.
        seed: Master seed for the testbed.
    """

    sessions: int = 3
    lag_session_duration_s: float = 14.0
    qoe_session_duration_s: float = 10.0
    content_spec: FrameSpec = field(default_factory=lambda: FrameSpec(160, 120, 15))
    probe_count: int = 20
    score_frames: int = 40
    seed: int = 7

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigurationError("sessions must be >= 1")
        if self.lag_session_duration_s < 4.0:
            raise ConfigurationError(
                "lag sessions need at least two flash periods"
            )
        if self.probe_count < 1:
            raise ConfigurationError("probe_count must be >= 1")

    def with_seed(self, seed: int) -> "ExperimentScale":
        """The same profile reseeded (per-campaign-cell seeds)."""
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form (persisted in campaign stores)."""
        return {
            "sessions": self.sessions,
            "lag_session_duration_s": self.lag_session_duration_s,
            "qoe_session_duration_s": self.qoe_session_duration_s,
            "content_spec": {
                "width": self.content_spec.width,
                "height": self.content_spec.height,
                "fps": self.content_spec.fps,
            },
            "probe_count": self.probe_count,
            "score_frames": self.score_frames,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentScale":
        """Rebuild a profile persisted with :meth:`to_dict`."""
        try:
            spec = data["content_spec"]
            return cls(
                sessions=int(data["sessions"]),
                lag_session_duration_s=float(data["lag_session_duration_s"]),
                qoe_session_duration_s=float(data["qoe_session_duration_s"]),
                content_spec=FrameSpec(
                    int(spec["width"]), int(spec["height"]), int(spec["fps"])
                ),
                probe_count=int(data["probe_count"]),
                score_frames=int(data["score_frames"]),
                seed=int(data["seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad scale record: {exc!r}") from exc


#: Fast profile used by the benchmark suite (seconds per scenario).
QUICK_SCALE = ExperimentScale()

#: Near-paper profile: 20 sessions, 2-minute lag runs, 100 probes.
PAPER_SCALE = ExperimentScale(
    sessions=20,
    lag_session_duration_s=120.0,
    qoe_session_duration_s=300.0,
    content_spec=FrameSpec(320, 240, 15),
    probe_count=100,
    score_frames=200,
)
