"""Network-dynamics study: QoE under *changing* conditions, per phase.

The paper holds network conditions fixed within a session (Section 4.4
caps a receiver for a whole run); this study drives the condition
timeline engine instead: a scripted schedule degrades and restores one
receiver's access mid-session, and every metric -- video QoE, download
rate, freeze fraction, shaper drops -- is reported *per timeline
phase*, so adaptation and recovery are visible rather than averaged
away.

Two scenarios ship by default:

* ``ramp`` -- a step-down/step-up bandwidth staircase
  (uncapped -> 1 Mbps -> 250 Kbps -> 1 Mbps -> uncapped),
* ``handover`` -- a WiFi->LTE switch: a fat low-latency access, a
  short near-total outage, then a capped higher-latency regime.

Custom timelines (e.g. deserialized from a campaign axis) run through
the same driver via the ``timeline`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.postprocess import score_recorded_video_by_phase
from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..errors import ConfigurationError, MeasurementError
from ..net.dynamics import (
    ConditionTimeline,
    LinkConditions,
    bandwidth_ramp_timeline,
    handover_timeline,
)
from ..units import kbps, mbps
from .scale import ExperimentScale, QUICK_SCALE

#: The scripted scenarios the study knows by name.
DYNAMICS_SCENARIOS = ("ramp", "handover")


def scenario_timeline(scenario: str, duration_s: float) -> ConditionTimeline:
    """The named scenario's timeline, scaled to one media window."""
    if scenario == "ramp":
        return bandwidth_ramp_timeline(
            caps_bps=(None, mbps(1), kbps(250), mbps(1), None),
            step_s=duration_s / 5.0,
        )
    if scenario == "handover":
        return handover_timeline(
            before_s=duration_s / 2.0,
            after_s=duration_s / 2.0,
            before=LinkConditions(ingress_cap_bps=mbps(30)),
            after=LinkConditions(
                ingress_cap_bps=mbps(2),
                extra_latency_s=0.04,
                extra_jitter_s=0.01,
                loss_rate=0.005,
            ),
            outage_s=min(0.3, duration_s / 20.0),
        )
    raise ConfigurationError(
        f"unknown dynamics scenario {scenario!r}; "
        f"expected one of {DYNAMICS_SCENARIOS} (or pass a timeline)"
    )


@dataclass
class PhaseReport:
    """Aggregated per-phase metrics across a cell's sessions."""

    name: str
    psnr_mean: float
    ssim_mean: float
    download_mbps: float
    freeze_fraction: float
    frames_scored: int
    shaper_dropped: int


@dataclass
class DynamicsCell:
    """One (platform, scenario) cell: ordered per-phase reports."""

    platform: str
    scenario: str
    phases: List[PhaseReport] = field(default_factory=list)
    psnr_mean: float = float("nan")
    ssim_mean: float = float("nan")
    sessions: int = 0

    def phase(self, name: str) -> PhaseReport:
        """Look up one phase's report by name."""
        for report in self.phases:
            if report.name == name:
                return report
        raise MeasurementError(f"no phase named {name!r} in this cell")


def run_dynamics_cell(
    platform_name: str,
    scenario: str,
    scale: ExperimentScale = QUICK_SCALE,
    testbed: Optional[Testbed] = None,
    observed_client: str = "US-East2",
    motion: str = "high",
    timeline: Optional[ConditionTimeline] = None,
) -> DynamicsCell:
    """Run one dynamics cell and aggregate per phase.

    Args:
        platform_name: ``zoom``/``webex``/``meet``.
        scenario: A member of :data:`DYNAMICS_SCENARIOS`, or any label
            when ``timeline`` is given explicitly.
        scale: Sessions/durations profile.
        testbed: Optional shared deployment (three US VMs by default).
        observed_client: The receiver whose access the timeline drives
            and whose recording is scored.
        motion: Host feed class.
        timeline: Override the named scenario with a custom timeline
            (armed relative to the media window as authored).
    """
    if testbed is None:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        for name in ("US-East", "US-East2", "US-Central"):
            testbed.add_vm(name)
    names = ["US-East", observed_client, "US-Central"]
    host = "US-East"
    duration = scale.qoe_session_duration_s
    if timeline is None:
        timeline = scenario_timeline(scenario, duration)
    else:
        # A custom timeline (e.g. a campaign axis) has a fixed length;
        # stretch the media window to cover it so the plan never
        # outlives the session (SessionConfig rejects that).
        duration = max(
            duration, timeline.start_offset_s + timeline.total_duration_s
        )

    phase_psnr: Dict[str, List[float]] = {}
    phase_ssim: Dict[str, List[float]] = {}
    phase_rate: Dict[str, List[float]] = {}
    phase_freeze: Dict[str, List[float]] = {}
    phase_frames: Dict[str, int] = {}
    phase_drops: Dict[str, int] = {}
    phase_order: List[str] = []
    overall_psnr: List[float] = []
    overall_ssim: List[float] = []

    try:
        for session_index in range(scale.sessions):
            config = SessionConfig(
                duration_s=duration,
                feed=motion,
                pad_fraction=0.15,
                audio=False,
                content_spec=scale.content_spec,
                probes=False,
                record_video=True,
                gop_size=30,
                session_index=session_index,
                feed_seed=scale.seed + session_index,
                timelines={observed_client: timeline},
            )
            artifacts = testbed.run_session(platform_name, names, host, config)
            recorder = artifacts.recorders[observed_client]
            windows = artifacts.phase_windows(observed_client)
            # The whole recording is scored (scale.score_frames does
            # not apply here): a frame cap would truncate the later
            # phases, and per-phase coverage is the point.
            report, phase_qoe = score_recorded_video_by_phase(
                artifacts.padded_feed,
                recorder.frames,
                recorder.timestamps,
                windows,
                compute_vifp=False,
            )
            overall_psnr.append(report.mean_psnr)
            overall_ssim.append(report.mean_ssim)
            rates = artifacts.phase_download_rates_bps(observed_client)
            freezes = artifacts.phase_freeze_fractions(observed_client)
            drops = artifacts.phase_shaper_stats(observed_client)
            for qoe in phase_qoe:
                if qoe.name not in phase_order:
                    phase_order.append(qoe.name)
                phase_psnr.setdefault(qoe.name, []).append(qoe.psnr_mean)
                phase_ssim.setdefault(qoe.name, []).append(qoe.ssim_mean)
                phase_frames[qoe.name] = (
                    phase_frames.get(qoe.name, 0) + qoe.frames
                )
                phase_rate.setdefault(qoe.name, []).append(
                    rates.get(qoe.name, 0.0)
                )
                phase_freeze.setdefault(qoe.name, []).append(
                    freezes.get(qoe.name, float("nan"))
                )
                stats = drops.get(qoe.name)
                phase_drops[qoe.name] = phase_drops.get(qoe.name, 0) + (
                    stats.dropped if stats is not None else 0
                )
    finally:
        # A session that aborts mid-ramp (or mid-outage) leaves its
        # remaining timeline events unexecuted; restore the shared
        # link so later cells on this testbed start unconditioned.
        testbed.clear_conditions(observed_client)

    if not phase_order:
        raise MeasurementError("dynamics cell produced no phases")

    def nanmean(values: Sequence[float]) -> float:
        finite = [v for v in values if np.isfinite(v)]
        return float(np.mean(finite)) if finite else float("nan")

    cell = DynamicsCell(
        platform=platform_name,
        scenario=scenario,
        psnr_mean=nanmean(overall_psnr),
        ssim_mean=nanmean(overall_ssim),
        sessions=scale.sessions,
    )
    for name in phase_order:
        cell.phases.append(
            PhaseReport(
                name=name,
                psnr_mean=nanmean(phase_psnr[name]),
                ssim_mean=nanmean(phase_ssim[name]),
                download_mbps=nanmean(phase_rate[name]) / 1e6,
                freeze_fraction=nanmean(phase_freeze[name]),
                frames_scored=phase_frames[name],
                shaper_dropped=phase_drops[name],
            )
        )
    return cell


def run_dynamics_grid(
    platforms: Sequence[str] = ("zoom", "webex", "meet"),
    scenarios: Sequence[str] = DYNAMICS_SCENARIOS,
    scale: ExperimentScale = QUICK_SCALE,
) -> List[DynamicsCell]:
    """Every (platform, scenario) combination, fresh testbed per platform."""
    cells = []
    for platform_name in platforms:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        for name in ("US-East", "US-East2", "US-Central"):
            testbed.add_vm(name)
        for scenario in scenarios:
            cells.append(
                run_dynamics_cell(
                    platform_name, scenario, scale=scale, testbed=testbed
                )
            )
    return cells
