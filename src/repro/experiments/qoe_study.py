"""Video QoE study: the protocol behind Figures 12 and 14-16.

Section 4.3: a designated meeting host broadcasts a low- or high-motion
feed (padded per Fig. 13) to N-1 passive receivers who render it full
screen and desktop-record it; recordings are cropped, resized, aligned
and scored with PSNR/SSIM/VIFp, and Layer-7 data rates are read from
the traces.  The protocol repeats for N in 2..6 and both motion
classes, in the US (host US-east) and in Europe (host CH).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.postprocess import align_recorded_video, recording_prefix_frames
from ..media.sync import PROBE_FRAMES
from ..core.results import QoeSessionResult, RateSummary
from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..errors import MeasurementError
from ..qoe.vqmt import score_video
from .scale import ExperimentScale, QUICK_SCALE

#: Participant rosters: host first, then joiners in order (Section
#: 4.3.1 mixes US-east and US-west receivers).
US_ROSTER = (
    "US-East",
    "US-West",
    "US-East2",
    "US-West2",
    "US-Central",
    "US-SCentral",
)
EU_ROSTER = ("CH", "FR", "DE", "IE", "UK-South", "NL")


@dataclass
class QoeCell:
    """One (platform, motion, N) cell of Figure 12/16.

    Values are averaged across sessions and receiving clients, with
    standard deviations across sessions (the paper's error bars).
    """

    platform: str
    motion: str
    num_participants: int
    psnr_mean: float
    psnr_std: float
    ssim_mean: float
    ssim_std: float
    vifp_mean: float
    vifp_std: float
    upload_mbps: float
    download_mbps: float
    sessions: List[QoeSessionResult] = field(default_factory=list)


def run_qoe_cell(
    platform_name: str,
    motion: str,
    num_participants: int,
    roster: Sequence[str] = US_ROSTER,
    scale: ExperimentScale = QUICK_SCALE,
    testbed: Optional[Testbed] = None,
    compute_vifp: bool = True,
) -> QoeCell:
    """Run the sessions of one figure cell and aggregate.

    Args:
        platform_name: ``zoom``/``webex``/``meet``.
        motion: ``"low"`` or ``"high"``.
        num_participants: The paper's N (2..6 with the default roster).
        roster: Host-first participant list to draw N clients from.
        scale: Sessions/durations profile.
        testbed: Optional shared deployment.
        compute_vifp: Disable to skip the most expensive metric.
    """
    if num_participants < 2 or num_participants > len(roster):
        raise MeasurementError(
            f"N={num_participants} needs a roster of at least that size"
        )
    if testbed is None:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        group = "US" if roster[0].startswith("US") else "Europe"
        testbed.deploy_group(group)
    names = list(roster[:num_participants])
    host = names[0]

    session_results: List[QoeSessionResult] = []
    for session_index in range(scale.sessions):
        config = SessionConfig(
            duration_s=scale.qoe_session_duration_s,
            feed=motion,
            pad_fraction=0.15,
            audio=False,
            content_spec=scale.content_spec,
            probes=False,
            record_video=True,
            gop_size=30,
            session_index=session_index,
            feed_seed=scale.seed + session_index,
        )
        artifacts = testbed.run_session(platform_name, names, host, config)
        session = QoeSessionResult(
            platform=platform_name,
            num_participants=num_participants,
            motion=motion,
            session_index=session_index,
        )
        # Align every receiver's recording, then score all of them in
        # one batched pass: the per-frame series are independent, so
        # concatenating the aligned stacks yields identical values to
        # scoring each recording on its own.  All receivers replay the
        # same injected feed, so one shared reference window serves
        # every alignment, and only the recording prefix that can be
        # scored is pulled (and resampled) from each recorder.
        skip_leading, max_shift = 2, 30
        prefix = recording_prefix_frames(
            skip_leading=skip_leading,
            max_shift=max_shift,
            max_frames=scale.score_frames,
        )
        reference = None
        if prefix is not None:
            window = (prefix - skip_leading) + 2 * max_shift
            reference = np.asarray(artifacts.padded_feed.content.frames(window))
        aligned = {
            receiver: align_recorded_video(
                artifacts.padded_feed,
                recorder.frames if prefix is None else recorder.frames_head(prefix),
                skip_leading=skip_leading,
                max_shift=max_shift,
                max_frames=scale.score_frames,
                reference=reference,
            )
            for receiver, recorder in artifacts.recorders.items()
        }
        if aligned:
            report = score_video(
                np.concatenate([ref for ref, _rec in aligned.values()]),
                np.concatenate([rec for _ref, rec in aligned.values()]),
                compute_vifp=compute_vifp,
            )
        offset = 0
        for receiver, (_ref, rec) in aligned.items():
            count = len(rec)
            window = slice(offset, offset + count)
            session.psnr[receiver] = float(np.mean(report.psnr_series[window]))
            session.ssim[receiver] = float(np.mean(report.ssim_series[window]))
            if compute_vifp:
                session.vifp[receiver] = float(
                    np.mean(report.vifp_series[window])
                )
            offset += count
        session.rates = artifacts.rate_summary()
        session_results.append(session)

    def stats(metric: str) -> tuple[float, float]:
        per_session = [s.mean_metric(metric) for s in session_results]
        return float(np.mean(per_session)), float(np.std(per_session))

    psnr_mean, psnr_std = stats("psnr")
    ssim_mean, ssim_std = stats("ssim")
    if compute_vifp:
        vifp_mean, vifp_std = stats("vifp")
    else:
        vifp_mean, vifp_std = float("nan"), float("nan")
    uploads = [s.rates.upload_bps for s in session_results]
    downloads = [s.rates.mean_download_bps for s in session_results]

    return QoeCell(
        platform=platform_name,
        motion=motion,
        num_participants=num_participants,
        psnr_mean=psnr_mean,
        psnr_std=psnr_std,
        ssim_mean=ssim_mean,
        ssim_std=ssim_std,
        vifp_mean=vifp_mean,
        vifp_std=vifp_std,
        upload_mbps=float(np.mean(uploads)) / 1e6,
        download_mbps=float(np.mean(downloads)) / 1e6,
        sessions=session_results,
    )


def run_qoe_grid(
    platforms: Sequence[str] = ("zoom", "webex", "meet"),
    motions: Sequence[str] = ("low", "high"),
    participant_counts: Sequence[int] = (2, 3, 4),
    roster: Sequence[str] = US_ROSTER,
    scale: ExperimentScale = QUICK_SCALE,
    compute_vifp: bool = True,
) -> List[QoeCell]:
    """The full Figure 12/15 grid (or Fig. 16 with the EU roster)."""
    cells = []
    for platform_name in platforms:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        group = "US" if roster[0].startswith("US") else "Europe"
        testbed.deploy_group(group)
        for motion in motions:
            for n in participant_counts:
                cells.append(
                    run_qoe_cell(
                        platform_name,
                        motion,
                        n,
                        roster=roster,
                        scale=scale,
                        testbed=testbed,
                        compute_vifp=compute_vifp,
                    )
                )
    return cells


def degradation_table(cells: List[QoeCell]) -> Dict[tuple, Dict[str, float]]:
    """Figure 14: QoE reduction from low- to high-motion feeds.

    Returns (platform, N) -> {psnr/ssim/vifp degradation}.
    """
    by_key: Dict[tuple, Dict[str, QoeCell]] = {}
    for cell in cells:
        by_key.setdefault((cell.platform, cell.num_participants), {})[
            cell.motion
        ] = cell
    table = {}
    for key, motions in by_key.items():
        if "low" not in motions or "high" not in motions:
            continue
        low, high = motions["low"], motions["high"]
        table[key] = {
            "psnr": low.psnr_mean - high.psnr_mean,
            "ssim": low.ssim_mean - high.ssim_mean,
            "vifp": low.vifp_mean - high.vifp_mean,
        }
    return table
