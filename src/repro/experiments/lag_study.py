"""Streaming-lag study: the protocol behind Figures 2 and 4-11.

The paper's protocol (Section 4.2): deploy seven VMs per region group,
designate one as meeting host, broadcast the blank-screen/periodic-
flash feed for two minutes, collect 35-40 lag samples per participant,
repeat for 20 sessions, and probe each client's discovered service
endpoint 100 times per session.  :func:`run_lag_scenario` executes
exactly that protocol for one (platform, host) pair and returns lags,
RTTs and discovered endpoints for every receiver across all sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import LagSessionResult
from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..errors import MeasurementError
from .scale import ExperimentScale, QUICK_SCALE

#: The four scenarios of Figures 4-7: (figure, host VM, region group).
LAG_SCENARIOS = (
    ("fig4", "US-East", "US"),
    ("fig5", "US-West", "US"),
    ("fig6", "UK-West", "Europe"),
    ("fig7", "CH", "Europe"),
)


@dataclass
class LagScenarioResult:
    """Aggregated output of one (platform, host) lag scenario.

    Attributes:
        platform: Platform name.
        host: Meeting host VM name.
        group: Region group of the deployment.
        lags_ms: Receiver -> all matched lag samples across sessions.
        rtts_ms: Receiver -> per-session mean RTTs.
        sessions: Per-session detail records.
    """

    platform: str
    host: str
    group: str
    lags_ms: Dict[str, List[float]] = field(default_factory=dict)
    rtts_ms: Dict[str, List[float]] = field(default_factory=dict)
    sessions: List[LagSessionResult] = field(default_factory=list)

    def median_lag_ms(self, receiver: str) -> float:
        """Median lag of one receiver over all sessions."""
        samples = self.lags_ms.get(receiver, [])
        if not samples:
            raise MeasurementError(f"no lag samples for {receiver}")
        samples = sorted(samples)
        return samples[len(samples) // 2]

    def lag_range_ms(self) -> tuple[float, float]:
        """(min, max) of per-receiver median lags -- the paper's
        "typical streaming lag" bands."""
        medians = [self.median_lag_ms(r) for r in self.lags_ms]
        return min(medians), max(medians)


def run_lag_scenario(
    platform_name: str,
    host: str,
    group: str,
    scale: ExperimentScale = QUICK_SCALE,
    testbed: Optional[Testbed] = None,
) -> LagScenarioResult:
    """Run the Section 4.2 protocol for one platform and host.

    Args:
        platform_name: ``zoom``/``webex``/``meet``.
        host: Host VM name (must belong to ``group``).
        group: ``US`` or ``Europe`` (Table 3 deployment).
        scale: Sessions/durations profile.
        testbed: Reuse an existing deployment (the same testbed keeps
            endpoint stickiness across platforms, like the paper's
            long-lived VMs); a fresh one is built if omitted.
    """
    if testbed is None:
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        testbed.deploy_group(group)
    names = testbed.registry.vm_names(group)
    if host not in names:
        raise MeasurementError(f"host {host!r} is not in group {group!r}")

    result = LagScenarioResult(platform=platform_name, host=host, group=group)
    for session_index in range(scale.sessions):
        config = SessionConfig(
            duration_s=scale.lag_session_duration_s,
            feed="flash",
            pad_fraction=0.0,
            audio=False,
            content_spec=scale.content_spec,
            probes=True,
            probe_count=scale.probe_count,
            probe_interval_s=max(
                0.2, scale.lag_session_duration_s / (scale.probe_count + 1)
            ),
            gop_size=600,  # keyframes must not masquerade as flashes
            session_index=session_index,
            feed_seed=scale.seed + session_index,
        )
        artifacts = testbed.run_session(platform_name, names, host, config)
        session_result = LagSessionResult(
            platform=platform_name, host=host, session_index=session_index
        )
        for receiver in names:
            if receiver == host:
                continue
            measurements = artifacts.lag_measurements(receiver)
            lags = [m.lag_ms for m in measurements]
            session_result.lags_ms[receiver] = lags
            result.lags_ms.setdefault(receiver, []).extend(lags)
            try:
                rtt = artifacts.mean_rtt_ms(receiver)
            except MeasurementError:
                rtt = float("nan")
            session_result.rtts_ms[receiver] = rtt
            result.rtts_ms.setdefault(receiver, []).append(rtt)
        result.sessions.append(session_result)
    return result


def run_all_platforms(
    host: str,
    group: str,
    scale: ExperimentScale = QUICK_SCALE,
) -> Dict[str, LagScenarioResult]:
    """The full figure: one lag scenario per platform."""
    results = {}
    for platform_name in ("zoom", "webex", "meet"):
        results[platform_name] = run_lag_scenario(
            platform_name, host, group, scale
        )
    return results
