"""Endpoint architecture study: Figure 3 and the churn statistics.

Section 4.2: "out of 20 videoconferencing sessions, a client on Zoom,
Webex and Meet encounters, on average, 20, 19.5 and 1.8 endpoints" --
and the architectural difference of Fig. 3: one shared endpoint per
session on Zoom/Webex versus per-client endpoints on Meet, plus Zoom's
peer-to-peer mode at N=2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.session import SessionConfig
from ..core.testbed import Testbed, TestbedConfig
from ..net.address import EndpointKey
from .scale import ExperimentScale, QUICK_SCALE


@dataclass
class EndpointStudyResult:
    """Endpoint observations for one platform over many sessions.

    Attributes:
        platform: Platform name.
        per_client_endpoints: Client -> set of endpoints seen across
            all sessions.
        per_session_endpoint_sets: For each session, the set of
            endpoints used by all clients together.
        ports: All remote ports observed (should be the platform's
            designated port for relayed sessions).
    """

    platform: str
    sessions: int = 0
    per_client_endpoints: Dict[str, Set[EndpointKey]] = field(default_factory=dict)
    per_session_endpoint_sets: List[Set[EndpointKey]] = field(default_factory=list)
    ports: Set[int] = field(default_factory=set)

    def mean_endpoints_per_client(self) -> float:
        """Average distinct endpoints per client (the 20/19.5/1.8)."""
        counts = [len(s) for s in self.per_client_endpoints.values()]
        return float(np.mean(counts)) if counts else 0.0

    def endpoints_per_session(self) -> List[int]:
        """Distinct endpoints serving each session (1 vs N of Fig. 3)."""
        return [len(s) for s in self.per_session_endpoint_sets]


def run_endpoint_study(
    platform_name: str,
    client_names: Optional[List[str]] = None,
    host: str = "US-East",
    scale: ExperimentScale = QUICK_SCALE,
    sessions: Optional[int] = None,
) -> EndpointStudyResult:
    """Observe endpoint identity across repeated sessions.

    Uses short flash sessions (media must flow for the monitor to see
    streaming endpoints) and collects each client's discovered
    endpoints from its capture, exactly like the paper's monitor.
    """
    testbed = Testbed(TestbedConfig(seed=scale.seed))
    testbed.deploy_group("US")
    names = client_names or ["US-East", "US-East2", "US-Central", "US-West"]
    session_count = sessions if sessions is not None else scale.sessions

    result = EndpointStudyResult(platform=platform_name, sessions=session_count)
    for session_index in range(session_count):
        config = SessionConfig(
            duration_s=5.0,
            feed="flash",
            pad_fraction=0.0,
            content_spec=scale.content_spec,
            probes=False,
            gop_size=600,
            session_index=session_index,
            feed_seed=scale.seed + session_index,
        )
        artifacts = testbed.run_session(platform_name, names, host, config)
        session_endpoints: Set[EndpointKey] = set()
        for name in names:
            endpoints = artifacts.discovered_endpoints(name)
            result.per_client_endpoints.setdefault(name, set()).update(endpoints)
            session_endpoints.update(endpoints)
            result.ports.update(e.port for e in endpoints)
        result.per_session_endpoint_sets.append(session_endpoints)
    return result


def p2p_check(scale: ExperimentScale = QUICK_SCALE) -> bool:
    """Verify Zoom's two-party peer-to-peer mode (Fig. 3 footnote).

    Returns True when a two-client Zoom session streams directly
    between the participants with no platform relay in the path.
    """
    testbed = Testbed(TestbedConfig(seed=scale.seed))
    testbed.add_vm("US-East")
    testbed.add_vm("US-West")
    config = SessionConfig(
        duration_s=5.0,
        feed="flash",
        pad_fraction=0.0,
        content_spec=scale.content_spec,
        probes=False,
        gop_size=600,
    )
    artifacts = testbed.run_session(
        "zoom", ["US-East", "US-West"], "US-East", config
    )
    peer_ip = testbed.clients["US-West"].host.ip
    endpoints = artifacts.discovered_endpoints("US-East")
    return artifacts.wiring.p2p and all(e.ip == peer_ip for e in endpoints)
