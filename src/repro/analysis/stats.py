"""Small statistics helpers shared by experiments and reports."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..errors import AnalysisError


def percentile(samples: Iterable[float], q: float) -> float:
    """The q-th percentile (0-100) of a sample."""
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile out of range: {q}")
    return float(np.percentile(array, q))


def describe(samples: Iterable[float]) -> Dict[str, float]:
    """Mean/std/median/p10/p90/min/max of a sample."""
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("cannot describe an empty sample")
    return {
        "count": float(array.size),
        "mean": float(array.mean()),
        "std": float(array.std()),
        "median": float(np.median(array)),
        "p10": float(np.percentile(array, 10)),
        "p90": float(np.percentile(array, 90)),
        "min": float(array.min()),
        "max": float(array.max()),
    }


def relative_change(before: float, after: float) -> float:
    """(after - before) / before, guarding the degenerate base."""
    if before == 0:
        raise AnalysisError("relative change undefined for a zero base")
    return (after - before) / before
