"""Analysis toolbox: CDFs, summary statistics, text tables, figures.

The paper presents results as CDFs (Figs. 4-7), scatter/strip plots of
RTTs (Figs. 8-11), grouped bars (Figs. 12, 14-19) and tables.  This
package computes those series from experiment results and renders them
as aligned text tables and ASCII-art charts, so every artifact can be
regenerated without a plotting stack.
"""

from .cdf import Cdf, cdf_table
from .stats import describe, percentile
from .tables import TextTable, format_rate_mbps
from .figures import ascii_bar_chart, ascii_cdf

__all__ = [
    "Cdf",
    "TextTable",
    "ascii_bar_chart",
    "ascii_cdf",
    "cdf_table",
    "describe",
    "format_rate_mbps",
    "percentile",
]
