"""Markdown report assembly for experiment results.

Collects regenerated artifacts (tables, CDF summaries, notes) into a
single Markdown document -- the shape of EXPERIMENTS.md -- so full-scale
validation runs can emit their own paper-vs-measured record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import AnalysisError
from .cdf import Cdf
from .tables import TextTable


@dataclass
class ReportSection:
    """One artifact in the report."""

    title: str
    body: str
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """This section as Markdown."""
        parts = [f"## {self.title}", "", "```", self.body, "```"]
        if self.notes:
            parts.append("")
            parts.extend(f"- {note}" for note in self.notes)
        return "\n".join(parts)


class ExperimentReport:
    """An ordered collection of report sections."""

    def __init__(self, title: str) -> None:
        if not title:
            raise AnalysisError("a report needs a title")
        self.title = title
        self._sections: List[ReportSection] = []

    def __len__(self) -> int:
        return len(self._sections)

    def add_section(
        self, title: str, body: str, notes: Sequence[str] = ()
    ) -> ReportSection:
        """Append a pre-rendered artifact."""
        section = ReportSection(title=title, body=body, notes=list(notes))
        self._sections.append(section)
        return section

    def has_section(self, title: str) -> bool:
        """Whether a section with this title exists."""
        return any(s.title == title for s in self._sections)

    def replace_section(
        self, title: str, body: str, notes: Sequence[str] = ()
    ) -> ReportSection:
        """Upsert a section in place.

        An existing section keeps its position (a live report refreshed
        incrementally -- e.g. by ``campaign watch`` -- does not reorder
        on every update); a new title is appended.
        """
        for index, section in enumerate(self._sections):
            if section.title == title:
                replacement = ReportSection(
                    title=title, body=body, notes=list(notes)
                )
                self._sections[index] = replacement
                return replacement
        return self.add_section(title, body, notes)

    def add_table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        notes: Sequence[str] = (),
    ) -> ReportSection:
        """Append a table artifact."""
        table = TextTable(headers)
        for row in rows:
            table.add_row(row)
        return self.add_section(title, table.render(), notes)

    def add_cdf_summary(
        self,
        title: str,
        series: Dict[str, Sequence[float]],
        unit: str = "ms",
        notes: Sequence[str] = (),
    ) -> ReportSection:
        """Append p10/median/p90 rows for a family of distributions."""
        headers = ["Series", f"p10 ({unit})", f"median ({unit})",
                   f"p90 ({unit})", "n"]
        rows = []
        for label, samples in series.items():
            cdf = Cdf.from_samples(samples)
            rows.append(
                [label, f"{cdf.quantile(0.1):.1f}", f"{cdf.median:.1f}",
                 f"{cdf.quantile(0.9):.1f}", len(cdf)]
            )
        return self.add_table(title, headers, rows, notes)

    def render(self) -> str:
        """The full report as Markdown."""
        parts = [f"# {self.title}", ""]
        for section in self._sections:
            parts.append(section.render())
            parts.append("")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        """Write the rendered report to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
