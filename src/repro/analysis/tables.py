"""Aligned text tables: how benchmarks print the paper's tables."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import AnalysisError
from ..units import to_mbps


class TextTable:
    """A simple column-aligned table renderer.

    >>> t = TextTable(["a", "b"])
    >>> t.add_row(["1", "2"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    a | b
    --+--
    1 | 2
    """

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise AnalysisError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row (cells are str()-ed)."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise AnalysisError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as an aligned string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        separator = "-+-".join("-" * w for w in widths)
        lines = [fmt(self.headers), separator]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)


def format_rate_mbps(rate_bps: float, digits: int = 2) -> str:
    """Render a bits/second rate as the paper's Mbps numbers."""
    return f"{to_mbps(rate_bps):.{digits}f}"


def format_ms(seconds: float, digits: int = 1) -> str:
    """Render seconds as milliseconds."""
    return f"{seconds * 1e3:.{digits}f}"
