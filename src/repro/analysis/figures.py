"""ASCII renderings of the paper's figure types.

Benchmarks regenerate figures as text: CDF staircases for the lag
figures and grouped bar charts for the QoE/rate/resource figures.  No
plotting dependency is needed and outputs diff cleanly in CI logs.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import AnalysisError
from .cdf import Cdf


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    quantile_marks: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    unit: str = "ms",
) -> str:
    """Render a family of CDFs as quantile strips.

    Each labelled series becomes one line with its quantiles placed on
    a shared horizontal axis -- a text rendition of Figs. 4-7.
    """
    if not series:
        raise AnalysisError("no series to render")
    cdfs = {label: Cdf.from_samples(s) for label, s in series.items()}
    lo = min(c.values[0] for c in cdfs.values())
    hi = max(c.values[-1] for c in cdfs.values())
    span = max(hi - lo, 1e-9)
    label_width = max(len(label) for label in cdfs)

    lines = []
    for label, cdf in cdfs.items():
        strip = [" "] * (width + 1)
        for q in quantile_marks:
            x = cdf.quantile(q)
            pos = int((x - lo) / span * width)
            strip[pos] = "*" if q == 0.5 else "+"
        lines.append(f"{label.ljust(label_width)} |{''.join(strip)}|")
    axis = (
        f"{''.ljust(label_width)}  {lo:.1f}{unit}"
        f"{''.rjust(max(1, width - 12))}{hi:.1f}{unit}"
    )
    lines.append(axis)
    lines.append(f"{''.ljust(label_width)}  (+ = p10/p25/p75/p90, * = median)")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Dict[str, float],
    width: int = 40,
    unit: str = "",
    digits: int = 2,
) -> str:
    """Render labelled values as horizontal bars (Figs. 12-19 style)."""
    if not values:
        raise AnalysisError("no values to render")
    peak = max(abs(v) for v in values.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:.{digits}f}{unit}"
        )
    return "\n".join(lines)
