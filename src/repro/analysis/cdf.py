"""Empirical CDFs, the presentation of Figures 4-7."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


@dataclass
class Cdf:
    """An empirical cumulative distribution function."""

    values: np.ndarray

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        """Build a CDF from raw samples.

        Raises:
            AnalysisError: On an empty sample.
        """
        array = np.sort(np.asarray(list(samples), dtype=np.float64))
        if array.size == 0:
            raise AnalysisError("cannot build a CDF from no samples")
        return cls(values=array)

    def __len__(self) -> int:
        return int(self.values.size)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.values, x, side="right")) / len(self)

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile out of range: {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs suitable for plotting, thinned if large."""
        n = len(self)
        indices = (
            np.arange(n)
            if n <= max_points
            else np.linspace(0, n - 1, max_points).astype(int)
        )
        return [
            (float(self.values[i]), float((i + 1) / n)) for i in indices
        ]


def cdf_table(
    series: dict[str, Sequence[float]], quantiles: Sequence[float] = (0.1, 0.5, 0.9)
) -> dict[str, dict[float, float]]:
    """Quantile summaries for a family of sample sets.

    Args:
        series: Label -> samples (e.g. one entry per receiving client).
        quantiles: Quantiles to extract from each.
    """
    out: dict[str, dict[float, float]] = {}
    for label, samples in series.items():
        cdf = Cdf.from_samples(samples)
        out[label] = {q: cdf.quantile(q) for q in quantiles}
    return out
