"""Command-line interface: run paper scenarios from the shell.

Single-scenario drivers (``python -m repro`` or the ``repro`` console
script)::

    python -m repro lag --platform zoom --host US-East --group US
    python -m repro endpoints --platform meet --sessions 10
    python -m repro qoe --platform webex --motion high -n 4
    python -m repro mobile --platform meet --scenario LM-View
    python -m repro dynamics --platform zoom --scenario handover

Each subcommand runs the corresponding experiment driver at a
configurable scale and prints a paper-style table.

Measurement campaigns (:mod:`repro.campaign`) -- parallel, persistent,
resumable grids over platform x scenario x network condition::

    # Execute a grid into a JSONL store, 2 cells at a time.
    python -m repro campaign run --store campaign.jsonl \\
        --platforms zoom meet --kinds lag qoe --workers 2

    # Interrupted?  Resume skips every completed cell.
    python -m repro campaign run --store campaign.jsonl \\
        --platforms zoom meet --kinds lag qoe --workers 2 --resume

    # Progress and paper-style report, from the store alone.
    python -m repro campaign status --store campaign.jsonl
    python -m repro campaign report --store campaign.jsonl -o report.md

    # Live status from another terminal while a run is in flight.
    python -m repro campaign watch --store campaign.jsonl

    # Compact a store after a crashy run: drop error records that a
    # retry's ok superseded, heal torn-tail crash debris.
    python -m repro campaign gc --store campaign.jsonl

Stores are pluggable: ``--store results.sqlite`` uses the indexed
sqlite backend, ``--store results.shards/`` a sharded directory;
``campaign watch`` and ``report`` work on any of them.  ``campaign
selfcheck`` proves the fabric's durability claim end to end (SIGKILL
mid-grid, resume, byte-compare cell content against an uninterrupted
run; plus a SIGKILL inside ``gc``'s compaction crash window proving
the rewrite atomic).  ``campaign chaos`` is its fault-injection twin:
a deterministic fault matrix (worker crashes, hangs, torn/failing
store appends, checkpoint corruption, crash loops, poison cells)
against every backend, asserting the surviving store is bit-identical
in cell content to a clean run.

``campaign run --smoke`` substitutes a seconds-long 2x2 grid (an
end-to-end check used by CI); ``--paper-scale`` runs the full
700-session protocol of the paper.  ``campaign run`` flags must match
the store's recorded spec when resuming -- the spec hash is verified.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.tables import TextTable
from .campaign.aggregate import report_from_store, status_table
from .campaign.grids import calibration_campaign, paper_campaign, smoke_campaign
from .campaign.runner import run_campaign
from .campaign.spec import KNOWN_KINDS, CampaignSpec
from .campaign.stores import BACKENDS, open_store
from .errors import ReproError
from .experiments.dynamics_study import DYNAMICS_SCENARIOS, run_dynamics_cell
from .experiments.endpoint_study import run_endpoint_study
from .experiments.lag_study import run_lag_scenario
from .experiments.mobile_study import MOBILE_SCENARIOS, run_mobile_scenario
from .experiments.qoe_study import EU_ROSTER, US_ROSTER, run_qoe_cell
from .experiments.scale import PAPER_SCALE, ExperimentScale
from .media.frames import FrameSpec

PLATFORM_CHOICES = ("zoom", "webex", "meet")


def _scale_from(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        sessions=args.sessions,
        lag_session_duration_s=max(6.0, args.duration),
        qoe_session_duration_s=max(5.0, args.duration),
        content_spec=FrameSpec(160, 120, 15),
        probe_count=args.probes,
        seed=args.seed,
    )


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--duration", type=float, default=12.0,
                        help="session duration in seconds")
    parser.add_argument("--probes", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", choices=PLATFORM_CHOICES, default="zoom")
    _add_scale_args(parser)


def cmd_lag(args: argparse.Namespace) -> int:
    result = run_lag_scenario(
        args.platform, args.host, args.group, scale=_scale_from(args)
    )
    table = TextTable(["Receiver", "Median lag (ms)", "Mean RTT (ms)"])
    for receiver in sorted(result.lags_ms):
        rtt = float(np.nanmean(result.rtts_ms[receiver]))
        table.add_row(
            [receiver, f"{result.median_lag_ms(receiver):.1f}", f"{rtt:.1f}"]
        )
    print(table.render())
    lo, hi = result.lag_range_ms()
    print(f"\nmedian-lag band: {lo:.1f} - {hi:.1f} ms "
          f"({args.platform}, host {args.host})")
    return 0


def cmd_endpoints(args: argparse.Namespace) -> int:
    result = run_endpoint_study(
        args.platform, scale=_scale_from(args), sessions=args.sessions
    )
    table = TextTable(["Client", "Distinct endpoints"])
    for client, endpoints in sorted(result.per_client_endpoints.items()):
        table.add_row([client, len(endpoints)])
    print(table.render())
    print(f"\nmean endpoints/client over {args.sessions} sessions: "
          f"{result.mean_endpoints_per_client():.1f}; "
          f"ports observed: {sorted(result.ports)}")
    return 0


def cmd_qoe(args: argparse.Namespace) -> int:
    roster = US_ROSTER if args.region == "US" else EU_ROSTER
    cell = run_qoe_cell(
        args.platform,
        args.motion,
        args.participants,
        roster=roster,
        scale=_scale_from(args),
        compute_vifp=not args.no_vifp,
    )
    table = TextTable(["Metric", "Mean", "Std"])
    table.add_row(["PSNR (dB)", f"{cell.psnr_mean:.1f}", f"{cell.psnr_std:.1f}"])
    table.add_row(["SSIM", f"{cell.ssim_mean:.3f}", f"{cell.ssim_std:.3f}"])
    if not args.no_vifp:
        table.add_row(
            ["VIFp", f"{cell.vifp_mean:.3f}", f"{cell.vifp_std:.3f}"]
        )
    table.add_row(["Upload (Mbps)", f"{cell.upload_mbps:.2f}", ""])
    table.add_row(["Download (Mbps)", f"{cell.download_mbps:.2f}", ""])
    print(table.render())
    return 0


def cmd_dynamics(args: argparse.Namespace) -> int:
    cell = run_dynamics_cell(
        args.platform,
        args.scenario,
        scale=_scale_from(args),
        motion=args.motion,
    )
    table = TextTable(
        ["Phase", "PSNR (dB)", "SSIM", "Down (Mbps)", "Freeze", "Drops"]
    )
    for report in cell.phases:
        table.add_row([
            report.name,
            f"{report.psnr_mean:.1f}",
            f"{report.ssim_mean:.3f}",
            f"{report.download_mbps:.2f}",
            f"{report.freeze_fraction:.2f}",
            report.shaper_dropped,
        ])
    print(table.render())
    print(f"\noverall: PSNR {cell.psnr_mean:.1f} dB, SSIM {cell.ssim_mean:.3f} "
          f"({args.platform}, {args.scenario} scenario, "
          f"{cell.sessions} sessions)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", args.only])
    if args.out:
        argv.extend(["--out", args.out])
    if args.check:
        argv.extend(["--check", args.check])
    argv.extend(["--tolerance", str(args.tolerance)])
    return bench_main(argv)


def cmd_mobile(args: argparse.Namespace) -> int:
    result = run_mobile_scenario(
        args.platform,
        args.scenario,
        scale=_scale_from(args),
        num_participants=args.participants,
    )
    table = TextTable(["Device", "Median CPU %", "Rate (Mbps)", "mAh"])
    for device, reading in result.readings.items():
        table.add_row(
            [device, f"{reading.median_cpu_pct:.0f}",
             f"{reading.mean_rate_mbps:.2f}",
             f"{reading.discharge_mah:.2f}"]
        )
    print(table.render())
    return 0


def _campaign_spec_from(args: argparse.Namespace):
    if args.spec_json:
        return CampaignSpec.load(args.spec_json)
    if args.calibration:
        return calibration_campaign(
            cells=args.calibration,
            spin_ms=args.spin_ms,
            master_seed=args.seed,
        )
    if args.smoke:
        return smoke_campaign(master_seed=args.seed)
    if args.paper_scale:
        scale = PAPER_SCALE.with_seed(args.seed)
    else:
        scale = _scale_from(args)
    return paper_campaign(
        platforms=args.platforms,
        kinds=args.kinds,
        scale=scale,
        master_seed=args.seed,
        name=args.name,
    )


def cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _campaign_spec_from(args)

    def progress(record, done, total):
        print(f"[{done}/{total}] {record.cell_id}: {record.status} "
              f"({record.duration_s:.2f}s)")
        if not record.ok:
            print(f"    {record.error}")

    try:
        summary = run_campaign(
            spec,
            args.store,
            workers=args.workers,
            resume=args.resume,
            progress=progress,
            executor=args.executor,
            shard_size=args.shard_size,
            max_attempts=args.max_attempts,
            cell_timeout_s=args.cell_timeout,
            durability=args.fsync_every,
            shards=args.shards,
            backoff_base_s=args.backoff_base,
            backoff_cap_s=args.backoff_cap,
            poison_threshold=args.poison_threshold,
            crashloop_threshold=args.crashloop_threshold,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"\ncampaign {spec.name!r}: {summary.total} cells, "
          f"{summary.skipped} resumed, {summary.executed} executed, "
          f"{summary.failed} failed in {summary.duration_s:.1f}s "
          f"(workers={args.workers}, store={args.store})")
    if summary.retried:
        print(f"fabric absorbed {summary.retried} retried cell attempts "
              "(worker crashes / timeouts)")
    if summary.quarantined:
        print(f"fabric quarantined {summary.quarantined} poison cell(s) "
              "-- see their fabric:poison error records")
    if summary.degraded:
        print(f"fabric degraded executor: {summary.degraded}")
    return 1 if summary.failed else 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
        spec = store.spec()
        records = store.cell_records()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"campaign {spec.name!r} (spec hash {spec.spec_hash()})")
    print(status_table(spec, records).render())
    return 0


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    from .campaign.fabric import watch_store

    try:
        snapshot = watch_store(
            args.store,
            interval_s=args.interval,
            once=args.once,
            report_path=args.report,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0 if (snapshot.complete and not snapshot.failed) else 1


def cmd_campaign_selfcheck(args: argparse.Namespace) -> int:
    import tempfile

    from .campaign.fabric import run_gc_selfcheck, run_selfcheck

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-selfcheck-")
    backends = args.backends or sorted(BACKENDS)
    failures = 0
    for backend in backends:
        try:
            result = run_selfcheck(
                backend,
                workdir=f"{workdir}/{backend}",
                cells=args.cells,
                spin_ms=args.spin_ms,
                kill_after=args.kill_after,
            )
        except ReproError as exc:
            print(f"selfcheck[{backend}]: error: {exc}", file=sys.stderr)
            failures += 1
            continue
        killed = "mid-grid" if result.killed_mid_grid else "after finish"
        if result.ok:
            print(f"selfcheck[{backend}]: PASS -- {result.total} cells, "
                  f"SIGKILL {killed} at {result.ok_at_kill} ok, "
                  "store content matches uninterrupted run")
        else:
            print(f"selfcheck[{backend}]: FAIL -- "
                  f"{len(result.mismatches)} mismatching cells "
                  f"(SIGKILL {killed} at {result.ok_at_kill} ok)")
            for mismatch in result.mismatches:
                print(f"  {mismatch}")
            failures += 1
    for backend in backends:
        try:
            gc_result = run_gc_selfcheck(
                backend, workdir=f"{workdir}/{backend}-gc"
            )
        except ReproError as exc:
            print(f"gc-selfcheck[{backend}]: error: {exc}", file=sys.stderr)
            failures += 1
            continue
        if gc_result.ok:
            print(f"gc-selfcheck[{backend}]: PASS -- gc SIGKILLed in its "
                  "crash window left the store untouched; clean re-gc "
                  f"dropped {gc_result.errors_dropped} superseded "
                  "error record(s)")
        else:
            print(f"gc-selfcheck[{backend}]: FAIL -- "
                  f"{len(gc_result.mismatches)} problem(s)")
            for mismatch in gc_result.mismatches:
                print(f"  {mismatch}")
            failures += 1
    return 1 if failures else 0


def cmd_campaign_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .campaign.fabric import run_chaos_matrix

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        results = run_chaos_matrix(
            workdir,
            backends=args.backends,
            faults=args.faults,
            quick=args.quick,
            chaos_seed=args.chaos_seed,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failures = 0
    for result in results:
        tag = f"chaos[{result.backend}/{result.fault}]"
        if result.ok:
            note = f" -- {result.detail}" if result.detail else ""
            print(f"{tag}: PASS -- fault fired {result.fired}x, survivor "
                  f"bit-identical to clean run "
                  f"({result.duration_s:.1f}s){note}")
        else:
            failures += 1
            print(f"{tag}: FAIL -- fault fired {result.fired}x, "
                  f"{len(result.mismatches)} problem(s)")
            for mismatch in result.mismatches:
                print(f"  {mismatch}")
    print(f"chaos matrix: {len(results) - failures}/{len(results)} "
          f"cases survived (workdir={workdir})")
    return 1 if failures else 0


def cmd_campaign_gc(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
        stats = store.gc()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"gc {args.store}: kept {stats.records_kept} records, "
          f"dropped {stats.errors_dropped} superseded error records, "
          f"healed {stats.debris_bytes} bytes of crash debris")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    try:
        report = report_from_store(args.store)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        report.save(args.output)
        print(f"wrote {args.output}")
    else:
        print(report.render())
    return 0


def _add_campaign_subcommands(
    subparsers: argparse._SubParsersAction,
) -> None:
    campaign = subparsers.add_parser(
        "campaign",
        help="parallel, persistent, resumable measurement campaigns",
    )
    actions = campaign.add_subparsers(dest="campaign_command", required=True)

    run = actions.add_parser("run", help="execute a campaign grid")
    _add_scale_args(run)
    run.add_argument("--store", default="campaign.jsonl",
                     help="result store path: *.jsonl, *.sqlite, or a "
                          "*.shards/ directory (scheme: prefixes work too)")
    run.add_argument("--platforms", nargs="+", choices=PLATFORM_CHOICES,
                     default=list(PLATFORM_CHOICES))
    run.add_argument("--kinds", nargs="+", choices=KNOWN_KINDS,
                     default=None, help="restrict scenario kinds")
    run.add_argument("--workers", type=int, default=1,
                     help="parallel worker processes (1 = in-process)")
    run.add_argument("--resume", action="store_true",
                     help="extend an existing store, skipping "
                          "completed cells")
    run.add_argument("--name", default="paper-protocol")
    run.add_argument("--smoke", action="store_true",
                     help="tiny 2-platform lag+qoe grid (seconds)")
    run.add_argument("--paper-scale", action="store_true",
                     help="full 700-session protocol scale")
    run.add_argument("--spec-json", default=None, metavar="PATH",
                     help="run a spec saved as JSON instead of building "
                          "one from flags")
    run.add_argument("--calibration", type=int, default=0, metavar="CELLS",
                     help="run a no-op calibration grid of this many cells")
    run.add_argument("--spin-ms", type=float, default=0.0,
                     help="busy-wait per calibration cell (ms)")
    run.add_argument("--executor", default="auto",
                     choices=("auto", "inline", "pool", "spawn"),
                     help="auto: inline for 1 worker, pool otherwise; "
                          "spawn: owned local worker processes")
    run.add_argument("--shard-size", type=int, default=None,
                     help="cells per dispatched work unit")
    run.add_argument("--max-attempts", type=int, default=2,
                     help="attempts per cell before a recorded error")
    run.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock budget (kills the worker)")
    run.add_argument("--fsync-every", type=int, default=1, metavar="N",
                     help="fsync the store every N records "
                          "(0 = only on close)")
    run.add_argument("--shards", type=int, default=None,
                     help="shard count for a new sharded-directory store")
    run.add_argument("--backoff-base", type=float, default=0.05,
                     metavar="SECONDS",
                     help="first-retry backoff scale (exponential, "
                          "deterministically jittered)")
    run.add_argument("--backoff-cap", type=float, default=2.0,
                     metavar="SECONDS",
                     help="upper bound the retry backoff saturates at")
    run.add_argument("--poison-threshold", type=int, default=3,
                     help="worker deaths attributed to one cell before "
                          "it is quarantined")
    run.add_argument("--crashloop-threshold", type=int, default=5,
                     help="consecutive no-progress worker-death polls "
                          "before the executor degrades to inline")
    run.set_defaults(func=cmd_campaign_run)

    status = actions.add_parser("status", help="progress of a store")
    status.add_argument("--store", default="campaign.jsonl")
    status.set_defaults(func=cmd_campaign_status)

    watch = actions.add_parser(
        "watch", help="live status: tail a store another process writes"
    )
    watch.add_argument("--store", default="campaign.jsonl")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="seconds between polls")
    watch.add_argument("--once", action="store_true",
                       help="print one snapshot and exit")
    watch.add_argument("--report", default=None, metavar="PATH",
                       help="keep a Markdown report refreshed here")
    watch.set_defaults(func=cmd_campaign_watch)

    gc = actions.add_parser(
        "gc",
        help="compact a store: drop superseded error records and "
             "heal torn-tail crash debris",
    )
    gc.add_argument("--store", default="campaign.jsonl")
    gc.set_defaults(func=cmd_campaign_gc)

    report = actions.add_parser(
        "report", help="paper-style report from a store"
    )
    report.add_argument("--store", default="campaign.jsonl")
    report.add_argument("-o", "--output", default=None,
                        help="write Markdown here instead of stdout")
    report.set_defaults(func=cmd_campaign_report)

    selfcheck = actions.add_parser(
        "selfcheck",
        help="kill/resume equivalence proof: SIGKILL a run mid-grid, "
             "resume, assert the store matches an uninterrupted run",
    )
    selfcheck.add_argument("--backends", nargs="+", default=None,
                           choices=sorted(BACKENDS),
                           help="store backends to prove (default: all)")
    selfcheck.add_argument("--workdir", default=None,
                           help="scratch directory (default: a tempdir)")
    selfcheck.add_argument("--cells", type=int, default=14)
    selfcheck.add_argument("--spin-ms", type=float, default=40.0)
    selfcheck.add_argument("--kill-after", type=int, default=4,
                           help="completed cells before the SIGKILL")
    selfcheck.set_defaults(func=cmd_campaign_selfcheck)

    chaos = actions.add_parser(
        "chaos",
        help="deterministic fault matrix: inject every fault class "
             "(crashes, hangs, store I/O errors, checkpoint corruption, "
             "crash loops, poison cells) against every store backend and "
             "assert the surviving store is bit-identical in cell "
             "content to a clean run",
    )
    chaos.add_argument("--backends", nargs="+", default=None,
                       choices=sorted(BACKENDS),
                       help="store backends to torment (default: all)")
    chaos.add_argument("--faults", nargs="+", default=None,
                       help="fault classes to inject (default: all)")
    chaos.add_argument("--workdir", default=None,
                       help="scratch directory (default: a tempdir)")
    chaos.add_argument("--quick", action="store_true",
                       help="small grid and short delays (CI profile)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="seed folded into fault target selection "
                            "(recorded in every plan for reproduction)")
    chaos.set_defaults(func=cmd_campaign_chaos)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Can You See Me Now?' (IMC 2021) scenarios.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lag = subparsers.add_parser("lag", help="streaming-lag study (Figs. 4-11)")
    _add_common(lag)
    lag.add_argument("--host", default="US-East")
    lag.add_argument("--group", choices=("US", "Europe"), default="US")
    lag.set_defaults(func=cmd_lag)

    endpoints = subparsers.add_parser(
        "endpoints", help="endpoint architecture study (Fig. 3)"
    )
    _add_common(endpoints)
    endpoints.set_defaults(func=cmd_endpoints)

    qoe = subparsers.add_parser("qoe", help="video QoE cell (Figs. 12/16)")
    _add_common(qoe)
    qoe.add_argument("--motion", choices=("low", "high"), default="high")
    qoe.add_argument("-n", "--participants", type=int, default=3)
    qoe.add_argument("--region", choices=("US", "EU"), default="US")
    qoe.add_argument("--no-vifp", action="store_true")
    qoe.set_defaults(func=cmd_qoe)

    dynamics = subparsers.add_parser(
        "dynamics",
        help="time-varying network scenario, reported per phase",
    )
    _add_common(dynamics)
    dynamics.add_argument(
        "--scenario", choices=DYNAMICS_SCENARIOS, default="ramp"
    )
    dynamics.add_argument("--motion", choices=("low", "high"), default="high")
    dynamics.set_defaults(func=cmd_dynamics)

    mobile = subparsers.add_parser(
        "mobile", help="Android resource scenario (Fig. 19)"
    )
    _add_common(mobile)
    mobile.add_argument(
        "--scenario", choices=MOBILE_SCENARIOS + ("HM-View",), default="LM"
    )
    mobile.add_argument("-n", "--participants", type=int, default=3)
    mobile.set_defaults(func=cmd_mobile)

    from .bench import BENCHMARKS, CHECK_TOLERANCE

    bench = subparsers.add_parser(
        "bench",
        help="tracked performance benchmarks (writes BENCH_*.json)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="small workloads (CI profile)")
    bench.add_argument("--only", choices=sorted(BENCHMARKS), default=None)
    bench.add_argument("-o", "--out", default=None,
                       help="write the JSON payload here")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="fail if the packet path regressed vs a "
                            "committed BENCH_*.json")
    bench.add_argument("--tolerance", type=float, default=CHECK_TOLERANCE)
    bench.set_defaults(func=cmd_bench)

    _add_campaign_subcommands(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
