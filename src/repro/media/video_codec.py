"""A real block-DCT video codec with rate control.

The commercial clients' codecs sit behind end-to-end encryption, so the
paper treats them as black boxes and observes only their rate/quality
behaviour.  To reproduce that behaviour mechanistically we implement an
actual codec -- 8x8 block DCT, JPEG-style frequency-weighted uniform
quantisation, inter-frame prediction from the previously decoded frame,
periodic keyframes, and a multiplicative rate controller driving the
quantiser toward a target bitrate.

This gives the reproduction the property that matters: **quality is
computed, not assumed**.  High-motion content has large inter-frame
residuals, so at a fixed bitrate the controller must coarsen the
quantiser and PSNR/SSIM/VIFp genuinely drop (the paper's Finding-3);
tighter bandwidth caps force lower encode rates and the Figure 17
curves emerge from the same mechanics.

Encoded frames store quantised coefficients sparsely (most are zero
after quantisation) and are fragmented for transport by
:mod:`repro.media.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import fft as sp_fft

from ..errors import CodecError, ConfigurationError
from .frames import FrameSpec

#: Side of the transform block.
BLOCK = 8

#: Inter blocks whose residual peak is below this luma value are
#: skipped outright (see the deadzone note in ``VideoCodec.encode``).
SKIP_DEADZONE_LUMA = 1.25

#: Baseline JPEG luminance quantisation weights (normalised so the DC
#: weight is 1.0); shapes how quantisation error distributes over
#: frequencies, which is what makes SSIM/VIFp respond realistically.
_JPEG_LUMA = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
QUANT_WEIGHTS = _JPEG_LUMA / _JPEG_LUMA[0, 0]


@dataclass(frozen=True)
class VideoCodecConfig:
    """Tuning knobs of the codec.

    Attributes:
        gop_size: Distance between keyframes (intra-coded frames).
        keyframe_boost: Bit-budget multiplier granted to keyframes.
        q_min / q_max: Quantiser step bounds.
        initial_q: Starting quantiser step.
        adaptation_gain: Exponent damping of the rate-control update
            (0 = frozen quantiser, 1 = full proportional correction).
    """

    gop_size: int = 30
    keyframe_boost: float = 4.0
    q_min: float = 0.05
    q_max: float = 512.0
    initial_q: float = 8.0
    adaptation_gain: float = 0.5

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ConfigurationError(f"gop_size must be >= 1, got {self.gop_size}")
        if not 0.0 < self.q_min <= self.initial_q <= self.q_max:
            raise ConfigurationError("need 0 < q_min <= initial_q <= q_max")
        if not 0.0 <= self.adaptation_gain <= 1.0:
            raise ConfigurationError("adaptation_gain must be in [0, 1]")
        if self.keyframe_boost < 1.0:
            raise ConfigurationError("keyframe_boost must be >= 1")


@dataclass
class EncodedFrame:
    """One compressed frame.

    Attributes:
        index: Frame index in the stream (0-based, monotonic).
        keyframe: True for intra-coded frames.
        q_step: Quantiser step used.
        shape: (height, width) of the padded coefficient plane.
        crop: Original (height, width) before block padding.
        indices: Flat positions of non-zero quantised coefficients.
        values: The non-zero quantised levels.
        size_bytes: Estimated entropy-coded size (drives packet sizes).
    """

    index: int
    keyframe: bool
    q_step: float
    shape: tuple[int, int]
    crop: tuple[int, int]
    indices: np.ndarray
    values: np.ndarray
    size_bytes: int


def _pad_to_blocks(frame: np.ndarray) -> np.ndarray:
    """Edge-pad a frame so both dimensions are multiples of BLOCK."""
    height, width = frame.shape
    pad_h = (-height) % BLOCK
    pad_w = (-width) % BLOCK
    if pad_h == 0 and pad_w == 0:
        return frame
    return np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")


def _block_dct(plane: np.ndarray) -> np.ndarray:
    """Forward 8x8 block DCT of a (H, W) plane; H, W multiples of 8."""
    height, width = plane.shape
    blocks = plane.reshape(height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    blocks = blocks.transpose(0, 2, 1, 3)
    coeffs = sp_fft.dctn(blocks, axes=(-2, -1), norm="ortho")
    return coeffs

def _block_idct(coeffs: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`_block_dct`; returns a (H, W) plane."""
    blocks = sp_fft.idctn(coeffs, axes=(-2, -1), norm="ortho")
    height, width = shape
    plane = blocks.transpose(0, 2, 1, 3).reshape(height, width)
    return plane


def _estimate_bits(values: np.ndarray, num_blocks: int, occupied_blocks: int) -> int:
    """Entropy-coding size proxy for the quantised levels.

    Each non-zero level costs a sign bit, a run-length escape and a
    magnitude code growing with log2(|level|).  Every block carries a
    one-bit skip flag; blocks with any coded coefficient additionally
    pay a small header (DC prediction, end-of-block).  Skipped blocks
    are nearly free, so a static scene compresses to almost nothing --
    which is what lets the Figure 2 lag detector separate blank frames
    (small packets) from flash frames (bursts of big packets).
    """
    if values.size:
        magnitudes = np.abs(values.astype(np.float64))
        per_coeff = 3.0 + 2.0 * np.log2(1.0 + magnitudes)
        coeff_bits = float(per_coeff.sum())
    else:
        coeff_bits = 0.0
    overhead_bits = 1.0 * num_blocks + 9.0 * occupied_blocks + 256.0
    return int(np.ceil((coeff_bits + overhead_bits) / 8.0))


class RateController:
    """Multiplicative quantiser adaptation toward a bit budget.

    After each frame the quantiser step is scaled by
    ``(actual_bits / target_bits) ** gain`` and clamped to the config's
    bounds -- the classic "buffer-based" controller shape used by
    real-time encoders.
    """

    def __init__(self, config: VideoCodecConfig, target_bps: float, fps: float) -> None:
        if target_bps <= 0 or fps <= 0:
            raise ConfigurationError("target_bps and fps must be positive")
        self._config = config
        self._fps = fps
        self._q = config.initial_q
        self.set_target(target_bps)

    @property
    def q_step(self) -> float:
        """Current quantiser step."""
        return self._q

    @property
    def target_bps(self) -> float:
        """Current bitrate target."""
        return self._target_bps

    def set_target(self, target_bps: float) -> None:
        """Change the bitrate target (platform rate-control decisions)."""
        if target_bps <= 0:
            raise ConfigurationError(f"target_bps must be positive: {target_bps}")
        self._target_bps = float(target_bps)

    def frame_budget_bits(self, keyframe: bool) -> float:
        """Bit budget for the next frame.

        Budgets are normalised over a GOP so the *average* rate equals
        the target even though keyframes get a boosted share: one
        boosted keyframe plus ``gop-1`` inter frames must spend exactly
        ``gop`` frame-periods of bits.
        """
        gop = self._config.gop_size
        boost = self._config.keyframe_boost
        per_frame = self._target_bps / self._fps
        inter_share = gop / (gop - 1.0 + boost) if gop > 1 else 1.0
        base = per_frame * inter_share
        return base * (boost if keyframe else 1.0)

    def update(self, actual_bits: float, keyframe: bool) -> None:
        """Adapt the quantiser from the realised frame size."""
        budget = self.frame_budget_bits(keyframe)
        ratio = max(0.1, min(10.0, actual_bits / max(budget, 1.0)))
        self._q *= ratio ** self._config.adaptation_gain
        self._q = float(np.clip(self._q, self._config.q_min, self._config.q_max))


class VideoCodec:
    """Encoder/decoder pair over a shared configuration.

    The encoder maintains its own decoded reference (as real encoders
    do) so encoder and decoder stay in sync as long as no frames are
    lost.  The decoder freezes on reference gaps and resynchronises at
    the next keyframe, reproducing the stall-then-recover behaviour the
    paper observes on Webex under tight caps.
    """

    def __init__(
        self,
        spec: FrameSpec,
        config: Optional[VideoCodecConfig] = None,
        target_bps: float = 1_000_000.0,
    ) -> None:
        self.spec = spec
        self.config = config if config is not None else VideoCodecConfig()
        self.rate_controller = RateController(self.config, target_bps, spec.fps)
        self._reference: Optional[np.ndarray] = None
        self._frame_index = 0
        self._force_keyframe = False

    def request_keyframe(self) -> None:
        """Force the next encoded frame to be intra-coded.

        The sender calls this on a PLI-style feedback message, letting
        receivers resynchronise after loss within roughly one RTT
        instead of waiting out the GOP.
        """
        self._force_keyframe = True

    # ----------------------------------------------------------------- #
    # Encoding.
    # ----------------------------------------------------------------- #

    def encode(self, frame: np.ndarray) -> EncodedFrame:
        """Encode the next frame of the stream."""
        if frame.shape != self.spec.shape:
            raise CodecError(
                f"frame shape {frame.shape} does not match spec {self.spec.shape}"
            )
        index = self._frame_index
        keyframe = (
            index % self.config.gop_size == 0
            or self._reference is None
            or self._force_keyframe
        )
        self._force_keyframe = False
        plane = _pad_to_blocks(frame.astype(np.float64))
        if keyframe:
            residual = plane - 128.0
        else:
            residual = plane - self._reference

        coeffs = _block_dct(residual)
        q_step = self.rate_controller.q_step
        divisor = q_step * QUANT_WEIGHTS
        levels = np.round(coeffs / divisor).astype(np.int32)

        # Skip deadzone: blocks whose residual is within a luma step of
        # zero carry no signal, only quantisation noise from earlier
        # frames; coding them would make the encoder chase its own
        # reconstruction error forever on static content.
        if not keyframe:
            block_peak = np.abs(residual).reshape(
                residual.shape[0] // BLOCK, BLOCK,
                residual.shape[1] // BLOCK, BLOCK,
            ).transpose(0, 2, 1, 3).reshape(levels.shape[0], levels.shape[1], -1
            ).max(axis=-1)
            levels[block_peak < SKIP_DEADZONE_LUMA] = 0

        flat = levels.reshape(-1)
        nonzero = np.nonzero(flat)[0]
        values = flat[nonzero].astype(np.int16)
        num_blocks = levels.shape[0] * levels.shape[1]
        occupied = int(
            levels.reshape(num_blocks, BLOCK * BLOCK).any(axis=-1).sum()
        )
        size_bytes = _estimate_bits(values, num_blocks, occupied)

        encoded = EncodedFrame(
            index=index,
            keyframe=keyframe,
            q_step=q_step,
            shape=plane.shape,
            crop=frame.shape,
            indices=nonzero.astype(np.int32),
            values=values,
            size_bytes=size_bytes,
        )

        # Reconstruct exactly as the decoder will, to keep references
        # in sync (closed-loop prediction).
        self._reference = self._reconstruct_plane(encoded, self._reference)
        self._frame_index += 1
        self.rate_controller.update(size_bytes * 8.0, keyframe)
        return encoded

    def _reconstruct_plane(
        self, encoded: EncodedFrame, reference: Optional[np.ndarray]
    ) -> np.ndarray:
        blocks_shape = (
            encoded.shape[0] // BLOCK,
            encoded.shape[1] // BLOCK,
            BLOCK,
            BLOCK,
        )
        flat = np.zeros(int(np.prod(blocks_shape)), dtype=np.float64)
        flat[encoded.indices] = encoded.values.astype(np.float64)
        levels = flat.reshape(blocks_shape)
        coeffs = levels * (encoded.q_step * QUANT_WEIGHTS)
        residual = _block_idct(coeffs, encoded.shape)
        if encoded.keyframe:
            plane = residual + 128.0
        else:
            if reference is None:
                raise CodecError("inter frame without a reference")
            plane = residual + reference
        return np.clip(plane, 0.0, 255.0)


class VideoDecoder:
    """Stateful decoder: freezes on gaps, resyncs on keyframes.

    Attributes:
        frames_decoded: Successfully decoded frame count.
        frames_frozen: Frames rendered as a freeze (gap before resync).
    """

    def __init__(self, spec: FrameSpec) -> None:
        self.spec = spec
        self._reference: Optional[np.ndarray] = None
        self._next_expected = 0
        self._awaiting_keyframe = False
        self.frames_decoded = 0
        self.frames_frozen = 0

    @property
    def last_frame(self) -> Optional[np.ndarray]:
        """The most recently rendered frame (uint8), if any."""
        if self._reference is None:
            return None
        height, width = self.spec.shape
        return np.clip(self._reference[:height, :width], 0, 255).astype(np.uint8)

    def decode(self, encoded: EncodedFrame) -> Optional[np.ndarray]:
        """Decode one frame; returns the rendered uint8 frame.

        Returns the frozen previous frame (or ``None`` before any
        output) when the stream has a gap and ``encoded`` is not a
        keyframe -- rendering continues but the new data is unusable.
        """
        gap = encoded.index != self._next_expected
        if gap and not encoded.keyframe:
            self._awaiting_keyframe = True
        if self._awaiting_keyframe and not encoded.keyframe:
            self._next_expected = encoded.index + 1
            self.frames_frozen += 1
            return self.last_frame
        if not encoded.keyframe and self._reference is None:
            self._next_expected = encoded.index + 1
            self.frames_frozen += 1
            return None

        codec = VideoCodec(self.spec)  # geometry helper; no state used
        self._reference = codec._reconstruct_plane(
            encoded, self._reference if not encoded.keyframe else None
        )
        self._awaiting_keyframe = False
        self._next_expected = encoded.index + 1
        self.frames_decoded += 1
        return self.last_frame

    def mark_lost(self, frame_index: int) -> Optional[np.ndarray]:
        """Record that ``frame_index`` was lost in transport.

        The decoder renders a freeze and will wait for the next
        keyframe before trusting inter frames again.
        """
        if frame_index >= self._next_expected:
            self._next_expected = frame_index + 1
        self._awaiting_keyframe = True
        self.frames_frozen += 1
        return self.last_frame
