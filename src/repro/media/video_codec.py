"""A real block-DCT video codec with rate control.

The commercial clients' codecs sit behind end-to-end encryption, so the
paper treats them as black boxes and observes only their rate/quality
behaviour.  To reproduce that behaviour mechanistically we implement an
actual codec -- 8x8 block DCT, JPEG-style frequency-weighted uniform
quantisation, inter-frame prediction from the previously decoded frame,
periodic keyframes, and a multiplicative rate controller driving the
quantiser toward a target bitrate.

This gives the reproduction the property that matters: **quality is
computed, not assumed**.  High-motion content has large inter-frame
residuals, so at a fixed bitrate the controller must coarsen the
quantiser and PSNR/SSIM/VIFp genuinely drop (the paper's Finding-3);
tighter bandwidth caps force lower encode rates and the Figure 17
curves emerge from the same mechanics.

Encoded frames store quantised coefficients sparsely (most are zero
after quantisation) and are fragmented for transport by
:mod:`repro.media.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy import fft as sp_fft

from ..errors import CodecError, ConfigurationError
from .batching import batching_enabled
from .frames import FrameSpec

#: Side of the transform block.
BLOCK = 8

#: Inter blocks whose residual peak is below this luma value are
#: skipped outright (see the deadzone note in ``VideoCodec.encode``).
SKIP_DEADZONE_LUMA = 1.25

#: Baseline JPEG luminance quantisation weights (normalised so the DC
#: weight is 1.0); shapes how quantisation error distributes over
#: frequencies, which is what makes SSIM/VIFp respond realistically.
_JPEG_LUMA = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
QUANT_WEIGHTS = _JPEG_LUMA / _JPEG_LUMA[0, 0]

#: Target bytes of one float64 frame block in batched transforms --
#: stacked DCT/IDCT temporaries must stay cache-resident (full-stack
#: passes are DRAM-bound and can lose to the per-frame loop), the same
#: blocking the resize pipeline uses.
_BATCH_BLOCK_BYTES = 2 << 20


def _batch_step(plane_shape: tuple[int, int]) -> int:
    """Frames per cache-sized block for a padded plane geometry."""
    return max(1, _BATCH_BLOCK_BYTES // (plane_shape[0] * plane_shape[1] * 8))


@dataclass(frozen=True)
class VideoCodecConfig:
    """Tuning knobs of the codec.

    Attributes:
        gop_size: Distance between keyframes (intra-coded frames).
        keyframe_boost: Bit-budget multiplier granted to keyframes.
        q_min / q_max: Quantiser step bounds.
        initial_q: Starting quantiser step.
        adaptation_gain: Exponent damping of the rate-control update
            (0 = frozen quantiser, 1 = full proportional correction).
    """

    gop_size: int = 30
    keyframe_boost: float = 4.0
    q_min: float = 0.05
    q_max: float = 512.0
    initial_q: float = 8.0
    adaptation_gain: float = 0.5

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ConfigurationError(f"gop_size must be >= 1, got {self.gop_size}")
        if not 0.0 < self.q_min <= self.initial_q <= self.q_max:
            raise ConfigurationError("need 0 < q_min <= initial_q <= q_max")
        if not 0.0 <= self.adaptation_gain <= 1.0:
            raise ConfigurationError("adaptation_gain must be in [0, 1]")
        if self.keyframe_boost < 1.0:
            raise ConfigurationError("keyframe_boost must be >= 1")


@dataclass
class EncodedFrame:
    """One compressed frame.

    Attributes:
        index: Frame index in the stream (0-based, monotonic).
        keyframe: True for intra-coded frames.
        q_step: Quantiser step used.
        shape: (height, width) of the padded coefficient plane.
        crop: Original (height, width) before block padding.
        indices: Flat positions of non-zero quantised coefficients.
        values: The non-zero quantised levels.
        size_bytes: Estimated entropy-coded size (drives packet sizes).
    """

    index: int
    keyframe: bool
    q_step: float
    shape: tuple[int, int]
    crop: tuple[int, int]
    indices: np.ndarray
    values: np.ndarray
    size_bytes: int


def _pad_to_blocks(frame: np.ndarray) -> np.ndarray:
    """Edge-pad so the trailing two dimensions are multiples of BLOCK.

    Accepts a single ``(H, W)`` plane or a stack with any leading batch
    dimensions (``(F, H, W)`` from :meth:`VideoCodec.encode_batch`);
    stacked padding replicates exactly the per-frame edge pad.
    """
    height, width = frame.shape[-2:]
    pad_h = (-height) % BLOCK
    pad_w = (-width) % BLOCK
    if pad_h == 0 and pad_w == 0:
        return frame
    pad = [(0, 0)] * (frame.ndim - 2) + [(0, pad_h), (0, pad_w)]
    return np.pad(frame, pad, mode="edge")


def _block_dct(plane: np.ndarray) -> np.ndarray:
    """Forward 8x8 block DCT of a ``(..., H, W)`` plane (stack).

    Returns ``(..., by, bx, 8, 8)`` coefficients.  A stacked call runs
    one transform over every frame's blocks; pocketfft applies the same
    1-D kernels per innermost slab, so the stacked coefficients are
    bit-identical to transforming each frame alone (the codec batch
    equivalence suite pins this).
    """
    height, width = plane.shape[-2:]
    blocks = plane.reshape(
        plane.shape[:-2] + (height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    )
    blocks = np.swapaxes(blocks, -3, -2)
    coeffs = sp_fft.dctn(blocks, axes=(-2, -1), norm="ortho")
    return coeffs

def _block_idct(coeffs: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`_block_dct`; returns a ``(..., H, W)`` plane."""
    blocks = sp_fft.idctn(coeffs, axes=(-2, -1), norm="ortho")
    height, width = shape
    blocks = np.swapaxes(blocks, -3, -2)
    return blocks.reshape(blocks.shape[:-4] + (height, width))


def _skip_deadzone_mask(residual: np.ndarray) -> np.ndarray:
    """Blocks whose residual peak sits inside the skip deadzone.

    ``(..., H, W)`` residuals -> ``(..., by, bx)`` booleans.  The max
    runs straight over the ``(by, 8, bx, 8)`` view (no transpose, no
    flattened copy); a maximum is order-free, so the mask is exact.
    """
    height, width = residual.shape[-2:]
    peaks = np.abs(residual).reshape(
        residual.shape[:-2] + (height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    ).max(axis=(-3, -1))
    return peaks < SKIP_DEADZONE_LUMA


def _estimate_bits(values: np.ndarray, num_blocks: int, occupied_blocks: int) -> int:
    """Entropy-coding size proxy for the quantised levels.

    Each non-zero level costs a sign bit, a run-length escape and a
    magnitude code growing with log2(|level|).  Every block carries a
    one-bit skip flag; blocks with any coded coefficient additionally
    pay a small header (DC prediction, end-of-block).  Skipped blocks
    are nearly free, so a static scene compresses to almost nothing --
    which is what lets the Figure 2 lag detector separate blank frames
    (small packets) from flash frames (bursts of big packets).

    Deliberately per-frame even in batched encodes: each frame's size
    feeds the rate controller before the next frame quantises, and the
    compressed-magnitude sum is ragged across frames, so a cross-frame
    sizer can never be used without changing the quantiser walk.
    """
    if values.size:
        magnitudes = np.abs(values.astype(np.float64))
        per_coeff = 3.0 + 2.0 * np.log2(1.0 + magnitudes)
        coeff_bits = float(per_coeff.sum())
    else:
        coeff_bits = 0.0
    overhead_bits = 1.0 * num_blocks + 9.0 * occupied_blocks + 256.0
    return int(np.ceil((coeff_bits + overhead_bits) / 8.0))


def _levels_from_sparse(encoded: "EncodedFrame") -> np.ndarray:
    """Densify one frame's sparse levels to ``(by, bx, 8, 8)``."""
    blocks_shape = (
        encoded.shape[0] // BLOCK,
        encoded.shape[1] // BLOCK,
        BLOCK,
        BLOCK,
    )
    flat = np.zeros(int(np.prod(blocks_shape)), dtype=np.float64)
    flat[encoded.indices] = encoded.values.astype(np.float64)
    return flat.reshape(blocks_shape)


def _block_grid(plane: np.ndarray) -> np.ndarray:
    """A ``(by, bx, 8, 8)`` view of a ``(H, W)`` plane (no copy)."""
    height, width = plane.shape
    return plane.reshape(
        height // BLOCK, BLOCK, width // BLOCK, BLOCK
    ).swapaxes(1, 2)


def _residual_plane_sparse(
    levels: np.ndarray, q_step: np.float64, shape: tuple[int, int]
) -> np.ndarray:
    """Inverse-transform only the occupied blocks of one frame.

    Empty blocks inverse-transform to exact zeros, so gathering the
    occupied blocks into one stacked IDCT and leaving the rest as a
    zero plane reproduces the full transform's residual.  Static
    content under rate caps leaves most blocks empty, which is where
    the encode/decode loops spend their transform time.
    """
    occupied = levels.any(axis=(-2, -1))
    residual = np.zeros(shape, dtype=np.float64)
    if occupied.any():
        coeffs = levels[occupied] * (q_step * QUANT_WEIGHTS)
        blocks = sp_fft.idctn(coeffs, axes=(-2, -1), norm="ortho")
        _block_grid(residual)[occupied] = blocks
    return residual


def _apply_prediction(
    residual: np.ndarray, keyframe: bool, reference: Optional[np.ndarray]
) -> np.ndarray:
    """Add the prediction basis and clamp to the pixel range.

    Works in place on ``residual`` (always a fresh buffer from
    :func:`_block_idct`, or a batch row consumed exactly once); the
    in-place add/clip compute the same elementwise values as the
    out-of-place originals.
    """
    if keyframe:
        np.add(residual, 128.0, out=residual)
    else:
        if reference is None:
            raise CodecError("inter frame without a reference")
        np.add(residual, reference, out=residual)
    return np.clip(residual, 0.0, 255.0, out=residual)


def _reconstruct_from_sparse(
    encoded: "EncodedFrame", reference: Optional[np.ndarray]
) -> np.ndarray:
    """Reconstruct one frame's plane from its sparse coefficients."""
    if encoded.values.size == 0 and not encoded.keyframe and reference is not None:
        # Fully-skipped inter frame: the residual IDCT is exactly zero
        # and the reference is already clamped, so the reconstruction
        # is the reference unchanged.  Static scenes under caps hit
        # this on a quarter of their frames.
        return reference
    residual = _residual_plane_sparse(
        _levels_from_sparse(encoded), np.float64(encoded.q_step), encoded.shape
    )
    return _apply_prediction(residual, encoded.keyframe, reference)


class RateController:
    """Multiplicative quantiser adaptation toward a bit budget.

    After each frame the quantiser step is scaled by
    ``(actual_bits / target_bits) ** gain`` and clamped to the config's
    bounds -- the classic "buffer-based" controller shape used by
    real-time encoders.
    """

    def __init__(self, config: VideoCodecConfig, target_bps: float, fps: float) -> None:
        if target_bps <= 0 or fps <= 0:
            raise ConfigurationError("target_bps and fps must be positive")
        self._config = config
        self._fps = fps
        self._q = config.initial_q
        self.set_target(target_bps)

    @property
    def q_step(self) -> float:
        """Current quantiser step."""
        return self._q

    @property
    def target_bps(self) -> float:
        """Current bitrate target."""
        return self._target_bps

    def set_target(self, target_bps: float) -> None:
        """Change the bitrate target (platform rate-control decisions)."""
        if target_bps <= 0:
            raise ConfigurationError(f"target_bps must be positive: {target_bps}")
        self._target_bps = float(target_bps)

    def frame_budget_bits(self, keyframe: bool) -> float:
        """Bit budget for the next frame.

        Budgets are normalised over a GOP so the *average* rate equals
        the target even though keyframes get a boosted share: one
        boosted keyframe plus ``gop-1`` inter frames must spend exactly
        ``gop`` frame-periods of bits.
        """
        gop = self._config.gop_size
        boost = self._config.keyframe_boost
        per_frame = self._target_bps / self._fps
        inter_share = gop / (gop - 1.0 + boost) if gop > 1 else 1.0
        base = per_frame * inter_share
        return base * (boost if keyframe else 1.0)

    def update(self, actual_bits: float, keyframe: bool) -> None:
        """Adapt the quantiser from the realised frame size."""
        budget = self.frame_budget_bits(keyframe)
        ratio = max(0.1, min(10.0, actual_bits / max(budget, 1.0)))
        self._q *= ratio ** self._config.adaptation_gain
        self._q = float(np.clip(self._q, self._config.q_min, self._config.q_max))


class VideoCodec:
    """Encoder/decoder pair over a shared configuration.

    The encoder maintains its own decoded reference (as real encoders
    do) so encoder and decoder stay in sync as long as no frames are
    lost.  The decoder freezes on reference gaps and resynchronises at
    the next keyframe, reproducing the stall-then-recover behaviour the
    paper observes on Webex under tight caps.
    """

    def __init__(
        self,
        spec: FrameSpec,
        config: Optional[VideoCodecConfig] = None,
        target_bps: float = 1_000_000.0,
        batch: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.config = config if config is not None else VideoCodecConfig()
        self.rate_controller = RateController(self.config, target_bps, spec.fps)
        self.batch = batching_enabled(batch)
        self._reference: Optional[np.ndarray] = None
        self._frame_index = 0
        self._force_keyframe = False

    def request_keyframe(self) -> None:
        """Force the next encoded frame to be intra-coded.

        The sender calls this on a PLI-style feedback message, letting
        receivers resynchronise after loss within roughly one RTT
        instead of waiting out the GOP.
        """
        self._force_keyframe = True

    # ----------------------------------------------------------------- #
    # Encoding.
    # ----------------------------------------------------------------- #

    def _next_is_keyframe(self) -> bool:
        return (
            self._frame_index % self.config.gop_size == 0
            or self._reference is None
            or self._force_keyframe
        )

    def encode(self, frame: np.ndarray) -> EncodedFrame:
        """Encode the next frame of the stream."""
        if frame.shape != self.spec.shape:
            raise CodecError(
                f"frame shape {frame.shape} does not match spec {self.spec.shape}"
            )
        keyframe = self._next_is_keyframe()
        self._force_keyframe = False
        plane = _pad_to_blocks(frame.astype(np.float64))
        return self._encode_plane(plane, frame.shape, keyframe)

    def encode_batch(
        self, frames: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> List[EncodedFrame]:
        """Encode a burst of consecutive frames in one batched pass.

        Multi-frame bursts (recorder finalize, QoE re-encode, a
        streamer catching up after an outage) pad and convert the whole
        ``(F, H, W)`` stack once and run every keyframe's forward DCT
        in a single stacked transform -- keyframe residuals are
        ``plane - 128`` and never touch the reference, and the keyframe
        schedule (GOP cadence, a pending :meth:`request_keyframe`, a
        missing reference) is known before any frame is coded.  Inter
        frames stay sequential because closed-loop prediction makes
        each residual depend on the previous reconstruction; they share
        the batch's pre-padded planes.  Output is bit-identical to
        calling :meth:`encode` per frame (same sizes, quantiser walk,
        reconstructions), with ``batch=False`` falling back to exactly
        that loop.
        """
        stack = np.asarray(frames)
        if stack.ndim != 3 or stack.shape[1:] != self.spec.shape:
            raise CodecError(
                f"frame stack must be (F, {self.spec.shape[0]}, "
                f"{self.spec.shape[1]}), got {stack.shape}"
            )
        if stack.shape[0] == 0:
            return []
        if not self.batch:
            return [self.encode(frame) for frame in stack]

        if stack.dtype != np.uint8:
            # uint8 camera frames promote to float64 exactly wherever
            # the pipeline mixes them with floats, so the common case
            # skips the full-stack conversion (keeping each frame's
            # working set cache-resident); anything else converts up
            # front to match the per-frame float64 arithmetic.
            stack = stack.astype(np.float64)
        planes = _pad_to_blocks(stack)
        crop = stack.shape[1:]
        # The keyframe schedule is deterministic up front: the first
        # coded frame materialises a reference for the rest.
        keyframes: List[bool] = []
        force = self._force_keyframe
        have_reference = self._reference is not None
        for offset in range(planes.shape[0]):
            index = self._frame_index + offset
            keyframes.append(
                index % self.config.gop_size == 0 or not have_reference or force
            )
            force = False
            have_reference = True
        self._force_keyframe = False
        key_positions = [i for i, key in enumerate(keyframes) if key]
        key_coeffs: dict[int, np.ndarray] = {}
        step = _batch_step(planes.shape[-2:])
        for chunk_start in range(0, len(key_positions), step):
            chunk = key_positions[chunk_start : chunk_start + step]
            stacked = _block_dct(planes[chunk] - 128.0)
            key_coeffs.update(
                (position, stacked[row]) for row, position in enumerate(chunk)
            )
        return [
            self._encode_plane(
                planes[i], crop, keyframes[i], coeffs=key_coeffs.get(i)
            )
            for i in range(planes.shape[0])
        ]

    def _encode_plane(
        self,
        plane: np.ndarray,
        crop: tuple[int, int],
        keyframe: bool,
        coeffs: Optional[np.ndarray] = None,
    ) -> EncodedFrame:
        """Quantise, size and reconstruct one pre-padded float plane."""
        index = self._frame_index
        q_step = self.rate_controller.q_step
        divisor = q_step * QUANT_WEIGHTS
        if keyframe:
            if coeffs is None:
                coeffs = _block_dct(plane - 128.0)
            # coeffs is a private buffer (fresh transform output or a
            # batch row consumed once), so quantise it in place.
            np.divide(coeffs, divisor, out=coeffs)
            np.round(coeffs, out=coeffs)
            levels = coeffs.astype(np.int32)
        else:
            # Skip deadzone: blocks whose residual is within a luma
            # step of zero carry no signal, only quantisation noise
            # from earlier frames; coding them would make the encoder
            # chase its own reconstruction error forever on static
            # content.  The mask depends on the residual alone, so
            # masked blocks' coefficients are never consumed -- gather
            # only the live blocks into one stacked transform.
            residual = plane - self._reference
            keep = ~_skip_deadzone_mask(residual)
            levels = np.zeros(
                (keep.shape[0], keep.shape[1], BLOCK, BLOCK), dtype=np.int32
            )
            if keep.any():
                coeffs = sp_fft.dctn(
                    _block_grid(residual)[keep], axes=(-2, -1), norm="ortho"
                )
                np.divide(coeffs, divisor, out=coeffs)
                np.round(coeffs, out=coeffs)
                levels[keep] = coeffs.astype(np.int32)

        flat = levels.reshape(-1)
        nonzero = np.nonzero(flat)[0]
        values = flat[nonzero].astype(np.int16)
        num_blocks = levels.shape[0] * levels.shape[1]
        occupied = int(
            levels.reshape(num_blocks, BLOCK * BLOCK).any(axis=-1).sum()
        )
        size_bytes = _estimate_bits(values, num_blocks, occupied)

        encoded = EncodedFrame(
            index=index,
            keyframe=keyframe,
            q_step=q_step,
            shape=plane.shape,
            crop=crop,
            indices=nonzero.astype(np.int32),
            values=values,
            size_bytes=size_bytes,
        )

        # Reconstruct exactly as the decoder will, to keep references
        # in sync (closed-loop prediction).  The decoder rebuilds the
        # levels from the int16 sparse values, so dequantise the same
        # int16 view here rather than re-scattering.  A fully-skipped
        # inter frame reconstructs to the reference unchanged (zero
        # residual into an already-clamped plane) -- no transform.
        if not (values.size == 0 and not keyframe):
            residual_rec = _residual_plane_sparse(
                levels.astype(np.int16), np.float64(q_step), encoded.shape
            )
            self._reference = _apply_prediction(
                residual_rec, keyframe, self._reference
            )
        self._frame_index += 1
        self.rate_controller.update(size_bytes * 8.0, keyframe)
        return encoded

    def _reconstruct_plane(
        self, encoded: EncodedFrame, reference: Optional[np.ndarray]
    ) -> np.ndarray:
        return _reconstruct_from_sparse(encoded, reference)


class VideoDecoder:
    """Stateful decoder: freezes on gaps, resyncs on keyframes.

    Attributes:
        frames_decoded: Successfully decoded frame count.
        frames_frozen: Frames rendered as a freeze (gap before resync).
    """

    def __init__(
        self,
        spec: FrameSpec,
        batch: Optional[bool] = None,
        pixels: bool = True,
        defer: bool = False,
    ) -> None:
        """``pixels=False`` runs the freeze/resync state machine only.

        The gap statistics (``frames_decoded``/``frames_frozen``)
        depend solely on frame metadata, so a stats-only decoder --
        a receiver that watches a flow nobody renders -- can skip
        every reconstruction.  ``last_frame`` stays ``None``.

        ``defer=True`` parks every delivered frame instead of
        reconstructing it: the freeze/resync state machine (and its
        counters) still runs eagerly and exactly, but pixel work is
        logged as events and replayed through :meth:`decode_batch` on
        an internal eager decoder at :meth:`materialise` time -- so the
        simulator loop does zero codec work, and every per-event output
        is bit-identical to the eager path (only the wall-clock moment
        of the pure computation moves).  Only meaningful with pixels;
        callers must not rely on :meth:`decode` return values while
        deferring (they are ``None`` until materialised).
        """
        self.spec = spec
        self.batch = batching_enabled(batch)
        self.pixels = pixels
        self.defer = bool(defer) and pixels
        self._reference: Optional[np.ndarray] = None
        self._rendered: Optional[np.ndarray] = None
        self._has_reference = False
        self._next_expected = 0
        self._awaiting_keyframe = False
        self.frames_decoded = 0
        self.frames_frozen = 0
        #: Count of decode/mark_lost events accepted so far; a deferred
        #: grab (desktop recorder tick) stores this as its token.
        self.events_seen = 0
        self._events: List[object] = []
        self._event_frames: List[Optional[np.ndarray]] = []
        self._inner: Optional["VideoDecoder"] = None

    @property
    def has_output(self) -> bool:
        """Whether :attr:`last_frame` would be non-``None``.

        Readable without forcing a deferred materialise: a frame has
        been rendered iff the decoder has ever accepted a reference.
        """
        return self._has_reference if self.pixels else False

    @property
    def last_frame(self) -> Optional[np.ndarray]:
        """The most recently rendered frame (uint8), if any.

        Memoised per reference: the desktop recorder polls this on its
        own clock, far more often than the stream actually changes, so
        the crop/clamp/cast runs once per decoded frame.  Treat the
        returned array as read-only (repeat reads share it).
        """
        if self._events:
            self.materialise()
        if self._reference is None:
            return None
        if self._rendered is None:
            height, width = self.spec.shape
            self._rendered = np.clip(
                self._reference[:height, :width], 0, 255
            ).astype(np.uint8)
        return self._rendered

    def decode(self, encoded: EncodedFrame) -> Optional[np.ndarray]:
        """Decode one frame; returns the rendered uint8 frame.

        Returns the frozen previous frame (or ``None`` before any
        output) when the stream has a gap and ``encoded`` is not a
        keyframe -- rendering continues but the new data is unusable.
        """
        if self.defer:
            # Exact metadata state machine (counters and resync state
            # must read true at any simulation time); pixels are parked
            # as an event and replayed at materialise time.
            self._events.append(encoded)
            self.events_seen += 1
            gap = encoded.index != self._next_expected
            if gap and not encoded.keyframe:
                self._awaiting_keyframe = True
            if self._awaiting_keyframe and not encoded.keyframe:
                self._next_expected = encoded.index + 1
                self.frames_frozen += 1
                return None
            if not encoded.keyframe and not self._has_reference:
                self._next_expected = encoded.index + 1
                self.frames_frozen += 1
                return None
            self._has_reference = True
            self._awaiting_keyframe = False
            self._next_expected = encoded.index + 1
            self.frames_decoded += 1
            return None
        gap = encoded.index != self._next_expected
        if gap and not encoded.keyframe:
            self._awaiting_keyframe = True
        if self._awaiting_keyframe and not encoded.keyframe:
            self._next_expected = encoded.index + 1
            self.frames_frozen += 1
            return self.last_frame
        if not encoded.keyframe and not self._has_reference:
            self._next_expected = encoded.index + 1
            self.frames_frozen += 1
            return None

        if self.pixels:
            reconstructed = _reconstruct_from_sparse(
                encoded, self._reference if not encoded.keyframe else None
            )
            if reconstructed is not self._reference:
                # Fully-skipped frames hand the reference back
                # unchanged; keep the rendered cache with it.
                self._reference = reconstructed
                self._rendered = None
        self._has_reference = True
        self._awaiting_keyframe = False
        self._next_expected = encoded.index + 1
        self.frames_decoded += 1
        return self.last_frame

    def decode_batch(
        self, frames: Sequence[EncodedFrame]
    ) -> List[Optional[np.ndarray]]:
        """Decode a burst of frames; returns each frame's rendered output.

        Equivalent to calling :meth:`decode` per frame, in order.  The
        freeze/resync state machine runs on metadata alone (indices,
        keyframe flags, reference presence), so it is replayed first to
        find which frames actually reconstruct; those frames' inverse
        transforms -- the expensive part -- then run as one batched
        IDCT over an ``(F, by, bx, 8, 8)`` stack, and a second pass
        applies prediction and renders in stream order.  Bit-identical
        to the per-frame loop (which ``batch=False`` falls back to).
        """
        frames = list(frames)
        if self.defer:
            # Park each frame as an event; the batch machinery runs at
            # materialise time on the internal eager decoder instead.
            return [self.decode(encoded) for encoded in frames]
        if not self.batch or not self.pixels or len(frames) < 2:
            # Stats-only decoding is pure metadata work; batching
            # would only add stack bookkeeping.
            return [self.decode(encoded) for encoded in frames]
        if len({encoded.shape for encoded in frames}) > 1:
            return [self.decode(encoded) for encoded in frames]

        # Pass 1: replay the gap/freeze logic without touching pixels.
        DECODE, FREEZE, NO_OUTPUT = 0, 1, 2
        actions: List[int] = []
        next_expected = self._next_expected
        awaiting = self._awaiting_keyframe
        have_reference = self._has_reference
        to_decode: List[EncodedFrame] = []
        for encoded in frames:
            gap = encoded.index != next_expected
            if gap and not encoded.keyframe:
                awaiting = True
            if awaiting and not encoded.keyframe:
                actions.append(FREEZE)
            elif not encoded.keyframe and not have_reference:
                actions.append(NO_OUTPUT)
            else:
                actions.append(DECODE)
                # Fully-skipped inter frames reconstruct to the
                # reference unchanged; keep them out of the IDCT stack.
                if encoded.keyframe or encoded.values.size:
                    to_decode.append(encoded)
                awaiting = False
                have_reference = True
            next_expected = encoded.index + 1

        # The batched inverse transform of every reconstructing frame:
        # gather the occupied blocks of the whole burst into one
        # stacked IDCT (empty blocks invert to exact zeros), then
        # scatter each frame's blocks back into its zero plane.
        residuals: List[np.ndarray] = []
        if to_decode:
            shape = to_decode[0].shape
            occupied_masks: List[np.ndarray] = []
            coeff_blocks: List[np.ndarray] = []
            for encoded in to_decode:
                levels = _levels_from_sparse(encoded)
                occupied = levels.any(axis=(-2, -1))
                occupied_masks.append(occupied)
                coeff_blocks.append(
                    levels[occupied]
                    * (np.float64(encoded.q_step) * QUANT_WEIGHTS)
                )
            gathered = np.concatenate(coeff_blocks)
            inverted = np.empty_like(gathered)
            step = max(1, _BATCH_BLOCK_BYTES // (BLOCK * BLOCK * 8))
            for start in range(0, gathered.shape[0], step):
                inverted[start : start + step] = sp_fft.idctn(
                    gathered[start : start + step],
                    axes=(-2, -1),
                    norm="ortho",
                )
            offset = 0
            for occupied in occupied_masks:
                count = int(np.count_nonzero(occupied))
                residual = np.zeros(shape, dtype=np.float64)
                if count:
                    _block_grid(residual)[occupied] = inverted[
                        offset : offset + count
                    ]
                residuals.append(residual)
                offset += count

        # Pass 2: apply predictions sequentially and render in order.
        outputs: List[Optional[np.ndarray]] = []
        row = 0
        for encoded, action in zip(frames, actions):
            if action != DECODE:
                self._next_expected = encoded.index + 1
                self.frames_frozen += 1
                outputs.append(self.last_frame if action == FREEZE else None)
                continue
            if encoded.keyframe or encoded.values.size:
                self._reference = _apply_prediction(
                    residuals[row],
                    encoded.keyframe,
                    self._reference if not encoded.keyframe else None,
                )
                self._rendered = None
                row += 1
            self._has_reference = True
            self._next_expected = encoded.index + 1
            self.frames_decoded += 1
            outputs.append(self.last_frame)
        # The replay's final await state is the decoder's state: a burst
        # that ends frozen must leave later decodes waiting for a
        # keyframe, exactly as the per-frame loop would.
        self._awaiting_keyframe = awaiting
        return outputs

    def mark_lost(self, frame_index: int) -> Optional[np.ndarray]:
        """Record that ``frame_index`` was lost in transport.

        The decoder renders a freeze and will wait for the next
        keyframe before trusting inter frames again.
        """
        if self.defer:
            self._events.append(int(frame_index))
            self.events_seen += 1
            if frame_index >= self._next_expected:
                self._next_expected = frame_index + 1
            self._awaiting_keyframe = True
            self.frames_frozen += 1
            return None
        if frame_index >= self._next_expected:
            self._next_expected = frame_index + 1
        self._awaiting_keyframe = True
        self.frames_frozen += 1
        return self.last_frame

    # ------------------------------------------------------------- #
    # Deferred decode (burst event core, receiver side).
    # ------------------------------------------------------------- #

    def materialise(self) -> None:
        """Replay parked events through the eager pixel pipeline.

        Consecutive delivered frames replay via :meth:`decode_batch`
        (one stacked IDCT per run) with losses applied between runs,
        on a persistent internal eager decoder whose state carries
        across calls -- so repeated materialise/defer cycles compose.
        Each event's rendered output is retained for token lookup
        (:meth:`frame_at_token`), and the internal decoder's reference
        becomes this decoder's, making :attr:`last_frame` exact.
        """
        if not self._events:
            return
        inner = self._inner
        if inner is None:
            inner = self._inner = VideoDecoder(
                self.spec, batch=self.batch, pixels=True
            )
        outputs = self._event_frames
        run: List[EncodedFrame] = []
        for event in self._events:
            if type(event) is int:
                if run:
                    outputs.extend(inner.decode_batch(run))
                    run = []
                outputs.append(inner.mark_lost(event))
            else:
                run.append(event)
        if run:
            outputs.extend(inner.decode_batch(run))
        self._events = []
        # The replay runs the same state machine this decoder already
        # ran eagerly; any divergence is a defect, not a data error.
        assert inner.frames_decoded == self.frames_decoded
        assert inner.frames_frozen == self.frames_frozen
        assert inner._next_expected == self._next_expected
        self._reference = inner._reference
        self._rendered = inner._rendered

    def frame_at_token(self, token: int) -> Optional[np.ndarray]:
        """The rendered frame as of ``token`` events (recorder grabs).

        ``token`` is a snapshot of :attr:`events_seen`; the returned
        array is exactly what :attr:`last_frame` held at that moment
        (``None`` before any output).
        """
        if self._events:
            self.materialise()
        if token == 0:
            return None
        return self._event_frames[token - 1]
