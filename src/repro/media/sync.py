"""Recording alignment: trim search, audio offset, loudness.

Section 4.3-4.4 post-processing: "we synchronize the start/end time of
original/recorded videos with millisecond-level precision by trimming
them in a way that per-frame SSIM similarity is maximized", audio is
aligned with ``audio-offset-finder`` and normalised with EBU R128
loudness normalisation.  This module implements all three steps.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import AnalysisError


#: Frame pairs probed per candidate shift during the trim search.
PROBE_FRAMES = 10

#: Below this centred-frame norm a frame is considered flat (no
#: texture); a uint8 frame with any pixel off its mean is well above.
_FLAT_NORM = 1e-6

#: Threshold on the product of two centred norms below which the
#: normalised correlation is undefined and the degenerate rules apply.
_DEGENERATE_DENOM = 1e-12


def _frame_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Fast normalised-correlation proxy for per-frame SSIM.

    The trim search only needs a ranking over integer shifts; zero-mean
    normalised correlation ranks shifts identically to SSIM for this
    purpose and is far cheaper than the full windowed metric.

    Degenerate (flat-frame) pairs carry no texture to correlate: two
    flat frames count as identical only when their *brightness* also
    matches -- mean subtraction alone would map e.g. an all-black and
    an all-white frame both to zero vectors and score them 1.0.
    """
    fa = a.astype(np.float64).ravel()
    fb = b.astype(np.float64).ravel()
    mean_a = float(fa.mean())
    mean_b = float(fb.mean())
    fa -= mean_a
    fb -= mean_b
    norm_a = float(np.linalg.norm(fa))
    norm_b = float(np.linalg.norm(fb))
    denom = norm_a * norm_b
    if denom < _DEGENERATE_DENOM:
        both_flat = norm_a < _FLAT_NORM and norm_b < _FLAT_NORM
        return 1.0 if both_flat and np.isclose(mean_a, mean_b) else 0.0
    return float(np.dot(fa, fb) / denom)


def _probe_similarity_matrix(
    frames_a: np.ndarray, frames_b: np.ndarray
) -> np.ndarray:
    """Pairwise :func:`_frame_similarity` of two frame stacks.

    Returns ``S[i, j] = similarity(frames_a[i], frames_b[j])`` in one
    matrix product over the centred, flattened frames, with the same
    degenerate-pair rules as the scalar function.
    """
    a = frames_a.reshape(len(frames_a), -1).astype(np.float64)
    b = frames_b.reshape(len(frames_b), -1).astype(np.float64)
    mean_a = a.mean(axis=1)
    mean_b = b.mean(axis=1)
    a -= mean_a[:, None]
    b -= mean_b[:, None]
    norm_a = np.linalg.norm(a, axis=1)
    norm_b = np.linalg.norm(b, axis=1)
    denom = norm_a[:, None] * norm_b[None, :]
    degenerate = denom < _DEGENERATE_DENOM
    scores = np.matmul(a, b.T) / np.where(degenerate, 1.0, denom)
    flat_match = (
        (norm_a[:, None] < _FLAT_NORM)
        & (norm_b[None, :] < _FLAT_NORM)
        & np.isclose(mean_a[:, None], mean_b[None, :])
    )
    return np.where(degenerate, flat_match.astype(np.float64), scores)


def _as_stack(frames: "Sequence[np.ndarray] | np.ndarray") -> np.ndarray:
    try:
        stack = np.asarray(frames)
    except ValueError as exc:
        raise AnalysisError(f"frames do not stack: {exc}") from exc
    if stack.ndim != 3 or stack.dtype == object:
        raise AnalysisError(
            f"expected equally-shaped (H, W) frames, got shape {stack.shape}"
        )
    return stack


def align_recordings(
    reference: Sequence[np.ndarray],
    recorded: Sequence[np.ndarray],
    max_shift: int = 30,
) -> Tuple[int, Sequence[np.ndarray], Sequence[np.ndarray]]:
    """Find the shift aligning a recording to its reference feed.

    Tries integer frame shifts in ``[-max_shift, max_shift]``, scoring
    each by mean frame similarity over the overlap, and returns
    ``(best_shift, reference_aligned, recorded_aligned)`` where both
    aligned stacks have equal length.  A positive shift means the
    recording starts ``shift`` frames later than the reference.

    All candidate shifts are scored from one pairwise correlation
    matrix over the probe window (the first ``PROBE_FRAMES +
    max_shift`` frames of each side) rather than a per-shift Python
    loop; ties keep the smallest shift, as the sequential search did.

    Raises:
        AnalysisError: If either sequence is empty or no overlap
            exists at any shift.
    """
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot align empty frame sequences")
    ref = _as_stack(reference)
    rec = _as_stack(recorded)
    probe_count = min(PROBE_FRAMES, len(ref), len(rec))
    window_ref = min(len(ref), probe_count + max_shift)
    window_rec = min(len(rec), probe_count + max_shift)
    similarity = _probe_similarity_matrix(ref[:window_ref], rec[:window_rec])

    shifts = np.arange(-max_shift, max_shift + 1)
    probes = np.arange(probe_count)
    forward = shifts[:, None] >= 0
    ref_idx = np.where(forward, probes[None, :], probes[None, :] - shifts[:, None])
    rec_idx = np.where(forward, probes[None, :] + shifts[:, None], probes[None, :])
    valid = (ref_idx < len(ref)) & (rec_idx < len(rec))
    gathered = similarity[
        np.minimum(ref_idx, window_ref - 1), np.minimum(rec_idx, window_rec - 1)
    ]
    counts = valid.sum(axis=1)
    if not np.any(counts > 0):
        raise AnalysisError("no overlap at any shift; cannot align")
    sums = np.where(valid, gathered, 0.0).sum(axis=1)
    scores = np.where(counts > 0, sums / np.maximum(counts, 1), -np.inf)
    best_shift = int(shifts[int(np.argmax(scores))])

    if best_shift >= 0:
        ref_slice = ref[: len(rec) - best_shift]
        rec_slice = rec[best_shift:]
    else:
        ref_slice = ref[-best_shift:]
        rec_slice = rec[: len(ref) + best_shift]
    overlap = min(len(ref_slice), len(rec_slice))
    return best_shift, ref_slice[:overlap], rec_slice[:overlap]


def find_audio_offset(
    reference: np.ndarray, recorded: np.ndarray, max_offset: int | None = None
) -> int:
    """Sample offset of ``recorded`` relative to ``reference``.

    Positive result: the recording lags the reference by that many
    samples.  Computed by FFT cross-correlation (the approach of the
    paper's ``audio-offset-finder`` tool).
    """
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot correlate empty audio")
    correlation = sp_signal.fftconvolve(
        recorded.astype(np.float64),
        reference[::-1].astype(np.float64),
        mode="full",
    )
    lags = np.arange(-(len(reference) - 1), len(recorded))
    if max_offset is not None:
        mask = np.abs(lags) <= max_offset
        if not mask.any():
            raise AnalysisError("max_offset excludes every lag")
        correlation = correlation[mask]
        lags = lags[mask]
    return int(lags[int(np.argmax(correlation))])


def trim_to_offset(
    reference: np.ndarray, recorded: np.ndarray, offset: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply an offset, returning equal-length aligned signals."""
    if offset >= 0:
        recorded = recorded[offset:]
    else:
        reference = reference[-offset:]
    overlap = min(len(reference), len(recorded))
    if overlap == 0:
        raise AnalysisError("offset leaves no overlapping audio")
    return reference[:overlap], recorded[:overlap]


def measure_loudness(audio: np.ndarray, sample_rate: int = 16_000) -> float:
    """Gated RMS loudness in dB relative to full scale (LUFS-like).

    A simplified EBU R128: mean square over 400 ms blocks with 75 %
    overlap, absolute gate at -70, relative gate at -10 below the
    ungated mean -- omitting the K-weighting filter, which barely
    matters for our band-limited synthetic speech.
    """
    if len(audio) == 0:
        raise AnalysisError("cannot measure loudness of empty audio")
    block = max(1, int(0.4 * sample_rate))
    hop = max(1, block // 4)
    powers = []
    for start in range(0, max(1, len(audio) - block + 1), hop):
        segment = audio[start : start + block]
        powers.append(float(np.mean(segment.astype(np.float64) ** 2)))
    powers_arr = np.array(powers)
    loudness = -0.691 + 10.0 * np.log10(np.maximum(powers_arr, 1e-12))
    gated = powers_arr[loudness > -70.0]
    if gated.size == 0:
        return -70.0
    ungated_mean = -0.691 + 10.0 * np.log10(np.mean(gated))
    gate = ungated_mean - 10.0
    final = powers_arr[loudness > gate]
    if final.size == 0:
        final = gated
    return float(-0.691 + 10.0 * np.log10(np.mean(final)))


def normalize_loudness(
    audio: np.ndarray, target_lufs: float = -23.0, sample_rate: int = 16_000
) -> np.ndarray:
    """Scale audio to a target loudness (EBU R128 normalisation)."""
    current = measure_loudness(audio, sample_rate)
    gain_db = target_lufs - current
    return audio.astype(np.float64) * (10.0 ** (gain_db / 20.0))
