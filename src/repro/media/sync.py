"""Recording alignment: trim search, audio offset, loudness.

Section 4.3-4.4 post-processing: "we synchronize the start/end time of
original/recorded videos with millisecond-level precision by trimming
them in a way that per-frame SSIM similarity is maximized", audio is
aligned with ``audio-offset-finder`` and normalised with EBU R128
loudness normalisation.  This module implements all three steps.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import signal as sp_signal

from ..errors import AnalysisError


def _frame_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Fast normalised-correlation proxy for per-frame SSIM.

    The trim search only needs a ranking over integer shifts; zero-mean
    normalised correlation ranks shifts identically to SSIM for this
    purpose and is far cheaper than the full windowed metric.
    """
    fa = a.astype(np.float64).ravel()
    fb = b.astype(np.float64).ravel()
    fa -= fa.mean()
    fb -= fb.mean()
    denom = np.linalg.norm(fa) * np.linalg.norm(fb)
    if denom < 1e-12:
        return 1.0 if np.allclose(fa, fb) else 0.0
    return float(np.dot(fa, fb) / denom)


def align_recordings(
    reference: Sequence[np.ndarray],
    recorded: Sequence[np.ndarray],
    max_shift: int = 30,
) -> Tuple[int, List[np.ndarray], List[np.ndarray]]:
    """Find the shift aligning a recording to its reference feed.

    Tries integer frame shifts in ``[-max_shift, max_shift]``, scoring
    each by mean frame similarity over the overlap, and returns
    ``(best_shift, reference_aligned, recorded_aligned)`` where both
    lists have equal length.  A positive shift means the recording
    starts ``shift`` frames later than the reference.

    Raises:
        AnalysisError: If either sequence is empty or no overlap
            exists at any shift.
    """
    if not reference or not recorded:
        raise AnalysisError("cannot align empty frame sequences")
    best_shift = None
    best_score = -np.inf
    probe_count = min(10, len(reference), len(recorded))
    for shift in range(-max_shift, max_shift + 1):
        scores = []
        for k in range(probe_count):
            ref_index = k if shift >= 0 else k - shift
            rec_index = k + shift if shift >= 0 else k
            if ref_index >= len(reference) or rec_index >= len(recorded):
                break
            scores.append(
                _frame_similarity(reference[ref_index], recorded[rec_index])
            )
        if scores and float(np.mean(scores)) > best_score:
            best_score = float(np.mean(scores))
            best_shift = shift
    if best_shift is None:
        raise AnalysisError("no overlap at any shift; cannot align")

    if best_shift >= 0:
        ref_slice = list(reference[: len(recorded) - best_shift])
        rec_slice = list(recorded[best_shift:])
    else:
        ref_slice = list(reference[-best_shift:])
        rec_slice = list(recorded[: len(reference) + best_shift])
    overlap = min(len(ref_slice), len(rec_slice))
    return best_shift, ref_slice[:overlap], rec_slice[:overlap]


def find_audio_offset(
    reference: np.ndarray, recorded: np.ndarray, max_offset: int | None = None
) -> int:
    """Sample offset of ``recorded`` relative to ``reference``.

    Positive result: the recording lags the reference by that many
    samples.  Computed by FFT cross-correlation (the approach of the
    paper's ``audio-offset-finder`` tool).
    """
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot correlate empty audio")
    correlation = sp_signal.fftconvolve(
        recorded.astype(np.float64),
        reference[::-1].astype(np.float64),
        mode="full",
    )
    lags = np.arange(-(len(reference) - 1), len(recorded))
    if max_offset is not None:
        mask = np.abs(lags) <= max_offset
        if not mask.any():
            raise AnalysisError("max_offset excludes every lag")
        correlation = correlation[mask]
        lags = lags[mask]
    return int(lags[int(np.argmax(correlation))])


def trim_to_offset(
    reference: np.ndarray, recorded: np.ndarray, offset: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply an offset, returning equal-length aligned signals."""
    if offset >= 0:
        recorded = recorded[offset:]
    else:
        reference = reference[-offset:]
    overlap = min(len(reference), len(recorded))
    if overlap == 0:
        raise AnalysisError("offset leaves no overlapping audio")
    return reference[:overlap], recorded[:overlap]


def measure_loudness(audio: np.ndarray, sample_rate: int = 16_000) -> float:
    """Gated RMS loudness in dB relative to full scale (LUFS-like).

    A simplified EBU R128: mean square over 400 ms blocks with 75 %
    overlap, absolute gate at -70, relative gate at -10 below the
    ungated mean -- omitting the K-weighting filter, which barely
    matters for our band-limited synthetic speech.
    """
    if len(audio) == 0:
        raise AnalysisError("cannot measure loudness of empty audio")
    block = max(1, int(0.4 * sample_rate))
    hop = max(1, block // 4)
    powers = []
    for start in range(0, max(1, len(audio) - block + 1), hop):
        segment = audio[start : start + block]
        powers.append(float(np.mean(segment.astype(np.float64) ** 2)))
    powers_arr = np.array(powers)
    loudness = -0.691 + 10.0 * np.log10(np.maximum(powers_arr, 1e-12))
    gated = powers_arr[loudness > -70.0]
    if gated.size == 0:
        return -70.0
    ungated_mean = -0.691 + 10.0 * np.log10(np.mean(gated))
    gate = ungated_mean - 10.0
    final = powers_arr[loudness > gate]
    if final.size == 0:
        final = gated
    return float(-0.691 + 10.0 * np.log10(np.mean(final)))


def normalize_loudness(
    audio: np.ndarray, target_lufs: float = -23.0, sample_rate: int = 16_000
) -> np.ndarray:
    """Scale audio to a target loudness (EBU R128 normalisation)."""
    current = measure_loudness(audio, sample_rate)
    gain_db = target_lufs - current
    return audio.astype(np.float64) * (10.0 ** (gain_db / 20.0))
