"""Padding and cropping: the Figure 13 workflow.

"One issue that complicates accurate quality comparison is the fact
that the video screen rendered by a client is partially blocked by
client-specific UI widgets ... To avoid such partial occlusion inside
the video viewing area, we prepare video feeds with enough padding."

The workflow is: pad the injected feed -> stream -> the client renders
it with UI widgets overlapping only the padding -> record the desktop
-> crop the padding back out -> resize to the injected resolution ->
compare.  These helpers implement each step; the UI occlusion itself is
applied by :mod:`repro.clients.recorder`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import MediaError
from .frames import FrameSource, FrameSpec

#: Default padding added around feeds for QoE experiments, as a
#: fraction of each dimension on every side.
DEFAULT_PAD_FRACTION = 0.15

#: Luma of the padding border (mid-grey, like the paper's figure).
PAD_VALUE = 128


def pad_size(dimension: int, pad_fraction: float) -> int:
    """Pixels of padding added on *each* side of a dimension."""
    if not 0.0 <= pad_fraction < 0.5:
        raise MediaError(f"pad_fraction must be in [0, 0.5): {pad_fraction}")
    return int(round(dimension * pad_fraction))


def add_padding(
    frame: np.ndarray, pad_fraction: float = DEFAULT_PAD_FRACTION
) -> np.ndarray:
    """Surround a frame with a uniform border (Fig. 13 preparation)."""
    if frame.ndim != 2:
        raise MediaError("expected a single-channel (H, W) frame")
    pad_h = pad_size(frame.shape[0], pad_fraction)
    pad_w = pad_size(frame.shape[1], pad_fraction)
    return np.pad(
        frame,
        ((pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
        constant_values=PAD_VALUE,
    )


def crop_padding(
    frame: np.ndarray,
    content_shape: tuple[int, int],
) -> np.ndarray:
    """Cut the centred content region back out of a padded frame.

    Accepts a single ``(H, W)`` frame or a ``(T, H, W)`` stack of
    them (the crop is applied to the trailing two axes).

    Args:
        frame: The recorded (padded) frame or frame stack.
        content_shape: (height, width) of the original content.

    Raises:
        MediaError: If the content does not fit inside the frame.
    """
    if frame.ndim not in (2, 3):
        raise MediaError("expected an (H, W) frame or (T, H, W) stack")
    height, width = content_shape
    if height > frame.shape[-2] or width > frame.shape[-1]:
        raise MediaError(
            f"content {content_shape} larger than frame {frame.shape}"
        )
    top = (frame.shape[-2] - height) // 2
    left = (frame.shape[-1] - width) // 2
    return frame[..., top : top + height, left : left + width]


class PaddedSource(FrameSource):
    """A frame source wrapped with the Fig. 13 padding border.

    The camera feed the harness injects is the *padded* version of the
    content feed; QoE scoring later crops the padding back out and
    compares against the unpadded content.
    """

    def __init__(
        self, content: FrameSource, pad_fraction: float = DEFAULT_PAD_FRACTION
    ) -> None:
        pad_h = pad_size(content.spec.height, pad_fraction)
        pad_w = pad_size(content.spec.width, pad_fraction)
        padded_spec = FrameSpec(
            width=content.spec.width + 2 * pad_w,
            height=content.spec.height + 2 * pad_h,
            fps=content.spec.fps,
        )
        super().__init__(padded_spec, content.seed)
        self.content = content
        self.pad_fraction = pad_fraction

    def frame(self, index: int) -> np.ndarray:
        return add_padding(self.content.frame(index), self.pad_fraction)

    def crop(self, frame: np.ndarray) -> np.ndarray:
        """Cut the content region back out of padded/recorded frames.

        Accepts one ``(H, W)`` frame or a ``(T, H, W)`` stack.
        """
        return crop_padding(frame, self.content.spec.shape)


@lru_cache(maxsize=256)
def _resize_plan(in_shape: tuple[int, int], out_shape: tuple[int, int]):
    """Cached bilinear gather indices/weights for one shape pair.

    Building the sample-position arrays dominated ``resize_frame`` in
    profiles (the recorder resizes every tick at a fixed geometry), so
    the plan is computed once per ``(in_shape, out_shape)`` and reused.
    The returned arrays are shared -- treat them as read-only.
    """
    in_h, in_w = in_shape
    out_h, out_w = out_shape
    # Sample positions mapping output pixel centres into input space.
    ys = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    return y0, y1, x0, x1, wy, wx


def _apply_resize_plan(data: np.ndarray, plan) -> np.ndarray:
    """Bilinear gather + lerp on the trailing two axes of ``data``.

    Gathers run on the input dtype and the corners are converted to
    float64 afterwards -- for uint8 frames that is an 8x smaller
    memory footprint than converting first, with identical values
    (uint8 -> float64 is exact).
    """
    y0, y1, x0, x1, wy, wx = plan
    row0 = np.take(data, y0, axis=-2)
    row1 = np.take(data, y1, axis=-2)
    c00 = np.take(row0, x0, axis=-1).astype(np.float64, copy=False)
    c01 = np.take(row0, x1, axis=-1).astype(np.float64, copy=False)
    c10 = np.take(row1, x0, axis=-1).astype(np.float64, copy=False)
    c11 = np.take(row1, x1, axis=-1).astype(np.float64, copy=False)
    top = c00 * (1 - wx) + c01 * wx
    bottom = c10 * (1 - wx) + c11 * wx
    return top * (1 - wy) + bottom * wy


def resize_frame(frame: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Resize a frame with bilinear interpolation (recording -> feed).

    Implemented directly with numpy gather + lerp so the library does
    not depend on an image package; the gather plan is cached per
    ``(in_shape, out_shape)``.
    """
    if frame.ndim != 2:
        raise MediaError("expected a single-channel (H, W) frame")
    out_h, out_w = shape
    if out_h < 1 or out_w < 1:
        raise MediaError(f"invalid target shape: {shape}")
    in_h, in_w = frame.shape
    if (in_h, in_w) == (out_h, out_w):
        return frame.copy()

    plan = _resize_plan((in_h, in_w), (out_h, out_w))
    resized = _apply_resize_plan(frame, plan)
    if frame.dtype == np.uint8:
        return np.clip(np.round(resized), 0, 255).astype(np.uint8)
    return resized


#: Target bytes of one float64 frame block during stack resizing --
#: the gather/lerp temporaries of a block must stay cache-resident
#: (full-stack passes are DRAM-bound and several times slower).
_RESIZE_BLOCK_BYTES = 2 << 20


def resize_frames(frames: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Resize a whole ``(T, H, W)`` stack through the cached plan.

    Bit-compatible with calling :func:`resize_frame` on every frame:
    the same cached gather plan and lerp arithmetic are applied across
    the stack's trailing axes, walking the stack in cache-sized frame
    blocks.
    """
    stack = np.asarray(frames)
    if stack.ndim != 3:
        raise MediaError("expected a (T, H, W) frame stack")
    out_h, out_w = shape
    if out_h < 1 or out_w < 1:
        raise MediaError(f"invalid target shape: {shape}")
    in_h, in_w = stack.shape[1:]
    if (in_h, in_w) == (out_h, out_w):
        return stack.copy()

    plan = _resize_plan((in_h, in_w), (out_h, out_w))
    frame_bytes = max(in_h * in_w, out_h * out_w) * 8
    step = max(1, _RESIZE_BLOCK_BYTES // frame_bytes)

    def finish(block: np.ndarray) -> np.ndarray:
        # Cast inside the loop so the float64 intermediates never
        # outlive their block -- concatenating them first would
        # rebuild the full-stack temporary the blocking avoids.
        if stack.dtype == np.uint8:
            return np.clip(np.round(block), 0, 255).astype(np.uint8)
        return block

    if len(stack) <= step:
        return finish(_apply_resize_plan(stack, plan))
    return np.concatenate(
        [
            finish(_apply_resize_plan(stack[i : i + step], plan))
            for i in range(0, len(stack), step)
        ]
    )
