"""Padding and cropping: the Figure 13 workflow.

"One issue that complicates accurate quality comparison is the fact
that the video screen rendered by a client is partially blocked by
client-specific UI widgets ... To avoid such partial occlusion inside
the video viewing area, we prepare video feeds with enough padding."

The workflow is: pad the injected feed -> stream -> the client renders
it with UI widgets overlapping only the padding -> record the desktop
-> crop the padding back out -> resize to the injected resolution ->
compare.  These helpers implement each step; the UI occlusion itself is
applied by :mod:`repro.clients.recorder`.
"""

from __future__ import annotations

import numpy as np

from ..errors import MediaError
from .frames import FrameSource, FrameSpec

#: Default padding added around feeds for QoE experiments, as a
#: fraction of each dimension on every side.
DEFAULT_PAD_FRACTION = 0.15

#: Luma of the padding border (mid-grey, like the paper's figure).
PAD_VALUE = 128


def pad_size(dimension: int, pad_fraction: float) -> int:
    """Pixels of padding added on *each* side of a dimension."""
    if not 0.0 <= pad_fraction < 0.5:
        raise MediaError(f"pad_fraction must be in [0, 0.5): {pad_fraction}")
    return int(round(dimension * pad_fraction))


def add_padding(
    frame: np.ndarray, pad_fraction: float = DEFAULT_PAD_FRACTION
) -> np.ndarray:
    """Surround a frame with a uniform border (Fig. 13 preparation)."""
    if frame.ndim != 2:
        raise MediaError("expected a single-channel (H, W) frame")
    pad_h = pad_size(frame.shape[0], pad_fraction)
    pad_w = pad_size(frame.shape[1], pad_fraction)
    return np.pad(
        frame,
        ((pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
        constant_values=PAD_VALUE,
    )


def crop_padding(
    frame: np.ndarray,
    content_shape: tuple[int, int],
) -> np.ndarray:
    """Cut the centred content region back out of a padded frame.

    Args:
        frame: The recorded (padded) frame.
        content_shape: (height, width) of the original content.

    Raises:
        MediaError: If the content does not fit inside the frame.
    """
    if frame.ndim != 2:
        raise MediaError("expected a single-channel (H, W) frame")
    height, width = content_shape
    if height > frame.shape[0] or width > frame.shape[1]:
        raise MediaError(
            f"content {content_shape} larger than frame {frame.shape}"
        )
    top = (frame.shape[0] - height) // 2
    left = (frame.shape[1] - width) // 2
    return frame[top : top + height, left : left + width]


class PaddedSource(FrameSource):
    """A frame source wrapped with the Fig. 13 padding border.

    The camera feed the harness injects is the *padded* version of the
    content feed; QoE scoring later crops the padding back out and
    compares against the unpadded content.
    """

    def __init__(
        self, content: FrameSource, pad_fraction: float = DEFAULT_PAD_FRACTION
    ) -> None:
        pad_h = pad_size(content.spec.height, pad_fraction)
        pad_w = pad_size(content.spec.width, pad_fraction)
        padded_spec = FrameSpec(
            width=content.spec.width + 2 * pad_w,
            height=content.spec.height + 2 * pad_h,
            fps=content.spec.fps,
        )
        super().__init__(padded_spec, content.seed)
        self.content = content
        self.pad_fraction = pad_fraction

    def frame(self, index: int) -> np.ndarray:
        return add_padding(self.content.frame(index), self.pad_fraction)

    def crop(self, frame: np.ndarray) -> np.ndarray:
        """Cut the content region back out of a padded/recorded frame."""
        return crop_padding(frame, self.content.spec.shape)


def resize_frame(frame: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Resize a frame with bilinear interpolation (recording -> feed).

    Implemented directly with numpy gather + lerp so the library does
    not depend on an image package.
    """
    if frame.ndim != 2:
        raise MediaError("expected a single-channel (H, W) frame")
    out_h, out_w = shape
    if out_h < 1 or out_w < 1:
        raise MediaError(f"invalid target shape: {shape}")
    in_h, in_w = frame.shape
    if (in_h, in_w) == (out_h, out_w):
        return frame.copy()

    data = frame.astype(np.float64)
    # Sample positions mapping output pixel centres into input space.
    ys = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    top = data[y0][:, x0] * (1 - wx) + data[y0][:, x1] * wx
    bottom = data[y1][:, x0] * (1 - wx) + data[y1][:, x1] * wx
    resized = top * (1 - wy) + bottom * wy
    if frame.dtype == np.uint8:
        return np.clip(np.round(resized), 0, 255).astype(np.uint8)
    return resized
