"""A subband audio codec with loss concealment.

Models the platforms' audio paths (Opus-like) at the level the paper
observes: a constant configured bitrate (Zoom ~90 Kbps, Webex ~45,
Meet ~40 -- Section 4.4), quantisation noise that shrinks with bitrate,
and per-frame transport so shaper drops translate into concealment
artefacts.  Concealment strategy is configurable because the paper
finds Zoom/Meet audio robust under caps while Webex audio degrades
audibly: platforms that conceal by waveform repetition keep MOS high
under moderate loss, zero-fill concealment does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import fft as sp_fft

from ..errors import CodecError, ConfigurationError

#: Audio frame duration used by the codec (Opus default frame).
FRAME_DURATION_S = 0.02


@dataclass(frozen=True)
class AudioCodecConfig:
    """Audio codec parameters.

    Attributes:
        bitrate_bps: Target (and effectively constant) bitrate.
        sample_rate: Input sample rate.
        concealment: ``"repeat"`` (decaying repetition of the last good
            frame, Zoom/Meet-style) or ``"silence"`` (zero fill,
            Webex-style).
    """

    bitrate_bps: float = 40_000.0
    sample_rate: int = 16_000
    concealment: str = "repeat"

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if self.concealment not in ("repeat", "silence"):
            raise ConfigurationError(
                f"unknown concealment mode: {self.concealment!r}"
            )

    @property
    def frame_samples(self) -> int:
        """Samples per codec frame."""
        return int(round(self.sample_rate * FRAME_DURATION_S))

    @property
    def frame_budget_bits(self) -> float:
        """Bit budget per codec frame."""
        return self.bitrate_bps * FRAME_DURATION_S


@dataclass
class EncodedAudioFrame:
    """One compressed audio frame (sparse DCT levels)."""

    index: int
    q_step: float
    indices: np.ndarray
    values: np.ndarray
    frame_samples: int
    size_bytes: int


class AudioCodec:
    """Encoder/decoder pair for 20 ms audio frames.

    The encoder DCT-transforms each frame, quantises with a step chosen
    per frame (binary search) to meet the bit budget, and reports the
    realised size.  The decoder inverts, and conceals missing frames
    according to the configured strategy.
    """

    def __init__(self, config: Optional[AudioCodecConfig] = None) -> None:
        self.config = config if config is not None else AudioCodecConfig()
        self._next_index = 0

    # ----------------------------------------------------------------- #
    # Encoding.
    # ----------------------------------------------------------------- #

    def encode_frame(self, samples: np.ndarray) -> EncodedAudioFrame:
        """Encode one frame of exactly ``config.frame_samples`` samples."""
        expected = self.config.frame_samples
        if samples.shape != (expected,):
            raise CodecError(
                f"audio frame must have shape ({expected},), got {samples.shape}"
            )
        coeffs = sp_fft.dct(np.asarray(samples, dtype=np.float64), norm="ortho")
        budget = self.config.frame_budget_bits

        q_step = self._fit_quantiser(coeffs, budget)
        levels = np.round(coeffs / q_step).astype(np.int32)
        nonzero = np.nonzero(levels)[0]
        values = levels[nonzero].astype(np.int16)
        size_bytes = int(np.ceil(self._bits_for(values) / 8.0))

        frame = EncodedAudioFrame(
            index=self._next_index,
            q_step=q_step,
            indices=nonzero.astype(np.int32),
            values=values,
            frame_samples=expected,
            size_bytes=size_bytes,
        )
        self._next_index += 1
        return frame

    def encode(self, samples: np.ndarray) -> list[EncodedAudioFrame]:
        """Encode a multiple-of-frame-size buffer into frames."""
        frame_samples = self.config.frame_samples
        if len(samples) % frame_samples != 0:
            raise CodecError(
                f"buffer length {len(samples)} is not a multiple of "
                f"the frame size {frame_samples}"
            )
        return [
            self.encode_frame(samples[i : i + frame_samples])
            for i in range(0, len(samples), frame_samples)
        ]

    @staticmethod
    def _bits_for(values: np.ndarray) -> float:
        if values.size == 0:
            return 64.0
        magnitudes = np.abs(values.astype(np.float64))
        return float(np.sum(2.5 + 1.7 * np.log2(1.0 + magnitudes))) + 64.0

    def _fit_quantiser(self, coeffs: np.ndarray, budget_bits: float) -> float:
        """Smallest power-ladder step whose levels fit the budget.

        The 24-probe bisection runs on ``|coeffs|`` directly: banker's
        rounding is sign-symmetric (``round(-x) == -round(x)``), so the
        level magnitudes -- the only thing the bit model reads -- are
        identical to rounding the signed coefficients, while the
        per-probe ``abs``/``astype`` temporaries of the fitting loop
        disappear.  This method runs once per 20 ms audio frame for
        every speaking participant, which made it one of the hottest
        non-packet paths in a full session.
        """
        lo, hi = 1e-4, 10.0
        magnitudes = np.abs(coeffs)
        for _ in range(24):
            mid = (lo * hi) ** 0.5
            levels = np.round(magnitudes / mid)
            nonzero = levels[levels != 0]
            if nonzero.size:
                bits = float(np.sum(2.5 + 1.7 * np.log2(1.0 + nonzero))) + 64.0
            else:
                bits = 64.0
            if bits > budget_bits:
                lo = mid
            else:
                hi = mid
        return hi

    # ----------------------------------------------------------------- #
    # Decoding.
    # ----------------------------------------------------------------- #

    def decode_frame(self, frame: EncodedAudioFrame) -> np.ndarray:
        """Inverse-transform one encoded frame."""
        coeffs = np.zeros(frame.frame_samples, dtype=np.float64)
        coeffs[frame.indices] = frame.values.astype(np.float64) * frame.q_step
        return sp_fft.idct(coeffs, norm="ortho")


class AudioDecoder:
    """Stateful frame-sequence decoder with loss concealment.

    Feed frames with :meth:`push`; missing indices are concealed.  The
    final waveform is assembled with :meth:`waveform`.
    """

    def __init__(self, codec: AudioCodec) -> None:
        self._codec = codec
        self._frames: dict[int, np.ndarray] = {}
        self._max_index = -1
        self.frames_received = 0
        self.frames_concealed = 0

    def push(self, frame: EncodedAudioFrame) -> None:
        """Accept one encoded frame (in any order)."""
        self._frames[frame.index] = self._codec.decode_frame(frame)
        self._max_index = max(self._max_index, frame.index)
        self.frames_received += 1

    def waveform(self, total_frames: Optional[int] = None) -> np.ndarray:
        """Assemble the decoded signal, concealing missing frames.

        Args:
            total_frames: Length of the stream in frames; defaults to
                the highest index received + 1.
        """
        frame_samples = self._codec.config.frame_samples
        if total_frames is None:
            total_frames = self._max_index + 1
        if total_frames <= 0:
            return np.zeros(0, dtype=np.float64)
        out = np.zeros(total_frames * frame_samples, dtype=np.float64)
        last_good: Optional[np.ndarray] = None
        decay = 1.0
        mode = self._codec.config.concealment
        for index in range(total_frames):
            chunk = self._frames.get(index)
            if chunk is not None:
                last_good = chunk
                decay = 1.0
            else:
                self.frames_concealed += 1
                if mode == "repeat" and last_good is not None:
                    decay *= 0.5
                    chunk = last_good * decay
                else:
                    chunk = np.zeros(frame_samples, dtype=np.float64)
            out[index * frame_samples : (index + 1) * frame_samples] = chunk
        return out
