"""A subband audio codec with loss concealment.

Models the platforms' audio paths (Opus-like) at the level the paper
observes: a constant configured bitrate (Zoom ~90 Kbps, Webex ~45,
Meet ~40 -- Section 4.4), quantisation noise that shrinks with bitrate,
and per-frame transport so shaper drops translate into concealment
artefacts.  Concealment strategy is configurable because the paper
finds Zoom/Meet audio robust under caps while Webex audio degrades
audibly: platforms that conceal by waveform repetition keep MOS high
under moderate loss, zero-fill concealment does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import fft as sp_fft

from ..errors import CodecError, ConfigurationError
from .batching import batching_enabled

#: Audio frame duration used by the codec (Opus default frame).
FRAME_DURATION_S = 0.02


@dataclass(frozen=True)
class AudioCodecConfig:
    """Audio codec parameters.

    Attributes:
        bitrate_bps: Target (and effectively constant) bitrate.
        sample_rate: Input sample rate.
        concealment: ``"repeat"`` (decaying repetition of the last good
            frame, Zoom/Meet-style) or ``"silence"`` (zero fill,
            Webex-style).
    """

    bitrate_bps: float = 40_000.0
    sample_rate: int = 16_000
    concealment: str = "repeat"

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if self.concealment not in ("repeat", "silence"):
            raise ConfigurationError(
                f"unknown concealment mode: {self.concealment!r}"
            )

    @property
    def frame_samples(self) -> int:
        """Samples per codec frame."""
        return int(round(self.sample_rate * FRAME_DURATION_S))

    @property
    def frame_budget_bits(self) -> float:
        """Bit budget per codec frame."""
        return self.bitrate_bps * FRAME_DURATION_S


@dataclass
class EncodedAudioFrame:
    """One compressed audio frame (sparse DCT levels)."""

    index: int
    q_step: float
    indices: np.ndarray
    values: np.ndarray
    frame_samples: int
    size_bytes: int


class AudioCodec:
    """Encoder/decoder pair for 20 ms audio frames.

    The encoder DCT-transforms each frame, quantises with a step chosen
    per frame (binary search) to meet the bit budget, and reports the
    realised size.  The decoder inverts, and conceals missing frames
    according to the configured strategy.

    With ``batch`` on (the process default, see
    :mod:`repro.media.batching`), :meth:`encode` transforms every frame
    of the buffer in one ``(frames, samples)`` DCT call and fits all
    quantisers in one vectorised bisection -- bit-identical to the
    per-frame path, which stays available as :meth:`encode_frame` and
    as the ``batch=False`` fallback.
    """

    def __init__(
        self,
        config: Optional[AudioCodecConfig] = None,
        batch: Optional[bool] = None,
    ) -> None:
        self.config = config if config is not None else AudioCodecConfig()
        self.batch = batching_enabled(batch)
        self._next_index = 0

    # ----------------------------------------------------------------- #
    # Encoding.
    # ----------------------------------------------------------------- #

    def encode_frame(self, samples: np.ndarray) -> EncodedAudioFrame:
        """Encode one frame of exactly ``config.frame_samples`` samples."""
        expected = self.config.frame_samples
        if samples.shape != (expected,):
            raise CodecError(
                f"audio frame must have shape ({expected},), got {samples.shape}"
            )
        coeffs = sp_fft.dct(np.asarray(samples, dtype=np.float64), norm="ortho")
        budget = self.config.frame_budget_bits

        q_step = self._fit_quantiser(coeffs, budget)
        levels = np.round(coeffs / q_step).astype(np.int32)
        nonzero = np.nonzero(levels)[0]
        values = levels[nonzero].astype(np.int16)
        size_bytes = int(np.ceil(self._bits_for(values) / 8.0))

        frame = EncodedAudioFrame(
            index=self._next_index,
            q_step=q_step,
            indices=nonzero.astype(np.int32),
            values=values,
            frame_samples=expected,
            size_bytes=size_bytes,
        )
        self._next_index += 1
        return frame

    def encode(self, samples: np.ndarray) -> list[EncodedAudioFrame]:
        """Encode a multiple-of-frame-size buffer into frames.

        The batched path reshapes the buffer into a ``(frames,
        frame_samples)`` view -- one dtype conversion, no per-frame
        slice copies -- runs a single DCT over the matrix and fits all
        quantisers at once.  Sparse extraction and the realised-size
        model stay per frame (they are ragged), using exactly the
        per-frame arithmetic, so the emitted frames are bit-identical
        to an :meth:`encode_frame` loop.
        """
        frame_samples = self.config.frame_samples
        if len(samples) % frame_samples != 0:
            raise CodecError(
                f"buffer length {len(samples)} is not a multiple of "
                f"the frame size {frame_samples}"
            )
        if not self.batch:
            return [
                self.encode_frame(samples[i : i + frame_samples])
                for i in range(0, len(samples), frame_samples)
            ]
        frames = len(samples) // frame_samples
        if frames == 0:
            return []
        matrix = np.asarray(samples, dtype=np.float64).reshape(
            frames, frame_samples
        )
        coeff_stack = sp_fft.dct(matrix, norm="ortho")
        q_steps = self._fit_quantiser_batch(
            coeff_stack, self.config.frame_budget_bits
        )
        level_stack = np.round(coeff_stack / q_steps[:, None]).astype(np.int32)
        rows, cols = np.nonzero(level_stack)
        flat_values = level_stack[rows, cols].astype(np.int16)
        bounds = np.searchsorted(rows, np.arange(frames + 1))
        encoded: List[EncodedAudioFrame] = []
        for f in range(frames):
            start, end = bounds[f], bounds[f + 1]
            values = flat_values[start:end]
            encoded.append(
                EncodedAudioFrame(
                    index=self._next_index,
                    q_step=float(q_steps[f]),
                    indices=cols[start:end].astype(np.int32),
                    values=values,
                    frame_samples=frame_samples,
                    size_bytes=int(np.ceil(self._bits_for(values) / 8.0)),
                )
            )
            self._next_index += 1
        return encoded

    @staticmethod
    def _bits_for(values: np.ndarray) -> float:
        if values.size == 0:
            return 64.0
        magnitudes = np.abs(values.astype(np.float64))
        return float(np.sum(2.5 + 1.7 * np.log2(1.0 + magnitudes))) + 64.0

    @staticmethod
    def _probe_bits(levels: np.ndarray) -> np.ndarray:
        """Bit-model cost of non-negative quantised magnitudes.

        ``sum(2.5 + 1.7*log2(1+l) for nonzero l) + 64`` evaluated as
        ``1.7*sum(log2(1+l)) + 2.5*nnz + 64``: zero levels contribute
        an exact ``log2(1) == 0.0`` to the full-row sum, so no masking
        pass is needed, and the reduction along the last axis yields
        the same per-frame values as each row on its own (numpy's
        pairwise reduction runs per output element) -- the property the
        batched bisection's bit-identity rests on.
        """
        per_level = np.log2(1.0 + levels)
        return (
            1.7 * np.sum(per_level, axis=-1)
            + 2.5 * np.count_nonzero(levels, axis=-1)
            + 64.0
        )

    def _fit_quantiser(self, coeffs: np.ndarray, budget_bits: float) -> float:
        """Smallest power-ladder step whose levels fit the budget.

        The 24-probe bisection runs on ``|coeffs|`` directly: banker's
        rounding is sign-symmetric (``round(-x) == -round(x)``), so the
        level magnitudes -- the only thing the bit model reads -- are
        identical to rounding the signed coefficients.  This method
        runs once per 20 ms audio frame for every speaking participant,
        which made it one of the hottest non-packet paths in a full
        session; :meth:`_fit_quantiser_batch` is its vectorised twin
        and every probe here mirrors one lane of the batched loop
        (``math.sqrt``/``np.sqrt`` are both correctly rounded, and
        :meth:`_probe_bits` sums rows identically), keeping the two
        bit-identical.
        """
        lo, hi = 1e-4, 10.0
        magnitudes = np.abs(coeffs)
        for _ in range(24):
            mid = math.sqrt(lo * hi)
            levels = np.round(magnitudes / mid)
            if float(self._probe_bits(levels)) > budget_bits:
                lo = mid
            else:
                hi = mid
        return hi

    def _fit_quantiser_batch(
        self, coeff_stack: np.ndarray, budget_bits: float
    ) -> np.ndarray:
        """Per-frame quantiser fit over a ``(frames, samples)`` stack.

        Every frame runs the same 24 probes as :meth:`_fit_quantiser`
        with its own ``(lo, hi)`` bracket; one probe is one vectorised
        pass over the whole stack instead of ``frames`` numpy calls.
        """
        frames = coeff_stack.shape[0]
        lo = np.full(frames, 1e-4)
        hi = np.full(frames, 10.0)
        magnitudes = np.abs(coeff_stack)
        # Scratch buffers shared across probes: each pass writes the
        # rounded levels and their per-level log costs in place, so the
        # 24 probes allocate nothing but their (frames,) reductions.
        # The element arithmetic mirrors :meth:`_probe_bits` exactly.
        levels = np.empty_like(magnitudes)
        costs = np.empty_like(magnitudes)
        for _ in range(24):
            mid = np.sqrt(lo * hi)
            np.divide(magnitudes, mid[:, None], out=levels)
            np.round(levels, out=levels)
            nonzero = np.count_nonzero(levels, axis=-1)
            np.add(levels, 1.0, out=costs)
            np.log2(costs, out=costs)
            bits = 1.7 * costs.sum(axis=-1) + 2.5 * nonzero + 64.0
            over = bits > budget_bits
            lo = np.where(over, mid, lo)
            hi = np.where(over, hi, mid)
        return hi

    # ----------------------------------------------------------------- #
    # Decoding.
    # ----------------------------------------------------------------- #

    def decode_frame(self, frame: EncodedAudioFrame) -> np.ndarray:
        """Inverse-transform one encoded frame."""
        coeffs = np.zeros(frame.frame_samples, dtype=np.float64)
        coeffs[frame.indices] = frame.values.astype(np.float64) * frame.q_step
        return sp_fft.idct(coeffs, norm="ortho")


class AudioDecoder:
    """Stateful frame-sequence decoder with loss concealment.

    Feed frames with :meth:`push`; missing indices are concealed.  The
    final waveform is assembled with :meth:`waveform`.

    With ``batch`` on, pushed frames are only parked; the inverse
    transforms run lazily in one batched IDCT over every pending frame
    when the waveform is assembled.  The decoded samples are
    bit-identical to eager per-frame decoding (``batch=False``) -- the
    scatter into the coefficient matrix is the same arithmetic and the
    batched IDCT transforms each row exactly as a lone frame.
    """

    def __init__(self, codec: AudioCodec, batch: Optional[bool] = None) -> None:
        self._codec = codec
        self._batch = batching_enabled(batch)
        self._frames: dict[int, np.ndarray] = {}
        self._encoded: dict[int, EncodedAudioFrame] = {}
        self._max_index = -1
        self.frames_received = 0
        self.frames_concealed = 0

    def push(self, frame: EncodedAudioFrame) -> None:
        """Accept one encoded frame (in any order)."""
        if self._batch and frame.frame_samples == self._codec.config.frame_samples:
            # Park for the batched lazy decode; a duplicate push wins
            # over an already-decoded copy, as it does eagerly.
            self._encoded[frame.index] = frame
            self._frames.pop(frame.index, None)
        else:
            self._frames[frame.index] = self._codec.decode_frame(frame)
        self._max_index = max(self._max_index, frame.index)
        self.frames_received += 1

    def _decode_pending(self) -> None:
        """One batched IDCT over every frame parked by :meth:`push`."""
        if not self._encoded:
            return
        pending = list(self._encoded.items())
        self._encoded.clear()
        frame_samples = self._codec.config.frame_samples
        coeffs = np.zeros((len(pending), frame_samples), dtype=np.float64)
        for row, (_index, frame) in enumerate(pending):
            coeffs[row, frame.indices] = (
                frame.values.astype(np.float64) * frame.q_step
            )
        chunks = sp_fft.idct(coeffs, norm="ortho")
        for row, (index, _frame) in enumerate(pending):
            self._frames[index] = chunks[row]

    def waveform(self, total_frames: Optional[int] = None) -> np.ndarray:
        """Assemble the decoded signal, concealing missing frames.

        Args:
            total_frames: Length of the stream in frames; defaults to
                the highest index received + 1.
        """
        self._decode_pending()
        frame_samples = self._codec.config.frame_samples
        if total_frames is None:
            total_frames = self._max_index + 1
        if total_frames <= 0:
            return np.zeros(0, dtype=np.float64)
        out = np.zeros(total_frames * frame_samples, dtype=np.float64)
        last_good: Optional[np.ndarray] = None
        decay = 1.0
        mode = self._codec.config.concealment
        for index in range(total_frames):
            chunk = self._frames.get(index)
            if chunk is not None:
                last_good = chunk
                decay = 1.0
            else:
                self.frames_concealed += 1
                if mode == "repeat" and last_good is not None:
                    decay *= 0.5
                    chunk = last_good * decay
                else:
                    chunk = np.zeros(frame_samples, dtype=np.float64)
            out[index * frame_samples : (index + 1) * frame_samples] = chunk
        return out
