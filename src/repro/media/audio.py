"""Audio sources: deterministic synthetic signals.

The paper's audio QoE experiments inject recorded human speech and
score the received audio with ViSQOL in speech mode (Figure 18).  We
generate a *speech-like* signal instead: a harmonic series at a
modulated fundamental (voicing), shaped by a syllabic amplitude
envelope with pauses, plus a little breath noise.  This has the
spectro-temporal structure that the NSIM-style similarity metric in
:mod:`repro.qoe.visqol` responds to, while being exactly reproducible.

All sources are sample-indexed and deterministic for a given seed:
``samples(start, count)`` always returns the same waveform slice.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError, MediaError

#: Default sample rate, chosen to cover the speech band (ViSQOL's
#: speech mode operates on 16 kHz input).
DEFAULT_SAMPLE_RATE = 16_000


class AudioSource(abc.ABC):
    """Deterministic sample-indexed audio generator in [-1, 1]."""

    def __init__(self, sample_rate: int = DEFAULT_SAMPLE_RATE, seed: int = 0) -> None:
        if sample_rate < 8000:
            raise ConfigurationError(f"sample_rate too low: {sample_rate}")
        self.sample_rate = sample_rate
        self.seed = seed

    @abc.abstractmethod
    def samples(self, start: int, count: int) -> np.ndarray:
        """Return ``count`` float64 samples beginning at index ``start``."""

    def duration_samples(self, duration_s: float) -> int:
        """Sample count spanning ``duration_s`` seconds."""
        if duration_s < 0:
            raise MediaError("duration must be >= 0")
        return int(round(duration_s * self.sample_rate))

    def read_duration(self, start_s: float, duration_s: float) -> np.ndarray:
        """Read a window addressed in seconds."""
        start = int(round(start_s * self.sample_rate))
        return self.samples(start, self.duration_samples(duration_s))


class SilenceSource(AudioSource):
    """All-zero samples; the "no audio/video of their own" participant."""

    def samples(self, start: int, count: int) -> np.ndarray:
        return np.zeros(count, dtype=np.float64)


class ToneSource(AudioSource):
    """A pure sine tone, useful for codec and offset tests."""

    def __init__(
        self,
        frequency_hz: float = 440.0,
        amplitude: float = 0.5,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
    ) -> None:
        super().__init__(sample_rate, seed)
        if not 0 < frequency_hz < sample_rate / 2:
            raise ConfigurationError(f"frequency out of band: {frequency_hz}")
        if not 0 < amplitude <= 1.0:
            raise ConfigurationError(f"amplitude out of range: {amplitude}")
        self.frequency_hz = frequency_hz
        self.amplitude = amplitude

    def samples(self, start: int, count: int) -> np.ndarray:
        n = np.arange(start, start + count, dtype=np.float64)
        return self.amplitude * np.sin(
            2.0 * np.pi * self.frequency_hz * n / self.sample_rate
        )


class SpeechLikeSource(AudioSource):
    """Synthetic voiced speech: harmonics + syllabic envelope + pauses.

    Structure:

    * fundamental ~120 Hz with slow vibrato (voicing),
    * six harmonics with 1/k rolloff shaped by a formant-ish tilt,
    * a 4 Hz raised-cosine syllable envelope,
    * a pause of ``pause_duration_s`` every ``phrase_duration_s``
      (sentence rhythm),
    * low-level breath noise.
    """

    def __init__(
        self,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
        fundamental_hz: float = 120.0,
        syllable_rate_hz: float = 4.0,
        phrase_duration_s: float = 3.0,
        pause_duration_s: float = 0.4,
        noise_level: float = 0.01,
    ) -> None:
        super().__init__(sample_rate, seed)
        if fundamental_hz <= 0 or syllable_rate_hz <= 0:
            raise ConfigurationError("rates must be positive")
        if pause_duration_s >= phrase_duration_s:
            raise ConfigurationError("pause must be shorter than the phrase")
        self.fundamental_hz = fundamental_hz
        self.syllable_rate_hz = syllable_rate_hz
        self.phrase_duration_s = phrase_duration_s
        self.pause_duration_s = pause_duration_s
        self.noise_level = noise_level
        # The tiled breath-noise buffer depends only on the seed; the
        # streamer reads this source every audio tick, and regenerating
        # one second of gaussians per read dominated the source.
        self._noise_buffer = np.random.default_rng(self.seed).standard_normal(
            self.sample_rate
        )

    def samples(self, start: int, count: int) -> np.ndarray:
        n = np.arange(start, start + count, dtype=np.float64)
        t = n / self.sample_rate

        # Voicing: fundamental with 5 Hz vibrato of +-3%.
        vibrato = 1.0 + 0.03 * np.sin(2.0 * np.pi * 5.0 * t)
        phase = 2.0 * np.pi * self.fundamental_hz * vibrato * t

        # All six harmonics in one (6, count) sine call; the per-sample
        # products and the harmonic-order accumulation are unchanged,
        # so the summed signal matches the per-harmonic loop exactly.
        harmonics = np.arange(1.0, 7.0)
        sines = np.sin(harmonics[:, None] * phase)
        signal = np.zeros_like(t)
        for k, harmonic in enumerate(harmonics):
            rolloff = 1.0 / harmonic
            tilt = np.exp(-0.3 * (harmonic - 2.0) ** 2 / 4.0)  # formant bump
            signal += rolloff * tilt * sines[k]

        # Syllable envelope: raised cosine at the syllable rate.
        envelope = 0.5 * (
            1.0 - np.cos(2.0 * np.pi * self.syllable_rate_hz * t)
        )

        # Phrase gating: silence during the pause tail of each phrase.
        in_phrase = (t % self.phrase_duration_s) < (
            self.phrase_duration_s - self.pause_duration_s
        )
        envelope = envelope * in_phrase

        # Deterministic breath noise: a fixed per-seed buffer tiled
        # over the sample index (computed once in __init__).
        noise = self._noise_buffer[(n.astype(np.int64)) % len(self._noise_buffer)]

        out = 0.35 * signal * envelope + self.noise_level * noise
        return np.clip(out, -1.0, 1.0)
