"""Media substrate: feeds, loopback devices, codecs and A/V alignment.

This package replaces the paper's sensory pipeline.  Where the testbed
used ``v4l2loopback``/``snd-aloop`` virtual devices fed by ``ffmpeg``
and ``aplay`` replaying recorded clips, we generate deterministic
synthetic media:

* :mod:`repro.media.frames` / :mod:`repro.media.feeds` — video frame
  sources with controlled motion energy (low-motion talking head,
  high-motion tour, blank-with-periodic-flash for lag probing),
* :mod:`repro.media.audio` — a speech-like audio source,
* :mod:`repro.media.video_codec` — a real block-DCT video codec with
  rate control (quality loss is *computed*, not assumed),
* :mod:`repro.media.audio_codec` — a subband audio codec,
* :mod:`repro.media.loopback` — virtual camera/microphone devices,
* :mod:`repro.media.padding` — the Fig. 13 padding/cropping workflow,
* :mod:`repro.media.sync` — recording alignment (SSIM trim search,
  audio offset finder, loudness normalisation).
"""

from .audio import AudioSource, SpeechLikeSource, SilenceSource, ToneSource
from .audio_codec import AudioCodec, AudioCodecConfig, EncodedAudioFrame
from .batching import BATCH_DEFAULT, batching_enabled
from .feeds import FlashFeed, HighMotionFeed, LowMotionFeed, StaticFeed
from .frames import FrameSource, FrameSpec
from .loopback import VirtualCamera, VirtualMicrophone
from .padding import add_padding, crop_padding, resize_frame, resize_frames
from .sync import align_recordings, find_audio_offset, normalize_loudness
from .video_codec import (
    EncodedFrame,
    RateController,
    VideoCodec,
    VideoCodecConfig,
)

__all__ = [
    "AudioCodec",
    "AudioCodecConfig",
    "AudioSource",
    "BATCH_DEFAULT",
    "batching_enabled",
    "EncodedAudioFrame",
    "EncodedFrame",
    "FlashFeed",
    "FrameSource",
    "FrameSpec",
    "HighMotionFeed",
    "LowMotionFeed",
    "RateController",
    "SilenceSource",
    "SpeechLikeSource",
    "StaticFeed",
    "ToneSource",
    "VideoCodec",
    "VideoCodecConfig",
    "VirtualCamera",
    "VirtualMicrophone",
    "add_padding",
    "align_recordings",
    "crop_padding",
    "find_audio_offset",
    "normalize_loudness",
    "resize_frame",
    "resize_frames",
]
