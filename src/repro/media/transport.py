"""Media transport: fragmentation and reassembly of encoded frames.

Encoded video frames routinely exceed the MTU, so the sending client
fragments them into MTU-sized pieces and the receiver reassembles.  A
frame with any missing fragment is undecodable and counts as lost --
this is the mechanism by which shaper drops (Section 4.4's bandwidth
caps) become frozen video and QoE loss in Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Optional, Sequence, Set, TypeVar

from ..errors import MediaError
from .audio_codec import EncodedAudioFrame
from .video_codec import EncodedFrame

#: Fragment payload budget; matches the packetiser MTU in repro.net.
DEFAULT_FRAGMENT_BYTES = 1200

FrameT = TypeVar("FrameT")


@dataclass(frozen=True)
class ChunkFragment(Generic[FrameT]):
    """One transport fragment of an encoded frame.

    Slotted: one fragment is allocated per MTU of every encoded frame,
    which at scale is second only to packets themselves.

    Attributes:
        frame_index: Index of the frame this fragment belongs to.
        fragment_index: Position of this fragment within the frame.
        fragment_count: Total fragments of the frame.
        payload_bytes: Bytes of encoded data carried.
        frame: Reference to the full encoded frame.  Fragments share
            the reference; the reassembler only releases the frame to
            the decoder when every fragment has arrived, so carrying
            the reference does not leak undecodable data.
    """

    __slots__ = (
        "frame_index",
        "fragment_index",
        "fragment_count",
        "payload_bytes",
        "frame",
    )

    frame_index: int
    fragment_index: int
    fragment_count: int
    payload_bytes: int
    frame: FrameT


def fragment_frame(
    frame: FrameT,
    size_bytes: int,
    frame_index: int,
    mtu: int = DEFAULT_FRAGMENT_BYTES,
) -> List[ChunkFragment[FrameT]]:
    """Split an encoded frame into MTU-sized fragments.

    The last fragment carries the remainder; every frame yields at
    least one fragment (even a zero-byte frame needs a header).
    """
    if mtu <= 0:
        raise MediaError(f"mtu must be positive, got {mtu}")
    if size_bytes < 0:
        raise MediaError(f"size_bytes must be >= 0, got {size_bytes}")
    count = max(1, (size_bytes + mtu - 1) // mtu)
    fragments = []
    remaining = size_bytes
    for i in range(count):
        chunk = min(mtu, remaining) if i < count - 1 else remaining
        fragments.append(
            ChunkFragment(
                frame_index=frame_index,
                fragment_index=i,
                fragment_count=count,
                payload_bytes=max(chunk, 1),
                frame=frame,
            )
        )
        remaining -= chunk
    return fragments


def fragment_frames(
    frames: Sequence[FrameT],
    sizes: Sequence[int],
    indices: Sequence[int],
    mtu: int = DEFAULT_FRAGMENT_BYTES,
) -> List[List[ChunkFragment[FrameT]]]:
    """Fragment a burst of encoded frames in one pass.

    The batch twin of :func:`fragment_frame` for multi-frame senders
    (recorder-finalize-style bursts, ``encode_batch`` output): per
    frame the produced fragments are exactly
    ``fragment_frame(frame, size, index, mtu)``.  ``sizes`` is
    explicit because wire sizes can differ from ``frame.size_bytes``
    (the sender's wire-rate normalisation and clamping).
    """
    if not len(frames) == len(sizes) == len(indices):
        raise MediaError(
            f"frames/sizes/indices lengths differ: "
            f"{len(frames)}/{len(sizes)}/{len(indices)}"
        )
    return [
        fragment_frame(frame, size, index, mtu)
        for frame, size, index in zip(frames, sizes, indices)
    ]


def fragment_video_frame(
    frame: EncodedFrame, mtu: int = DEFAULT_FRAGMENT_BYTES
) -> List[ChunkFragment[EncodedFrame]]:
    """Fragment an encoded video frame."""
    return fragment_frame(frame, frame.size_bytes, frame.index, mtu)


def fragment_audio_frame(
    frame: EncodedAudioFrame, mtu: int = DEFAULT_FRAGMENT_BYTES
) -> List[ChunkFragment[EncodedAudioFrame]]:
    """Fragment an encoded audio frame (usually a single fragment)."""
    return fragment_frame(frame, frame.size_bytes, frame.index, mtu)


class Reassembler(Generic[FrameT]):
    """Collects fragments into frames; detects losses by progress.

    When a later frame completes while earlier frames are still
    incomplete, the earlier ones are declared lost (real-time media
    does not retransmit).  Callbacks:

    * ``on_frame(frame)`` -- a frame completed, in arrival order,
    * ``on_lost(frame_index)`` -- a frame was abandoned.
    """

    def __init__(
        self,
        on_frame: Callable[[FrameT], None],
        on_lost: Optional[Callable[[int], None]] = None,
        reorder_window: int = 2,
        fec_tolerance: float = 0.0,
    ) -> None:
        if reorder_window < 0:
            raise MediaError("reorder_window must be >= 0")
        if not 0.0 <= fec_tolerance < 1.0:
            raise MediaError("fec_tolerance must be in [0, 1)")
        self._on_frame = on_frame
        self._on_lost = on_lost
        self._reorder_window = reorder_window
        self._fec_tolerance = fec_tolerance
        self._pending: Dict[int, Set[int]] = {}
        self._frame_refs: Dict[int, FrameT] = {}
        self._fragment_counts: Dict[int, int] = {}
        self._delivered: Set[int] = set()
        self.frames_completed = 0
        self.frames_lost = 0
        self.fragments_received = 0

    def push(self, fragment: ChunkFragment[FrameT]) -> None:
        """Accept one fragment.

        A frame is delivered once its missing-fragment fraction is
        within ``fec_tolerance`` -- the model of the forward error
        correction and NACK retransmission real-time stacks use, which
        lets streams survive light loss (the unconstrained and
        lightly-capped scenarios) while heavy overload still starves
        frames entirely.
        """
        self.fragments_received += 1
        index = fragment.frame_index
        if index in self._delivered:
            return
        needed = self._pending.get(index)
        if needed is None:
            needed = set(range(fragment.fragment_count))
            self._pending[index] = needed
            self._frame_refs[index] = fragment.frame
            self._fragment_counts[index] = fragment.fragment_count
        needed.discard(fragment.fragment_index)
        tolerated = int(self._fec_tolerance * self._fragment_counts[index])
        if len(needed) <= tolerated:
            frame = self._frame_refs.pop(index)
            del self._pending[index]
            del self._fragment_counts[index]
            self._delivered.add(index)
            self.frames_completed += 1
            self._expire_older_than(index - self._reorder_window)
            self._on_frame(frame)

    def _expire_older_than(self, horizon: int) -> None:
        stale = [i for i in self._pending if i < horizon]
        for index in sorted(stale):
            del self._pending[index]
            del self._frame_refs[index]
            del self._fragment_counts[index]
            self.frames_lost += 1
            if self._on_lost is not None:
                self._on_lost(index)
        # Bound the delivered-set so very long sessions stay O(window).
        if len(self._delivered) > 4096:
            cutoff = max(self._delivered) - 2048
            self._delivered = {i for i in self._delivered if i >= cutoff}

    def flush(self) -> None:
        """Abandon all incomplete frames (end of session)."""
        self._expire_older_than(float("inf"))  # type: ignore[arg-type]
