"""Frame sources: deterministic generators of video frames.

Frames are single-channel (luma) ``uint8`` arrays of shape
``(height, width)``.  The QoE metrics in :mod:`repro.qoe` operate on
luma, which is also what PSNR/SSIM/VIFp are conventionally reported on.

A :class:`FrameSource` maps a frame index to a frame, deterministically
for a given seed, so the "injected video" of an experiment can be
regenerated bit-for-bit for full-reference comparison against the
recording -- the property the paper obtains by replaying the same video
file into the loopback device in every run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError, MediaError


@dataclass(frozen=True)
class FrameSpec:
    """Geometry and timing of a video feed.

    Attributes:
        width: Frame width in pixels.
        height: Frame height in pixels.
        fps: Frames per second.
    """

    width: int = 640
    height: int = 480
    fps: int = 30

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 16:
            raise ConfigurationError("frames must be at least 16x16")
        if self.fps < 1:
            raise ConfigurationError(f"fps must be >= 1, got {self.fps}")

    @property
    def shape(self) -> tuple[int, int]:
        """Numpy shape of one frame: (height, width)."""
        return (self.height, self.width)

    @property
    def pixels(self) -> int:
        """Pixels per frame."""
        return self.width * self.height

    def frame_duration(self) -> float:
        """Seconds per frame."""
        return 1.0 / self.fps

    def scaled(self, factor: float) -> "FrameSpec":
        """A spec scaled in both dimensions (for fast test runs)."""
        return FrameSpec(
            width=max(16, int(self.width * factor)),
            height=max(16, int(self.height * factor)),
            fps=self.fps,
        )


class FrameSource(abc.ABC):
    """Deterministic frame-index -> frame generator."""

    def __init__(self, spec: FrameSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    @abc.abstractmethod
    def frame(self, index: int) -> np.ndarray:
        """Return frame ``index`` as a ``uint8`` (height, width) array."""

    def frames(self, count: int, start: int = 0) -> list[np.ndarray]:
        """Materialise ``count`` consecutive frames."""
        if count < 0:
            raise MediaError(f"frame count must be >= 0, got {count}")
        return [self.frame(start + i) for i in range(count)]

    def motion_energy(self, index: int) -> float:
        """Mean absolute luma difference between consecutive frames.

        This is the quantity the codecs respond to; exposed for tests
        and for calibrating feed "motion levels".
        """
        if index <= 0:
            return 0.0
        current = self.frame(index).astype(np.float64)
        previous = self.frame(index - 1).astype(np.float64)
        return float(np.mean(np.abs(current - previous)))

    def mean_motion_energy(self, count: int = 30, start: int = 1) -> float:
        """Average motion energy over a window of frames."""
        if count < 1:
            raise MediaError("count must be >= 1")
        return float(
            np.mean([self.motion_energy(start + i) for i in range(count)])
        )

    def _rng_for(self, key: int) -> np.random.Generator:
        """A generator deterministic in (source seed, key)."""
        return np.random.default_rng((self.seed << 20) ^ key)


class CachedFrames(FrameSource):
    """A memoising proxy over a deterministic frame source.

    Sessions generate every content frame at least twice -- once when
    the camera tick feeds the encoder, once more when QoE scoring
    rebuilds the reference window -- and the sources are deterministic
    by contract, so the second generation is pure waste.  The proxy
    keeps a byte-bounded *keep-first* cache: both the camera and the
    scoring reference walk the stream from the front, so when a session
    outsizes the budget the retained prefix is exactly the part that
    gets re-read (a FIFO would evict everything before the second pass
    and never hit).  Frames are handed out as copies -- callers may
    freely mutate what they receive, as they could the fresh arrays.
    Unknown attributes (e.g. ``FlashFeed.flash_times``) delegate to the
    wrapped source.
    """

    def __init__(self, source: FrameSource, cache_bytes: int = 32 << 20) -> None:
        super().__init__(source.spec, source.seed)
        self.source = source
        self._cache: "dict[int, np.ndarray]" = {}
        self._cache_bytes = cache_bytes

    def frame(self, index: int) -> np.ndarray:
        cached = self._cache.get(index)
        if cached is None:
            cached = self.source.frame(index)
            capacity = max(1, self._cache_bytes // max(cached.nbytes, 1))
            if len(self._cache) < capacity:
                self._cache[index] = cached
        return cached.copy()

    def __getattr__(self, name: str):
        return getattr(self.source, name)


def smooth_noise_texture(
    rng: np.random.Generator,
    shape: tuple[int, int],
    smoothness: float = 6.0,
    low: float = 40.0,
    high: float = 210.0,
) -> np.ndarray:
    """A smooth random texture in float64, values in [low, high].

    Gaussian-filtered white noise, renormalised; used as backgrounds
    and scene content by the synthetic feeds.
    """
    noise = rng.standard_normal(shape)
    smooth = ndimage.gaussian_filter(noise, sigma=smoothness)
    lo, hi = float(smooth.min()), float(smooth.max())
    if hi - lo < 1e-12:
        return np.full(shape, (low + high) / 2.0)
    normal = (smooth - lo) / (hi - lo)
    return low + normal * (high - low)


def to_uint8(frame: np.ndarray) -> np.ndarray:
    """Clip and convert a float frame to uint8."""
    return np.clip(frame, 0, 255).astype(np.uint8)
