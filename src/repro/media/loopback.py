"""Loopback pseudo devices: the simulator's v4l2loopback / snd-aloop.

The paper's clients read from in-kernel virtual devices fed by a media
feeder replaying files (Figure 1).  These classes reproduce the device
boundary: a :class:`VirtualCamera` serves frames by wall-clock time and
a :class:`VirtualMicrophone` serves samples by wall-clock time, both
backed by deterministic sources.  Keeping this indirection (instead of
letting clients touch feeds directly) preserves the architecture that
makes the harness client-agnostic: a client only ever sees a "device".
"""

from __future__ import annotations

import numpy as np

from ..errors import MediaError
from .audio import AudioSource
from .frames import FrameSource


class VirtualCamera:
    """A v4l2loopback-style video device backed by a frame source."""

    def __init__(self, feed: FrameSource) -> None:
        self._feed = feed
        self.frames_served = 0

    @property
    def spec(self):
        """Geometry/timing of the device output."""
        return self._feed.spec

    def frame_index_at(self, time_s: float) -> int:
        """Frame index visible on the device at a given time."""
        if time_s < 0:
            raise MediaError(f"time must be >= 0, got {time_s}")
        return int(time_s * self._feed.spec.fps)

    def read_frame_at(self, time_s: float) -> np.ndarray:
        """Capture the frame visible at ``time_s``."""
        self.frames_served += 1
        return self._feed.frame(self.frame_index_at(time_s))

    def read_frame(self, index: int) -> np.ndarray:
        """Capture a specific frame index."""
        if index < 0:
            raise MediaError(f"frame index must be >= 0, got {index}")
        self.frames_served += 1
        return self._feed.frame(index)


class VirtualMicrophone:
    """An snd-aloop-style audio device backed by an audio source."""

    def __init__(self, source: AudioSource) -> None:
        self._source = source
        self.samples_served = 0

    @property
    def sample_rate(self) -> int:
        """Device sample rate."""
        return self._source.sample_rate

    def read_at(self, time_s: float, duration_s: float) -> np.ndarray:
        """Capture ``duration_s`` seconds starting at ``time_s``."""
        if time_s < 0 or duration_s < 0:
            raise MediaError("time and duration must be >= 0")
        samples = self._source.read_duration(time_s, duration_s)
        self.samples_served += len(samples)
        return samples
