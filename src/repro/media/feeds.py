"""The paper's video feeds, generated synthetically.

Section 4.3 uses two 640x480 feeds: "(i) a low-motion feed capturing the
upper body of a single person talking with occasional hand gestures in
an indoor environment, and (ii) a high-motion tour guide feed with
dynamically moving objects and scene changes".  Section 4.2 uses a
third: "a blank-screen with periodic flashes of an image (with
two-second periodicity)" for lag probing.

These classes generate frames with the same *statistical* character:

* :class:`LowMotionFeed` — static background, gently bobbing head
  ellipse, occasional hand-gesture blobs.  Small inter-frame residual.
* :class:`HighMotionFeed` — panning textured scene with moving objects
  and a hard scene cut every few seconds.  Large inter-frame residual.
* :class:`FlashFeed` — black frames with a bright textured flash frame
  every ``period_s`` seconds.
* :class:`StaticFeed` — a frozen frame, the degenerate baseline.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .frames import FrameSource, FrameSpec, smooth_noise_texture, to_uint8


class StaticFeed(FrameSource):
    """A completely still frame; zero motion energy."""

    def __init__(self, spec: FrameSpec, seed: int = 0) -> None:
        super().__init__(spec, seed)
        self._frame = to_uint8(
            smooth_noise_texture(self._rng_for(0), spec.shape, smoothness=8.0)
        )

    def frame(self, index: int) -> np.ndarray:
        return self._frame.copy()


class LowMotionFeed(FrameSource):
    """Single-person view against a stationary background.

    The head is an ellipse whose centre bobs by a couple of pixels at
    ~0.5 Hz; every ``gesture_period_s`` a small bright blob (a "hand")
    sweeps through the lower half of the frame for a few hundred ms.
    """

    def __init__(
        self,
        spec: FrameSpec,
        seed: int = 0,
        bob_amplitude_px: float = 2.0,
        gesture_period_s: float = 4.0,
        gesture_duration_s: float = 0.5,
    ) -> None:
        super().__init__(spec, seed)
        if gesture_period_s <= 0 or gesture_duration_s <= 0:
            raise ConfigurationError("gesture timing must be positive")
        self.bob_amplitude_px = bob_amplitude_px
        self.gesture_period_s = gesture_period_s
        self.gesture_duration_s = gesture_duration_s
        self._background = smooth_noise_texture(
            self._rng_for(1), spec.shape, smoothness=10.0, low=60, high=140
        )
        self._head_texture = smooth_noise_texture(
            self._rng_for(2), spec.shape, smoothness=3.0, low=120, high=230
        )
        yy, xx = np.mgrid[0 : spec.height, 0 : spec.width]
        self._yy = yy.astype(np.float64)
        self._xx = xx.astype(np.float64)

    def frame(self, index: int) -> np.ndarray:
        spec = self.spec
        t = index / spec.fps
        frame = self._background.copy()

        # Head: ellipse centred slightly above the middle, bobbing.
        cy = spec.height * 0.42 + self.bob_amplitude_px * np.sin(
            2.0 * np.pi * 0.5 * t
        )
        cx = spec.width * 0.5 + self.bob_amplitude_px * 0.6 * np.sin(
            2.0 * np.pi * 0.3 * t + 1.0
        )
        ry, rx = spec.height * 0.22, spec.width * 0.14
        head = ((self._yy - cy) / ry) ** 2 + ((self._xx - cx) / rx) ** 2 <= 1.0
        frame[head] = self._head_texture[head]

        # Shoulders: a static trapezoid below the head.
        shoulders = (self._yy > spec.height * 0.66) & (
            np.abs(self._xx - spec.width * 0.5) < spec.width * 0.28
        )
        frame[shoulders] = 0.5 * frame[shoulders] + 45.0

        # Occasional hand gesture: a bright blob sweeping sideways.
        phase = t % self.gesture_period_s
        if phase < self.gesture_duration_s:
            progress = phase / self.gesture_duration_s
            gx = spec.width * (0.30 + 0.4 * progress)
            gy = spec.height * 0.8
            radius = spec.width * 0.05
            blob = ((self._yy - gy) ** 2 + (self._xx - gx) ** 2) <= radius**2
            frame[blob] = 235.0
        return to_uint8(frame)


class HighMotionFeed(FrameSource):
    """Tour-guide style feed: panning scene, moving objects, scene cuts.

    Each scene is a distinct large texture panned across the viewport at
    ``pan_speed_px`` per frame, with ``num_objects`` bright blobs moving
    along independent trajectories.  Every ``scene_duration_s`` the
    scene changes entirely (hard cut), defeating inter-frame prediction
    just as the paper's dynamic outdoor scenes do.
    """

    def __init__(
        self,
        spec: FrameSpec,
        seed: int = 0,
        pan_speed_px: float = 4.0,
        scene_duration_s: float = 3.0,
        num_objects: int = 3,
    ) -> None:
        super().__init__(spec, seed)
        if scene_duration_s <= 0:
            raise ConfigurationError("scene_duration_s must be positive")
        if num_objects < 0:
            raise ConfigurationError("num_objects must be >= 0")
        self.pan_speed_px = pan_speed_px
        self.scene_duration_s = scene_duration_s
        self.num_objects = num_objects
        self._scene_cache: dict[int, np.ndarray] = {}
        yy, xx = np.mgrid[0 : spec.height, 0 : spec.width]
        self._yy = yy.astype(np.float64)
        self._xx = xx.astype(np.float64)

    def _scene_texture(self, scene_index: int) -> np.ndarray:
        """A wide texture for one scene; cached, panned by column roll."""
        if scene_index not in self._scene_cache:
            if len(self._scene_cache) > 8:
                self._scene_cache.clear()
            rng = self._rng_for(100 + scene_index)
            texture = smooth_noise_texture(
                rng,
                (self.spec.height, self.spec.width * 2),
                smoothness=4.0,
                low=30,
                high=225,
            )
            self._scene_cache[scene_index] = texture
        return self._scene_cache[scene_index]

    def frame(self, index: int) -> np.ndarray:
        spec = self.spec
        t = index / spec.fps
        frames_per_scene = max(1, int(self.scene_duration_s * spec.fps))
        scene_index = index // frames_per_scene
        within = index % frames_per_scene

        texture = self._scene_texture(scene_index)
        offset = int(within * self.pan_speed_px) % spec.width
        frame = texture[:, offset : offset + spec.width].copy()

        rng = self._rng_for(500 + scene_index)
        for obj in range(self.num_objects):
            # Each object: linear trajectory with its own velocity.
            x0 = rng.uniform(0, spec.width)
            y0 = rng.uniform(0, spec.height)
            vx = rng.uniform(-6, 6)
            vy = rng.uniform(-4, 4)
            brightness = rng.uniform(200, 255)
            ox = (x0 + vx * within) % spec.width
            oy = (y0 + vy * within) % spec.height
            radius = spec.width * 0.04
            blob = ((self._yy - oy) ** 2 + (self._xx - ox) ** 2) <= radius**2
            frame[blob] = brightness
        return to_uint8(frame)


class FlashFeed(FrameSource):
    """Blank screen with periodic flashes of an image (Section 4.2).

    Black frames compress to almost nothing; the flash frame (and the
    frame after it, which must erase the flash) produce bursts of big
    packets.  The lag detector keys on the first big packet after a
    quiescent period, exactly as in the paper's Figure 2.
    """

    def __init__(
        self,
        spec: FrameSpec,
        seed: int = 0,
        period_s: float = 2.0,
        flash_duration_s: float = 0.2,
    ) -> None:
        super().__init__(spec, seed)
        if period_s <= 0 or flash_duration_s <= 0:
            raise ConfigurationError("flash timing must be positive")
        if flash_duration_s >= period_s:
            raise ConfigurationError("flash must be shorter than the period")
        self.period_s = period_s
        self.flash_duration_s = flash_duration_s
        self._flash_image = to_uint8(
            smooth_noise_texture(
                self._rng_for(3), spec.shape, smoothness=2.5, low=80, high=255
            )
        )
        self._blank = np.zeros(spec.shape, dtype=np.uint8)

    def is_flash_frame(self, index: int) -> bool:
        """Whether frame ``index`` shows the flash image."""
        t = index / self.spec.fps
        return (t % self.period_s) < self.flash_duration_s

    def flash_times(self, duration_s: float) -> list[float]:
        """Times at which flashes begin within ``duration_s`` seconds."""
        times = []
        t = 0.0
        while t < duration_s:
            times.append(t)
            t += self.period_s
        return times

    def frame(self, index: int) -> np.ndarray:
        if self.is_flash_frame(index):
            return self._flash_image.copy()
        return self._blank.copy()
