"""The codec batching switch, mirroring the packet-path fast lane.

PR 5 vectorises both codecs: the audio codec runs one DCT (and one
quantiser fit) over a whole ``(frames, samples)`` matrix, the video
codec stacks block transforms over ``(frames, by, bx, 8, 8)`` where
frames are independent, and the audio decoder inverse-transforms every
received frame in a single batched call at waveform-assembly time.

Like the fast lane, batching is a pure execution strategy: every
batched path is **bit-identical** to its per-frame twin (proven by
``tests/test_codec_batch_equivalence.py``), so flipping it off is only
a debugging aid, never a correctness knob.

``BATCH_DEFAULT`` is consulted when a codec is built without an
explicit ``batch=`` argument -- the same shape as
:data:`repro.net.routing.FAST_LANE_DEFAULT`.  The bit-identity tests
(and anyone bisecting a suspected batching divergence) flip it off.
"""

from __future__ import annotations

from typing import Optional

#: Process-wide default for newly constructed codecs and decoders.
BATCH_DEFAULT = True


def batching_enabled(batch: Optional[bool]) -> bool:
    """Resolve a per-instance override against the process default."""
    return BATCH_DEFAULT if batch is None else bool(batch)
