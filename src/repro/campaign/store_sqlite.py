"""Sqlite campaign store backend.

Same contract as the JSONL store, backed by a single sqlite database:
the header lives in a ``meta`` table, each cell record is one row of
``cells`` with its serialized payload, and ``completed_ids`` is an
indexed query instead of a full-file re-scan -- the difference between
O(done) and O(grid) resume cost on a million-cell campaign.

Durability maps onto transactions: ``fsync_every=1`` commits per
append (a kill loses at most the in-flight cell), ``fsync_every=N``
commits every N appends, ``0`` only on close.  Uncommitted rows are
invisible to readers and simply re-run on resume -- the same contract
as an unsynced JSONL tail.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import CampaignError, StoreIntegrityError
from .store import CampaignStoreBase, CellRecord, GcStats

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    cell_id TEXT NOT NULL,
    status TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_by_id ON cells (cell_id, status);
"""


class SqliteCampaignStore(CampaignStoreBase):
    """Campaign persistence in one sqlite database file."""

    backend = "sqlite"

    def __init__(self, path: str, durability=None) -> None:
        super().__init__(path, durability)
        self._conn: Optional[sqlite3.Connection] = None
        self._uncommitted = 0

    # -- connection handling ---------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            try:
                conn = sqlite3.connect(self.path, timeout=30.0)
                # Per-append commits are the durability barrier; NORMAL
                # is enough when the policy already batches commits.
                sync = "FULL" if self.durability.fsync_every == 1 else "NORMAL"
                conn.execute(f"PRAGMA synchronous={sync}")
                conn.executescript(_SCHEMA)
                conn.commit()
            except sqlite3.Error as exc:
                raise CampaignError(
                    f"cannot open sqlite store {self.path!r}: {exc}"
                ) from exc
            self._conn = conn
        return self._conn

    def _read_conn(self) -> sqlite3.Connection:
        """A connection for reads that must not create the database."""
        if self._conn is not None:
            return self._conn
        if not os.path.exists(self.path):
            raise CampaignError(f"no campaign store at {self.path!r}")
        return self._connect()

    def _query(self, sql: str, args: Tuple[Any, ...] = ()) -> List[Any]:
        try:
            return self._read_conn().execute(sql, args).fetchall()
        except sqlite3.Error as exc:
            raise CampaignError(
                f"sqlite store {self.path!r} is unreadable: {exc}"
            ) from exc

    # -- reading ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def _load_header(self) -> Optional[Dict[str, Any]]:
        rows = self._query("SELECT value FROM meta WHERE key = 'header'")
        if not rows:
            return None
        try:
            return json.loads(rows[0][0])
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"sqlite store {self.path!r} has a corrupt header"
            ) from exc

    def _iter_payloads(self) -> Iterator[Dict[str, Any]]:
        for (payload,) in self._query(
            "SELECT payload FROM cells ORDER BY seq"
        ):
            try:
                yield json.loads(payload)
            except json.JSONDecodeError:
                raise CampaignError(
                    f"sqlite store {self.path!r}: corrupt cell payload"
                ) from None

    def completed_ids(self) -> Set[str]:
        # Indexed: never deserializes a payload, so resume cost scales
        # with the number of *distinct completed* cells, not record or
        # grid size.
        return {
            cell_id
            for (cell_id,) in self._query(
                "SELECT DISTINCT cell_id FROM cells WHERE status = 'ok'"
            )
        }

    def tail(self, cursor: Any = None) -> Tuple[List[CellRecord], Any]:
        last_seq = 0 if cursor is None else int(cursor)
        if not self.exists():
            return [], last_seq
        records: List[CellRecord] = []
        for seq, payload in self._query(
            "SELECT seq, payload FROM cells WHERE seq > ? ORDER BY seq",
            (last_seq,),
        ):
            records.append(CellRecord.from_dict(json.loads(payload)))
            last_seq = seq
        return records, last_seq

    # -- writing ---------------------------------------------------------

    def _write_header(self, header: Dict[str, Any]) -> None:
        conn = self._connect()
        try:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('header', ?)",
                (json.dumps(header, sort_keys=True),),
            )
            conn.commit()
        except sqlite3.Error as exc:
            raise CampaignError(
                f"cannot initialise sqlite store {self.path!r}: {exc}"
            ) from exc

    def _append_payload(self, payload: Dict[str, Any]) -> None:
        conn = self._connect()
        try:
            conn.execute(
                "INSERT INTO cells (cell_id, status, payload) "
                "VALUES (?, ?, ?)",
                (
                    payload["cell_id"],
                    payload["status"],
                    json.dumps(payload, sort_keys=True),
                ),
            )
        except sqlite3.Error as exc:
            raise CampaignError(
                f"cannot append to sqlite store {self.path!r}: {exc}"
            ) from exc
        self._uncommitted += 1
        every = self.durability.fsync_every
        if every and self._uncommitted >= every:
            conn.commit()
            self._uncommitted = 0

    def flush(self) -> None:
        if self._conn is not None and self._uncommitted:
            self._conn.commit()
            self._uncommitted = 0

    def close(self) -> None:
        if self._conn is not None:
            self.flush()
            self._conn.close()
            self._conn = None

    def sidecar_path(self, name: str) -> str:
        return f"{self.path}.{name}"

    # -- compaction ------------------------------------------------------

    def gc(self) -> GcStats:
        """Drop superseded error rows and vacuum the database.

        Sqlite has no torn tails to heal (uncommitted rows simply
        vanish), so ``debris_bytes`` is always 0 here; the reclaimed
        pages go back to the filesystem via ``VACUUM``.
        """
        if not self.exists():
            raise CampaignError(f"no campaign store at {self.path!r}")
        self.header()
        conn = self._connect()
        try:
            dropped = conn.execute(
                "DELETE FROM cells WHERE status != 'ok' AND cell_id IN "
                "(SELECT cell_id FROM cells WHERE status = 'ok')"
            ).rowcount
            if os.environ.get("REPRO_FAULT_PLAN"):
                # Crash window: dying before the commit rolls the
                # DELETE back, so a killed gc changes nothing.
                from .fabric.faults import fire_gc_crash
                fire_gc_crash()
            conn.commit()
            conn.execute("VACUUM")
            kept = conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        except sqlite3.Error as exc:
            raise CampaignError(
                f"cannot gc sqlite store {self.path!r}: {exc}"
            ) from exc
        return GcStats(int(kept), int(dropped), 0)
