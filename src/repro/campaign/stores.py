"""Store backend selection: one path/URI in, one backend out.

The backend is inferred from the store path::

    campaign.jsonl             -> JSONL single file (the default)
    campaign.sqlite / .db      -> sqlite database
    campaign.shards/ (a dir)   -> sharded directory

or forced with a URI-style prefix: ``jsonl:...``, ``sqlite:...``,
``shards:...``.  Every campaign entry point (runner, status, report,
watch) goes through :func:`open_store`, so any backend works anywhere
a store path is accepted.
"""

from __future__ import annotations

import os
from typing import Dict, Type

from ..errors import CampaignError
from .store import CampaignStoreBase, DurabilityPolicy, JsonlCampaignStore
from .store_shards import ShardedCampaignStore
from .store_sqlite import SqliteCampaignStore

#: scheme prefix -> backend class.
BACKENDS: Dict[str, Type[CampaignStoreBase]] = {
    "jsonl": JsonlCampaignStore,
    "sqlite": SqliteCampaignStore,
    "shards": ShardedCampaignStore,
}

#: file extensions that imply the sqlite backend.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: suffixes that imply the sharded-directory backend.
_SHARDS_SUFFIXES = (".shards", ".sharddir")


def resolve_backend(path: str) -> "tuple[str, str]":
    """Split a store path into ``(backend_name, concrete_path)``."""
    for scheme in BACKENDS:
        prefix = scheme + ":"
        if path.startswith(prefix):
            rest = path[len(prefix):]
            if not rest:
                raise CampaignError(f"store URI {path!r} is missing a path")
            return scheme, rest
    lowered = path.lower()
    if lowered.endswith(_SQLITE_SUFFIXES):
        return "sqlite", path
    if (
        lowered.rstrip("/").endswith(_SHARDS_SUFFIXES)
        or path.endswith(("/", os.sep))
        or os.path.isdir(path)
    ):
        return "shards", path
    return "jsonl", path


def open_store(
    path: str,
    durability: "DurabilityPolicy | int | None" = None,
    **backend_kwargs: object,
) -> CampaignStoreBase:
    """Open (not create) the store backend selected by ``path``.

    Args:
        path: Store path or ``scheme:path`` URI.
        durability: Append durability policy (fsync/commit cadence),
            see :class:`~repro.campaign.store.DurabilityPolicy`.
        **backend_kwargs: Backend extras (e.g. ``shards=16`` for a new
            sharded store).
    """
    if not path:
        raise CampaignError("a store needs a path")
    backend, concrete = resolve_backend(path)
    cls = BACKENDS[backend]
    # ``shards=None`` means "backend default" everywhere, and only the
    # sharded backend takes the kwarg at all.
    if backend != "shards" or backend_kwargs.get("shards") is None:
        backend_kwargs.pop("shards", None)
    return cls(concrete, durability=durability, **backend_kwargs)
