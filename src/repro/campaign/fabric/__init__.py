"""The distributed campaign fabric.

Everything that turns a campaign spec into a finished store when the
grid is too big for one process and one sitting:

* :mod:`~repro.campaign.fabric.executors` -- where cells run: inline,
  a crash-recovering process pool, or N owned local worker processes
  modeling multi-machine dispatch,
* :mod:`~repro.campaign.fabric.scheduler` -- sharding, dispatch,
  per-cell retry budgets, timeouts, durable checkpoints,
* :mod:`~repro.campaign.fabric.streaming` -- incremental folding of
  arriving records into live paper tables and progress,
* :mod:`~repro.campaign.fabric.watch` -- read-only live status over
  any store backend,
* :mod:`~repro.campaign.fabric.selfcheck` -- the kill/resume
  equivalence proof CI runs per backend.
"""

from .executors import (
    EXECUTORS,
    CellDone,
    ExecutorBase,
    InlineExecutor,
    LocalWorkerFabricExecutor,
    ProcessPoolFabricExecutor,
    UnitFailed,
    WorkUnit,
    make_executor,
)
from .scheduler import CampaignScheduler, FabricConfig
from .selfcheck import SelfCheckResult, run_all_selfchecks, run_selfcheck
from .streaming import ProgressSnapshot, StreamingAggregator
from .watch import render_snapshot, watch_store

__all__ = [
    "EXECUTORS",
    "CampaignScheduler",
    "CellDone",
    "ExecutorBase",
    "FabricConfig",
    "InlineExecutor",
    "LocalWorkerFabricExecutor",
    "ProcessPoolFabricExecutor",
    "ProgressSnapshot",
    "SelfCheckResult",
    "StreamingAggregator",
    "UnitFailed",
    "WorkUnit",
    "make_executor",
    "render_snapshot",
    "run_all_selfchecks",
    "run_selfcheck",
    "watch_store",
]
