"""The distributed campaign fabric.

Everything that turns a campaign spec into a finished store when the
grid is too big for one process and one sitting:

* :mod:`~repro.campaign.fabric.executors` -- where cells run: inline,
  a crash-recovering process pool, or N owned local worker processes
  modeling multi-machine dispatch,
* :mod:`~repro.campaign.fabric.scheduler` -- sharding, dispatch,
  per-cell retry budgets, timeouts, durable checkpoints,
* :mod:`~repro.campaign.fabric.streaming` -- incremental folding of
  arriving records into live paper tables and progress,
* :mod:`~repro.campaign.fabric.watch` -- read-only live status over
  any store backend,
* :mod:`~repro.campaign.fabric.selfcheck` -- the kill/resume
  equivalence proof CI runs per backend,
* :mod:`~repro.campaign.fabric.faults` -- the deterministic
  fault-injection plane (seeded fault plans, cross-process
  exactly-N-times firing, deterministic retry backoff),
* :mod:`~repro.campaign.fabric.chaos` -- the chaos matrix: every
  fault class against every backend, judged by bit-identity with a
  clean reference run.
"""

from .chaos import FAULT_CLASSES, ChaosCaseResult, run_chaos_case, run_chaos_matrix
from .executors import (
    EXECUTORS,
    CellDone,
    ExecutorBase,
    InlineExecutor,
    LocalWorkerFabricExecutor,
    ProcessPoolFabricExecutor,
    UnitFailed,
    WorkUnit,
    make_executor,
)
from .faults import FaultPlan, FaultSpec, backoff_delay
from .scheduler import CampaignScheduler, FabricConfig
from .selfcheck import (
    GcSelfCheckResult,
    SelfCheckResult,
    run_all_selfchecks,
    run_gc_selfcheck,
    run_selfcheck,
)
from .streaming import ProgressSnapshot, StreamingAggregator
from .watch import (
    load_fabric_health,
    render_fabric_health,
    render_snapshot,
    watch_store,
)

__all__ = [
    "EXECUTORS",
    "FAULT_CLASSES",
    "CampaignScheduler",
    "CellDone",
    "ChaosCaseResult",
    "ExecutorBase",
    "FabricConfig",
    "FaultPlan",
    "FaultSpec",
    "GcSelfCheckResult",
    "InlineExecutor",
    "LocalWorkerFabricExecutor",
    "ProcessPoolFabricExecutor",
    "ProgressSnapshot",
    "SelfCheckResult",
    "StreamingAggregator",
    "UnitFailed",
    "WorkUnit",
    "backoff_delay",
    "load_fabric_health",
    "make_executor",
    "render_fabric_health",
    "render_snapshot",
    "run_chaos_case",
    "run_chaos_matrix",
    "run_gc_selfcheck",
    "run_selfcheck",
    "run_all_selfchecks",
    "watch_store",
]
