"""Streaming aggregation: fold cell records into live paper tables.

The one-shot pipeline re-read the whole store at the end of a run to
build its report.  :class:`StreamingAggregator` instead folds each
:class:`~repro.campaign.store.CellRecord` as it arrives -- from the
scheduler during a run, or from ``store.tail()`` in ``campaign watch``
-- maintaining per-kind table rows, progress counters, failure lists
and a throughput window incrementally.  Only kinds that actually
received new records re-render their table (dirty tracking), and the
assembled report is *identical* to the batch one:
:func:`repro.campaign.aggregate.build_report` is itself implemented by
folding records through this class.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ...analysis.report import ExperimentReport
from ...analysis.tables import TextTable
from ..aggregate import KIND_TABLES, KIND_TITLES, status_rows_from_ids
from ..spec import CampaignSpec
from ..store import CellRecord

#: How many recent arrival timestamps feed the throughput estimate.
RATE_WINDOW = 64

#: How many recent failures a snapshot carries.
FAILURE_WINDOW = 8


@dataclass
class ProgressSnapshot:
    """One observation of a campaign's progress.

    Attributes:
        name: Campaign name.
        spec_hash: Spec hash from the store header.
        total: Cells in the grid.
        ok: Distinct cells completed successfully.
        failed: Distinct cells whose latest outcome is an error.
        pending: Cells with no successful record yet.
        cells_per_s: Completion rate over the recent arrival window
            (``None`` until two records have arrived).
        eta_s: Estimated seconds to finish pending cells at that rate.
        runtime_s: Total cell runtime folded so far.
        kind_rows: Per-kind ``[kind, total, done, failed, pending]``.
        recent_failures: Latest ``(cell_id, error)`` pairs.
    """

    name: str
    spec_hash: str
    total: int
    ok: int
    failed: int
    pending: int
    cells_per_s: Optional[float]
    eta_s: Optional[float]
    runtime_s: float
    kind_rows: List[List[object]] = field(default_factory=list)
    recent_failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every cell in the grid has succeeded."""
        return self.pending == 0


class StreamingAggregator:
    """Incremental fold of cell records into paper-style output.

    Fold order does not matter for the rendered tables (rows are keyed
    by cell id and rendered sorted), which is what makes the aggregate
    stable across executors, shard interleavings and resumes.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.total = spec.cell_count()
        self._ok: Dict[str, CellRecord] = {}
        self._failed: Dict[str, List[CellRecord]] = {}
        self._rows: Dict[str, Dict[str, List[List[object]]]] = {}
        self._kinds_with_ok: Set[str] = set()
        self._dirty: Set[str] = set()
        self._body_cache: Dict[str, str] = {}
        self._kind_ok: Dict[str, int] = {}
        self._kind_failed: Dict[str, int] = {}
        self._delta_dirty: Set[str] = set()
        self._delta_baseline: Dict[str, Tuple[int, int]] = {}
        self._ok_folds = 0
        self._runtime = 0.0
        self._arrivals: Deque[float] = deque(maxlen=RATE_WINDOW)
        self._recent_failures: Deque[Tuple[str, str]] = deque(
            maxlen=FAILURE_WINDOW
        )

    # -- folding ---------------------------------------------------------

    def fold(self, record: CellRecord,
             arrival: Optional[float] = None) -> None:
        """Absorb one cell record (from the scheduler or a store tail)."""
        self._runtime += record.duration_s
        self._arrivals.append(
            arrival if arrival is not None else time.monotonic()
        )
        if record.ok:
            self._ok_folds += 1
            if record.cell_id not in self._ok:
                self._kind_ok[record.kind] = (
                    self._kind_ok.get(record.kind, 0) + 1
                )
            self._ok[record.cell_id] = record
            if self._failed.pop(record.cell_id, None):
                self._kind_failed[record.kind] -= 1
            self._kinds_with_ok.add(record.kind)
            if record.metrics and record.kind in KIND_TABLES:
                rows = KIND_TABLES[record.kind].rows(record)
                self._rows.setdefault(record.kind, {})[record.cell_id] = rows
            self._dirty.add(record.kind)
            self._delta_dirty.add(record.kind)
        elif record.cell_id not in self._ok:
            bucket = self._failed.setdefault(record.cell_id, [])
            if not bucket:
                self._kind_failed[record.kind] = (
                    self._kind_failed.get(record.kind, 0) + 1
                )
            bucket.append(record)
            self._delta_dirty.add(record.kind)
            self._recent_failures.append(
                (record.cell_id, (record.error or "?").splitlines()[0])
            )

    def seed(self, records: "List[CellRecord]") -> None:
        """Fold records already persisted (resume / late attach).

        Seeded records share one arrival instant: replaying history in
        a tight loop must not fabricate a throughput estimate (the
        scheduler sizes work units from :attr:`cells_per_s`).
        """
        now = time.monotonic()
        for record in records:
            self.fold(record, arrival=now)

    # -- progress --------------------------------------------------------

    @property
    def ok_count(self) -> int:
        """Distinct cells completed successfully."""
        return len(self._ok)

    @property
    def failed_count(self) -> int:
        """Distinct cells whose latest outcome is an error."""
        return len(self._failed)

    def _rate(self) -> Optional[float]:
        if len(self._arrivals) < 2:
            return None
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return None
        return (len(self._arrivals) - 1) / span

    @property
    def cells_per_s(self) -> Optional[float]:
        """Completion rate over the recent arrival window.

        ``None`` until two records have arrived (or when they all
        landed in the same instant, e.g. a resume seed).  The scheduler
        reads this to size spawn work units adaptively.
        """
        return self._rate()

    def kind_deltas(self) -> List[Tuple[str, int, int]]:
        """Per-kind ``(kind, ok_delta, failed_delta)`` since last call.

        Dirty-tracked: only kinds that received records since the
        previous call are inspected, and kinds whose distinct ok/failed
        counts did not actually move are skipped.  Calling this resets
        the movement baseline, so ``campaign watch`` sees exactly the
        cells that landed between its ticks.
        """
        deltas: List[Tuple[str, int, int]] = []
        for kind in sorted(self._delta_dirty):
            current = (
                self._kind_ok.get(kind, 0),
                self._kind_failed.get(kind, 0),
            )
            last = self._delta_baseline.get(kind, (0, 0))
            if current != last:
                deltas.append(
                    (kind, current[0] - last[0], current[1] - last[1])
                )
            self._delta_baseline[kind] = current
        self._delta_dirty.clear()
        return deltas

    def snapshot(self) -> ProgressSnapshot:
        """Current progress (cells/s, ETA, per-kind counts)."""
        ok = self.ok_count
        pending = self.total - ok
        rate = self._rate()
        return ProgressSnapshot(
            name=self.spec.name,
            spec_hash=self.spec.spec_hash(),
            total=self.total,
            ok=ok,
            failed=self.failed_count,
            pending=pending,
            cells_per_s=rate,
            eta_s=(pending / rate) if rate and pending else None,
            runtime_s=self._runtime,
            kind_rows=status_rows_from_ids(
                self.spec, set(self._ok), set(self._failed)
            ),
            recent_failures=list(self._recent_failures),
        )

    # -- report assembly -------------------------------------------------

    def _section_body(self, kind: str) -> str:
        if kind in self._dirty or kind not in self._body_cache:
            spec = KIND_TABLES[kind]
            table = TextTable(list(spec.headers))
            rows_by_cell = self._rows.get(kind, {})
            for cell_id in sorted(rows_by_cell):
                for row in rows_by_cell[cell_id]:
                    table.add_row(row)
            self._body_cache[kind] = table.render()
            self._dirty.discard(kind)
        return self._body_cache[kind]

    def _failure_records(self) -> List[CellRecord]:
        return [
            record
            for cell_id in sorted(self._failed)
            for record in self._failed[cell_id]
        ]

    def refresh_report(self, report: ExperimentReport) -> ExperimentReport:
        """Upsert this aggregate's sections into a live report.

        Existing sections keep their position; only kinds that received
        new records since the last refresh re-render their table body.
        """
        failures = self._failure_records()
        summary = TextTable(["Kind", "Cells", "Completed", "Failed",
                             "Pending"])
        for row in status_rows_from_ids(
            self.spec, set(self._ok), set(self._failed)
        ):
            summary.add_row(row)
        report.replace_section(
            "Campaign summary",
            summary.render(),
            notes=[
                f"spec hash {self.spec.spec_hash()}, "
                f"master seed {self.spec.master_seed}",
                f"{self._ok_folds} cells stored, {len(failures)} failures, "
                f"{self._runtime:.1f} s of cell runtime",
            ],
        )
        for kind, title in KIND_TITLES.items():
            if kind in self._kinds_with_ok:
                report.replace_section(title, self._section_body(kind))
        if failures:
            table = TextTable(["Cell", "Error"])
            for record in failures:
                table.add_row([record.cell_id, record.error or "?"])
            report.replace_section("Failures", table.render())
        return report

    def build_report(self) -> ExperimentReport:
        """A fresh paper-style report from the folded records.

        Section order is canonical (summary, kinds in
        :data:`~repro.campaign.aggregate.KIND_TITLES` order, failures),
        so this matches a batch report built from the store.
        """
        return self.refresh_report(
            ExperimentReport(f"Campaign report: {self.spec.name}")
        )
