"""Live campaign status: tail any store backend, read-only.

``repro campaign watch <store>`` attaches to a store that another
process is writing -- JSONL file, sqlite database or sharded directory
-- and folds newly-appended records through a
:class:`~repro.campaign.fabric.streaming.StreamingAggregator`,
printing throughput, ETA, per-kind progress and recent failures on
each tick.  With ``--report`` it also keeps a Markdown report file
refreshed in place, so the paper tables grow live during a 48-hour
run.

Watching never writes to the store: backends only hand out read
handles for :meth:`tail`, and the cursor is backend-opaque (a byte
offset, a sqlite sequence number, a per-shard offset map).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, TextIO

from ...analysis.report import ExperimentReport
from ..stores import open_store
from .streaming import ProgressSnapshot, StreamingAggregator


def render_deltas(deltas: "list[tuple[str, int, int]]") -> str:
    """Per-kind movement lines for one watch tick.

    ``deltas`` comes from
    :meth:`~repro.campaign.fabric.streaming.StreamingAggregator.kind_deltas`;
    only kinds that actually moved appear, with signed ok/failed
    counts (a failure superseded by a retry's ok shows as ``-1
    failed``).
    """
    lines = []
    for kind, ok_delta, failed_delta in deltas:
        parts = []
        if ok_delta:
            parts.append(f"{ok_delta:+d} ok")
        if failed_delta:
            parts.append(f"{failed_delta:+d} failed")
        lines.append(f"  delta {kind:<10} {', '.join(parts)}")
    return "\n".join(lines)


def load_fabric_health(store: Any) -> Optional[Dict[str, Any]]:
    """The scheduler's checkpoint sidecar, or ``None``.

    The sidecar (``fabric.json`` next to the store) is where the
    scheduler persists degradation state -- retry attempts, worker-kill
    attribution, quarantined cells, executor downgrades and pending
    backoff waits.  Watching tolerates a missing or torn sidecar (the
    writer may be mid-``os.replace``).
    """
    path = store.sidecar_path("fabric.json")
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def render_fabric_health(checkpoint: Dict[str, Any],
                         now_wall: Optional[float] = None) -> str:
    """Degradation lines for one watch tick (empty if all healthy).

    Surfaces the hardening state a long watch actually needs: which
    cells are quarantined as poison, whether the crash-loop breaker
    degraded the executor, and which cells are sitting out a backoff
    wait (with seconds remaining against the wall clock).
    """
    now = time.time() if now_wall is None else now_wall
    lines = []
    quarantined = checkpoint.get("quarantined") or []
    if quarantined:
        shown = ", ".join(quarantined[:3])
        more = f" (+{len(quarantined) - 3} more)" if len(quarantined) > 3 else ""
        lines.append(
            f"  fabric: {len(quarantined)} quarantined poison cell(s): "
            f"{shown}{more}"
        )
    degraded = checkpoint.get("degraded")
    if degraded:
        lines.append(f"  fabric: executor degraded -- {degraded}")
    backoff = checkpoint.get("backoff") or {}
    waiting = sorted(
        (until - now, cell_id)
        for cell_id, until in backoff.items()
        if until - now > 0
    )
    if waiting:
        head = ", ".join(
            f"{cell_id} ({left:.1f}s)" for left, cell_id in waiting[:3]
        )
        more = f" (+{len(waiting) - 3} more)" if len(waiting) > 3 else ""
        lines.append(
            f"  fabric: {len(waiting)} cell(s) in retry backoff: "
            f"{head}{more}"
        )
    return "\n".join(lines)


def render_snapshot(snapshot: ProgressSnapshot) -> str:
    """One status block for a terminal tick."""
    rate = (
        f"{snapshot.cells_per_s:.1f} cells/s" if snapshot.cells_per_s
        else "rate n/a"
    )
    eta = (
        f"ETA {snapshot.eta_s:.0f}s" if snapshot.eta_s is not None
        else "ETA n/a"
    )
    lines = [
        f"campaign {snapshot.name!r} [{snapshot.spec_hash[:12]}]: "
        f"{snapshot.ok}/{snapshot.total} ok, {snapshot.failed} failed, "
        f"{snapshot.pending} pending | {rate}, {eta} | "
        f"{snapshot.runtime_s:.1f}s cell runtime"
    ]
    for kind, total, done, failed, pend in snapshot.kind_rows:
        lines.append(
            f"  {kind:<10} {done}/{total} done, {failed} failed, "
            f"{pend} pending"
        )
    for cell_id, error in snapshot.recent_failures:
        lines.append(f"  ! {cell_id}: {error}")
    return "\n".join(lines)


def watch_store(
    store_path: str,
    interval_s: float = 1.0,
    once: bool = False,
    report_path: Optional[str] = None,
    stream: Optional[TextIO] = None,
    max_ticks: Optional[int] = None,
) -> ProgressSnapshot:
    """Tail a store until its campaign completes (or ``once``).

    Args:
        store_path: Any store backend path/URI; must exist already.
        interval_s: Seconds between polls.
        once: Render a single snapshot and return (status check).
        report_path: Keep a Markdown report refreshed here each tick
            that brought new records.
        stream: Where status blocks go (default stdout).
        max_ticks: Stop after this many polls even if incomplete
            (mainly for tests and bounded CI watches).

    Returns:
        The final :class:`ProgressSnapshot` observed.
    """
    out = stream if stream is not None else sys.stdout
    store = open_store(store_path)
    spec = store.spec()  # raises CampaignError if the store is missing
    aggregator = StreamingAggregator(spec)
    report: Optional[ExperimentReport] = None
    if report_path is not None:
        report = ExperimentReport(f"Campaign report: {spec.name}")
    cursor: Any = None
    ticks = 0
    while True:
        records, cursor = store.tail(cursor)
        for record in records:
            aggregator.fold(record)
        snapshot = aggregator.snapshot()
        # The first tick folds history, so it only sets the movement
        # baseline; later ticks print what landed since the previous
        # one.
        deltas = aggregator.kind_deltas()
        print(render_snapshot(snapshot), file=out, flush=True)
        if ticks and deltas:
            print(render_deltas(deltas), file=out, flush=True)
        checkpoint = load_fabric_health(store)
        if checkpoint is not None:
            health = render_fabric_health(checkpoint)
            if health:
                print(health, file=out, flush=True)
        if report is not None and (records or ticks == 0):
            aggregator.refresh_report(report)
            report.save(report_path)
        ticks += 1
        if once or snapshot.complete:
            return snapshot
        if max_ticks is not None and ticks >= max_ticks:
            return snapshot
        time.sleep(interval_s)
