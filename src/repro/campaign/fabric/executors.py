"""Executor abstraction: where and how work units actually run.

The scheduler speaks one protocol -- ``submit(WorkUnit)`` then
``poll()`` for events -- and three executors implement it:

* :class:`InlineExecutor` -- every cell in-process (pure, debuggable,
  no forks; the ``workers == 1`` path).
* :class:`ProcessPoolFabricExecutor` -- a
  :class:`~concurrent.futures.ProcessPoolExecutor` with crash
  recovery: a dead worker (OOM, segfault, SIGKILL) surfaces as
  ``UnitFailed`` events for the in-flight units and a fresh pool,
  never as an exception that aborts the campaign.
* :class:`LocalWorkerFabricExecutor` -- N long-lived worker processes
  the executor owns outright, fed one unit at a time over per-worker
  queues with per-cell progress reporting.  This is the shape of
  multi-machine dispatch: the parent knows exactly which unit each
  worker holds, detects death by liveness (not by a shared pool
  breaking), enforces per-cell timeouts by killing the worker, and
  requeues only the cells the worker never reported.

Executors never decide policy: they report what happened and the
scheduler owns retries, error records and checkpointing.
"""

from __future__ import annotations

import queue as queue_module
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

import multiprocessing

from ...errors import CampaignError
from ..runner import execute_cell, execute_unit


@dataclass(frozen=True)
class WorkUnit:
    """One shard of the grid: the unit executors dispatch and retry."""

    unit_id: int
    payloads: "tuple[Dict[str, Any], ...]"


@dataclass(frozen=True)
class CellDone:
    """One cell finished (ok or error-status record payload)."""

    unit_id: int
    result: Dict[str, Any]


@dataclass(frozen=True)
class UnitFailed:
    """A unit's executor died under it (crash/timeout), not the cell.

    ``pending`` holds the payloads that produced no result; the
    scheduler requeues or error-records them by retry budget.

    ``worker_death`` marks failures where the worker *executing this
    unit* actually died (crash or timeout-kill), as opposed to
    collateral damage (a shared pool resetting under an innocent unit)
    or an orderly abandon.  The scheduler's poison-cell accounting
    attributes a kill to the unit's first unfinished cell only when
    this is set, so innocents never accumulate kills toward
    quarantine.
    """

    unit_id: int
    pending: "tuple[Dict[str, Any], ...]"
    reason: str
    worker_death: bool = False


Event = Any


class ExecutorBase:
    """Common surface: submit units, poll events, shut down."""

    name = "base"

    def __init__(self, workers: int = 1,
                 cell_timeout_s: Optional[float] = None) -> None:
        self.workers = max(1, int(workers))
        self.cell_timeout_s = cell_timeout_s

    def start(self) -> None:
        """Allocate worker resources."""

    def submit(self, unit: WorkUnit) -> None:
        """Enqueue one unit for execution."""
        raise NotImplementedError

    def poll(self, timeout: float = 0.25) -> List[Event]:
        """Wait up to ``timeout`` seconds and return new events."""
        raise NotImplementedError

    def outstanding(self) -> int:
        """Units submitted but not yet fully reported."""
        raise NotImplementedError

    def abandon(self) -> List["UnitFailed"]:
        """Surrender every queued and in-flight unit.

        Returns one ``UnitFailed`` per surrendered unit (with
        ``worker_death=False`` -- this is an orderly handoff, not a
        crash) and forgets them, so the scheduler can resubmit the
        pending payloads elsewhere.  Used by the crash-loop breaker
        when it degrades a dying executor to ``inline``.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (idempotent)."""


class InlineExecutor(ExecutorBase):
    """Run every cell in the calling process."""

    name = "inline"

    def __init__(self, workers: int = 1,
                 cell_timeout_s: Optional[float] = None) -> None:
        super().__init__(workers=1, cell_timeout_s=cell_timeout_s)
        self._queue: Deque[WorkUnit] = deque()

    def submit(self, unit: WorkUnit) -> None:
        self._queue.append(unit)

    def poll(self, timeout: float = 0.25) -> List[Event]:
        if not self._queue:
            return []
        unit = self._queue.popleft()
        return [
            CellDone(unit.unit_id, execute_cell(payload))
            for payload in unit.payloads
        ]

    def outstanding(self) -> int:
        return len(self._queue)

    def abandon(self) -> List[UnitFailed]:
        events = [
            UnitFailed(unit.unit_id, unit.payloads, "executor abandoned")
            for unit in self._queue
        ]
        self._queue.clear()
        return events


@dataclass
class _TrackedFuture:
    unit: WorkUnit
    running_since: Optional[float] = None


class ProcessPoolFabricExecutor(ExecutorBase):
    """Process-pool execution with worker-crash recovery.

    ``concurrent.futures`` poisons *every* outstanding future with
    :class:`BrokenProcessPool` when any worker dies; this executor
    converts that into per-unit ``UnitFailed`` events and transparently
    rebuilds the pool, so one OOM-killed cell costs one retry, not a
    48-hour campaign.
    """

    name = "pool"

    def __init__(self, workers: int = 2,
                 cell_timeout_s: Optional[float] = None) -> None:
        super().__init__(workers=workers, cell_timeout_s=cell_timeout_s)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Any, _TrackedFuture] = {}

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, unit: WorkUnit) -> None:
        self.start()
        future = self._pool.submit(execute_unit, list(unit.payloads))
        self._futures[future] = _TrackedFuture(unit)

    def _fail_outstanding(self, reason: str,
                          death_ids: "frozenset[int]" = frozenset()
                          ) -> List[Event]:
        # Only the units whose worker actually died (``death_ids``)
        # carry worker_death; the rest are collateral of the shared
        # pool resetting and must not count toward poison quarantine.
        events: List[Event] = [
            UnitFailed(t.unit.unit_id, t.unit.payloads, reason,
                       worker_death=t.unit.unit_id in death_ids)
            for t in self._futures.values()
        ]
        self._futures.clear()
        return events

    def _rebuild_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # Reach into the pool to kill stuck workers before the
            # fresh pool starts; shutdown() alone would block on (or
            # leak) a worker that is looping or hung.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.kill()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        self.start()

    def poll(self, timeout: float = 0.25) -> List[Event]:
        if not self._futures:
            return []
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        events: List[Event] = []
        broken = False
        for future in done:
            tracked = self._futures.pop(future)
            unit = tracked.unit
            try:
                results = future.result()
            except BrokenProcessPool:
                broken = True
                events.append(
                    UnitFailed(unit.unit_id, unit.payloads,
                               "worker process died", worker_death=True)
                )
            except Exception as exc:  # noqa: BLE001 - executor fault
                events.append(
                    UnitFailed(unit.unit_id, unit.payloads,
                               f"executor failure: {exc}")
                )
            else:
                events.extend(
                    CellDone(unit.unit_id, result) for result in results
                )
        if broken:
            events.extend(self._fail_outstanding("worker process died"))
            self._rebuild_pool()
            return events
        if self.cell_timeout_s is not None:
            now = time.monotonic()
            expired: "set[int]" = set()
            for future, tracked in self._futures.items():
                if future.running() and tracked.running_since is None:
                    tracked.running_since = now
                if (
                    tracked.running_since is not None
                    and now - tracked.running_since > self.cell_timeout_s
                ):
                    expired.add(tracked.unit.unit_id)
            if expired:
                # One shared pool: killing the stuck worker kills the
                # pool, so every in-flight unit restarts on the fresh
                # one (their completed cells were already reported).
                # Only the expired units count as worker deaths.
                events.extend(self._fail_outstanding(
                    f"cell timeout after {self.cell_timeout_s:.1f}s "
                    "(pool reset)", death_ids=frozenset(expired)
                ))
                self._rebuild_pool()
        return events

    def outstanding(self) -> int:
        return len(self._futures)

    def abandon(self) -> List[UnitFailed]:
        events = [
            UnitFailed(t.unit.unit_id, t.unit.payloads,
                       "executor abandoned")
            for t in self._futures.values()
        ]
        self._futures.clear()
        return events

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._futures.clear()


def _local_worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: pull a unit, report per-cell progress, repeat.

    Runs in a child process.  The ``claim`` message before each cell is
    what lets the parent requeue precisely the unreported cells when
    this process dies mid-unit.
    """
    while True:
        item = task_queue.get()
        if item is None:
            break
        unit_id, payloads = item
        for payload in payloads:
            result_queue.put(("claim", worker_id, unit_id,
                              payload["cell_id"]))
            record = execute_cell(payload)
            result_queue.put(("done", worker_id, unit_id, record))
        result_queue.put(("unit-done", worker_id, unit_id, None))


@dataclass
class _WorkerSlot:
    worker_id: int
    process: Any
    task_queue: Any
    unit: Optional[WorkUnit] = None
    reported: "set[str]" = field(default_factory=set)
    last_progress: float = 0.0


class LocalWorkerFabricExecutor(ExecutorBase):
    """N owned worker processes fed one unit at a time.

    Models multi-machine dispatch locally: explicit per-worker
    assignment (the parent always knows which unit each worker holds),
    liveness-based crash detection, per-cell timeouts enforced by
    killing the worker, and a replacement worker spawned in its slot.
    """

    name = "spawn"

    def __init__(self, workers: int = 2,
                 cell_timeout_s: Optional[float] = None) -> None:
        super().__init__(workers=workers, cell_timeout_s=cell_timeout_s)
        self._ctx = multiprocessing.get_context()
        self._result_queue = None
        self._slots: List[_WorkerSlot] = []
        self._pending: Deque[WorkUnit] = deque()
        self._next_worker_id = 0

    def start(self) -> None:
        if self._result_queue is None:
            self._result_queue = self._ctx.Queue()
            self._slots = [self._spawn_slot() for _ in range(self.workers)]

    def _spawn_slot(self) -> _WorkerSlot:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_local_worker_main,
            args=(worker_id, task_queue, self._result_queue),
            daemon=True,
        )
        process.start()
        return _WorkerSlot(worker_id=worker_id, process=process,
                           task_queue=task_queue)

    def _slot_by_worker(self, worker_id: int) -> Optional[_WorkerSlot]:
        for slot in self._slots:
            if slot.worker_id == worker_id:
                return slot
        return None  # a replaced worker's stale message

    def submit(self, unit: WorkUnit) -> None:
        self.start()
        self._pending.append(unit)
        self._dispatch()

    def _dispatch(self) -> None:
        for slot in self._slots:
            if not self._pending:
                return
            if slot.unit is None and slot.process.is_alive():
                unit = self._pending.popleft()
                slot.unit = unit
                slot.reported = set()
                slot.last_progress = time.monotonic()
                slot.task_queue.put((unit.unit_id, list(unit.payloads)))

    def _drain(self, timeout: float) -> List[Event]:
        events: List[Event] = []
        block = timeout
        while True:
            try:
                message = self._result_queue.get(timeout=block)
            except queue_module.Empty:
                return events
            block = 0.0  # drain whatever else is ready without waiting
            tag, worker_id, unit_id, body = message
            slot = self._slot_by_worker(worker_id)
            if tag == "claim":
                if slot is not None:
                    slot.last_progress = time.monotonic()
            elif tag == "done":
                events.append(CellDone(unit_id, body))
                if slot is not None:
                    slot.reported.add(body["cell_id"])
                    slot.last_progress = time.monotonic()
            elif tag == "unit-done":
                if slot is not None and slot.unit is not None \
                        and slot.unit.unit_id == unit_id:
                    slot.unit = None

    def poll(self, timeout: float = 0.25) -> List[Event]:
        self.start()
        events = self._drain(timeout)
        now = time.monotonic()
        for index, slot in enumerate(self._slots):
            reason = None
            if not slot.process.is_alive():
                reason = "worker process died"
            elif (
                slot.unit is not None
                and self.cell_timeout_s is not None
                and now - slot.last_progress > self.cell_timeout_s
            ):
                reason = (
                    f"cell timeout after {self.cell_timeout_s:.1f}s "
                    "(worker killed)"
                )
                slot.process.kill()
                slot.process.join(timeout=5.0)
            if reason is None:
                continue
            if slot.unit is not None:
                pending = tuple(
                    payload for payload in slot.unit.payloads
                    if payload["cell_id"] not in slot.reported
                )
                # This worker owned the unit outright, so both death
                # and timeout-kill are real worker deaths; cells run
                # in order, so pending[0] is the cell it died under.
                events.append(
                    UnitFailed(slot.unit.unit_id, pending, reason,
                               worker_death=True)
                )
            self._slots[index] = self._spawn_slot()
        self._dispatch()
        return events

    def outstanding(self) -> int:
        return len(self._pending) + sum(
            1 for slot in self._slots if slot.unit is not None
        )

    def abandon(self) -> List[UnitFailed]:
        events = [
            UnitFailed(unit.unit_id, unit.payloads, "executor abandoned")
            for unit in self._pending
        ]
        self._pending.clear()
        for slot in self._slots:
            if slot.unit is None:
                continue
            pending = tuple(
                payload for payload in slot.unit.payloads
                if payload["cell_id"] not in slot.reported
            )
            events.append(
                UnitFailed(slot.unit.unit_id, pending,
                           "executor abandoned")
            )
            slot.unit = None
        return events

    def shutdown(self) -> None:
        for slot in self._slots:
            if slot.process.is_alive():
                try:
                    slot.task_queue.put(None)
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
        for slot in self._slots:
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
        self._slots = []
        self._pending.clear()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None


#: executor name -> class; ``auto`` resolves by worker count.
EXECUTORS = {
    InlineExecutor.name: InlineExecutor,
    ProcessPoolFabricExecutor.name: ProcessPoolFabricExecutor,
    LocalWorkerFabricExecutor.name: LocalWorkerFabricExecutor,
}


def make_executor(name: str, workers: int,
                  cell_timeout_s: Optional[float] = None) -> ExecutorBase:
    """Build the executor for a run (``auto`` picks by worker count)."""
    if name == "auto":
        name = InlineExecutor.name if workers <= 1 \
            else ProcessPoolFabricExecutor.name
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise CampaignError(
            f"unknown executor {name!r}; expected one of "
            f"{('auto',) + tuple(EXECUTORS)}"
        ) from None
    return cls(workers=workers, cell_timeout_s=cell_timeout_s)
