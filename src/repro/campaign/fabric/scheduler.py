"""The sharded campaign scheduler: dispatch, retry, checkpoint, fold.

:class:`CampaignScheduler` owns everything between a
:class:`~repro.campaign.spec.CampaignSpec` and a finished store:

* expands the grid, subtracts completed cells, shards the remainder
  into :class:`~repro.campaign.fabric.executors.WorkUnit`\\ s sized for
  the executor,
* dispatches through any :class:`ExecutorBase` and folds events --
  cells append to the store *as they arrive*, unit failures (worker
  crash, timeout) consume one retry attempt per pending cell and
  requeue,
* exhausted retry budgets become synthesized error records, so the
  campaign always terminates with one final outcome per cell,
* persists a checkpoint sidecar (attempt counts) atomically alongside
  the store, so ``--resume`` after a SIGKILL continues mid-grid with
  the retry budget intact,
* streams every record through a
  :class:`~repro.campaign.fabric.streaming.StreamingAggregator`, so
  paper tables and progress are live during the run.

Determinism contract: cell content depends only on the spec (derived
seeds), never on sharding, executor choice, retries or interleaving --
which is what makes a killed-and-resumed store bit-identical in cell
content to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ...errors import CampaignError
from ..runner import CampaignRunSummary, ProgressFn, _cell_payload
from ..spec import CampaignSpec
from ..store import DurabilityPolicy, CellRecord
from ..stores import open_store
from .executors import CellDone, UnitFailed, WorkUnit, make_executor
from .streaming import StreamingAggregator

#: Checkpoint sidecar name (lives next to / inside the store).
CHECKPOINT_NAME = "fabric.json"

#: Seconds of estimated work one spawn unit should carry once the
#: streaming aggregator has a live cells/s estimate.
ADAPTIVE_UNIT_SECONDS = 2.0

#: Hard cap on cells per unit, so one unit never monopolises a worker.
MAX_SHARD_SIZE = 16


@dataclass(frozen=True)
class FabricConfig:
    """Scheduling policy for one campaign run.

    Attributes:
        workers: Worker count (``1`` stays in-process).
        executor: ``auto``, ``inline``, ``pool`` or ``spawn``.
        shard_size: Cells per work unit (``None``: sized per executor
            -- single-cell units for inline/pool, coarser shards for
            spawn workers to amortise queue round-trips).
        max_attempts: Attempts per cell before a synthesized error
            record.
        cell_timeout_s: Per-cell wall-clock budget (``None``: no
            timeout).
        durability: Store durability policy (``None``: fsync every
            record).
        shards: Shard count for the sharded-directory backend.
        poll_interval_s: Executor poll granularity.
        checkpoint_every: Events between checkpoint writes.
    """

    workers: int = 1
    executor: str = "auto"
    shard_size: Optional[int] = None
    max_attempts: int = 2
    cell_timeout_s: Optional[float] = None
    durability: "DurabilityPolicy | int | None" = None
    shards: Optional[int] = None
    poll_interval_s: float = 0.25
    checkpoint_every: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise CampaignError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.max_attempts < 1:
            raise CampaignError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise CampaignError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )

    def resolve_shard_size(self, pending: int,
                           cells_per_s: Optional[float] = None) -> int:
        """Cells per unit for this batch of work.

        Inline and pool executors take single-cell units: results land
        (and persist) per cell, and the pool already amortises dispatch.
        Spawn workers pay a queue round-trip per unit, so they get
        coarser shards.  With no throughput estimate yet (the initial
        submit) the static heuristic applies -- about four units per
        worker across the run.  Once the streaming aggregator has a
        live ``cells_per_s``, units are sized to carry roughly
        :data:`ADAPTIVE_UNIT_SECONDS` of work per worker instead:
        sub-second calibration cells coalesce into coarse units, while
        multi-second paper cells requeue as fine-grained (often
        single-cell) units so a retry never re-runs a long stretch of
        finished work.  Either way the size is capped at
        :data:`MAX_SHARD_SIZE` and at the work actually pending.
        """
        if self.shard_size is not None:
            return self.shard_size
        if self.executor != "spawn":
            return 1
        if cells_per_s and cells_per_s > 0:
            per_unit = int((cells_per_s / self.workers)
                           * ADAPTIVE_UNIT_SECONDS)
            return max(1, min(per_unit, MAX_SHARD_SIZE, pending))
        per_worker = max(1, pending // (self.workers * 4))
        return min(per_worker, MAX_SHARD_SIZE)


class CampaignScheduler:
    """Run one campaign spec to completion against a store."""

    def __init__(self, spec: CampaignSpec, store_path: str,
                 config: Optional[FabricConfig] = None) -> None:
        self.spec = spec
        self.store_path = store_path
        self.config = config or FabricConfig()
        #: Live aggregate of every record this run has seen (including
        #: records folded from the store on resume).
        self.aggregator = StreamingAggregator(spec)
        self._attempts: Dict[str, int] = {}
        self._events_since_checkpoint = 0

    # -- checkpointing ---------------------------------------------------

    def _checkpoint_path(self, store: Any) -> str:
        return store.sidecar_path(CHECKPOINT_NAME)

    def _load_checkpoint(self, store: Any) -> None:
        path = self._checkpoint_path(store)
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # a torn checkpoint costs only retry-budget memory
        if state.get("spec_hash") != self.spec.spec_hash():
            return
        attempts = state.get("attempts", {})
        if isinstance(attempts, dict):
            self._attempts = {
                str(cell_id): int(count)
                for cell_id, count in attempts.items()
            }

    def _save_checkpoint(self, store: Any) -> None:
        path = self._checkpoint_path(store)
        state = {
            "spec_hash": self.spec.spec_hash(),
            "attempts": self._attempts,
            "updated_at": time.time(),
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._events_since_checkpoint = 0

    def _clear_checkpoint(self, store: Any) -> None:
        try:
            os.remove(self._checkpoint_path(store))
        except OSError:
            pass

    # -- the run ---------------------------------------------------------

    def run(self, resume: bool = False,
            progress: Optional[ProgressFn] = None) -> CampaignRunSummary:
        """Execute the campaign; see :func:`repro.campaign.run_campaign`."""
        config = self.config
        store = open_store(
            self.store_path, durability=config.durability,
            shards=config.shards,
        )
        completed: set = set()
        if store.exists():
            if not resume:
                raise CampaignError(
                    f"store {self.store_path!r} already holds a campaign; "
                    "resume it (--resume / resume=True) to extend it, or "
                    "choose a new path"
                )
            store.verify_spec(self.spec)
            completed = store.completed_ids()
            self.aggregator.seed(store.cell_records())
            self._load_checkpoint(store)
        else:
            store.initialise(self.spec)

        cells = self.spec.expand()
        spec_hash = self.spec.spec_hash()
        pending = [c for c in cells if c.cell_id not in completed]
        summary = CampaignRunSummary(
            total=len(cells),
            skipped=len(cells) - len(pending),
            executed=0,
            failed=0,
            duration_s=0.0,
        )
        start = time.perf_counter()

        def record_result(payload: Dict[str, Any]) -> None:
            record = CellRecord.from_dict({"type": "cell", **payload})
            store.append_cell(record)
            self.aggregator.fold(record)
            summary.records.append(record)
            summary.executed += 1
            if not record.ok:
                summary.failed += 1
            if progress is not None:
                progress(record, summary.skipped + summary.executed,
                         len(cells))

        try:
            if pending:
                self._dispatch_loop(
                    store, pending, spec_hash, record_result, summary
                )
            if summary.completed == summary.total:
                self._clear_checkpoint(store)
            else:
                self._save_checkpoint(store)
        finally:
            store.close()
        summary.duration_s = time.perf_counter() - start
        return summary

    def _dispatch_loop(self, store: Any, pending: List[Any],
                       spec_hash: str, record_result: Any,
                       summary: CampaignRunSummary) -> None:
        config = self.config
        executor = make_executor(
            config.executor, config.workers, config.cell_timeout_s
        )
        next_unit_id = 0

        def submit(payloads: List[Dict[str, Any]]) -> None:
            nonlocal next_unit_id
            # Re-resolved per submit: the initial batch uses the static
            # heuristic, requeues adapt to the observed cell rate.
            shard_size = config.resolve_shard_size(
                len(payloads), self.aggregator.cells_per_s
            )
            for index in range(0, len(payloads), shard_size):
                executor.submit(WorkUnit(
                    unit_id=next_unit_id,
                    payloads=tuple(payloads[index:index + shard_size]),
                ))
                next_unit_id += 1

        try:
            executor.start()
            submit([
                _cell_payload(cell, self.spec, spec_hash)
                for cell in pending
            ])
            while executor.outstanding():
                events = executor.poll(config.poll_interval_s)
                requeue: List[Dict[str, Any]] = []
                for event in events:
                    self._events_since_checkpoint += 1
                    if isinstance(event, CellDone):
                        record_result(event.result)
                    elif isinstance(event, UnitFailed):
                        requeue.extend(
                            self._absorb_failure(event, record_result,
                                                 summary)
                        )
                if requeue:
                    submit(requeue)
                if self._events_since_checkpoint >= config.checkpoint_every:
                    self._save_checkpoint(store)
        finally:
            executor.shutdown()

    def _absorb_failure(self, event: UnitFailed, record_result: Any,
                        summary: CampaignRunSummary
                        ) -> List[Dict[str, Any]]:
        """Spend one attempt per pending cell; requeue or error out."""
        requeue: List[Dict[str, Any]] = []
        for payload in event.pending:
            cell_id = payload["cell_id"]
            attempts = self._attempts.get(cell_id, 0) + 1
            self._attempts[cell_id] = attempts
            if attempts < self.config.max_attempts:
                summary.retried += 1
                requeue.append(payload)
            else:
                record_result({
                    "cell_id": cell_id,
                    "kind": payload["kind"],
                    "params": dict(payload["params"]),
                    "seed": int(payload["seed"]),
                    "spec_hash": payload["spec_hash"],
                    "status": "error",
                    "metrics": None,
                    "error": (
                        f"fabric: {event.reason} "
                        f"(attempt {attempts}/{self.config.max_attempts})"
                    ),
                    "duration_s": 0.0,
                    "finished_at": time.time(),
                    "worker": 0,
                })
        return requeue
