"""The sharded campaign scheduler: dispatch, retry, checkpoint, fold.

:class:`CampaignScheduler` owns everything between a
:class:`~repro.campaign.spec.CampaignSpec` and a finished store:

* expands the grid, subtracts completed cells, shards the remainder
  into :class:`~repro.campaign.fabric.executors.WorkUnit`\\ s sized for
  the executor,
* dispatches through any :class:`ExecutorBase` and folds events --
  cells append to the store *as they arrive*, unit failures (worker
  crash, timeout) consume one retry attempt per pending cell and
  requeue *after a deterministic exponential backoff*,
* exhausted retry budgets become synthesized error records, so the
  campaign always terminates with one final outcome per cell,
* detects poison cells -- a cell whose worker deaths reach
  ``poison_threshold`` is quarantined with a ``fabric:poison`` record
  instead of burning more respawns -- and breaks crash loops by
  degrading a repeatedly-dying ``pool``/``spawn`` executor to
  ``inline`` with a loud warning,
* persists a checkpoint sidecar (attempt counts, quarantine state,
  degradation, live backoff waits) atomically alongside the store, so
  ``--resume`` after a SIGKILL continues mid-grid with the retry
  budget *and quarantine decisions* intact,
* streams every record through a
  :class:`~repro.campaign.fabric.streaming.StreamingAggregator`, so
  paper tables and progress are live during the run.

Determinism contract: cell content depends only on the spec (derived
seeds), never on sharding, executor choice, retries or interleaving --
which is what makes a killed-and-resumed store bit-identical in cell
content to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...errors import CampaignError
from ..runner import CampaignRunSummary, ProgressFn, _cell_payload
from ..spec import CampaignSpec
from ..store import DurabilityPolicy, CellRecord
from ..stores import open_store
from .executors import (
    CellDone,
    InlineExecutor,
    UnitFailed,
    WorkUnit,
    make_executor,
)
from .faults import backoff_delay
from .streaming import StreamingAggregator

#: Checkpoint sidecar name (lives next to / inside the store).
CHECKPOINT_NAME = "fabric.json"

#: Seconds of estimated work one spawn unit should carry once the
#: streaming aggregator has a live cells/s estimate.
ADAPTIVE_UNIT_SECONDS = 2.0

#: Hard cap on cells per unit, so one unit never monopolises a worker.
MAX_SHARD_SIZE = 16


@dataclass(frozen=True)
class FabricConfig:
    """Scheduling policy for one campaign run.

    Attributes:
        workers: Worker count (``1`` stays in-process).
        executor: ``auto``, ``inline``, ``pool`` or ``spawn``.
        shard_size: Cells per work unit (``None``: sized per executor
            -- single-cell units for inline/pool, coarser shards for
            spawn workers to amortise queue round-trips).
        max_attempts: Attempts per cell before a synthesized error
            record.
        cell_timeout_s: Per-cell wall-clock budget (``None``: no
            timeout).
        durability: Store durability policy (``None``: fsync every
            record).
        shards: Shard count for the sharded-directory backend.
        poll_interval_s: Executor poll granularity.
        checkpoint_every: Events between checkpoint writes.
        backoff_base_s: First-retry backoff scale; retries wait
            ``min(cap, base * 2**(attempt-1))`` scaled by a
            deterministic jitter in ``[0.5, 1.0)`` derived from
            ``(master_seed, cell_id, attempt)``.
        backoff_cap_s: Upper bound the retry backoff saturates at.
        poison_threshold: Worker deaths attributed to one cell before
            it is quarantined (a synthesized ``fabric:poison`` error
            record, persisted in the checkpoint sidecar) instead of
            burning more respawns and retry budget.
        crashloop_threshold: Consecutive worker-death polls with zero
            completed cells before the breaker degrades a ``pool``/
            ``spawn`` executor to ``inline`` with a loud warning.
    """

    workers: int = 1
    executor: str = "auto"
    shard_size: Optional[int] = None
    max_attempts: int = 2
    cell_timeout_s: Optional[float] = None
    durability: "DurabilityPolicy | int | None" = None
    shards: Optional[int] = None
    poll_interval_s: float = 0.25
    checkpoint_every: int = 8
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poison_threshold: int = 3
    crashloop_threshold: int = 5

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise CampaignError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.max_attempts < 1:
            raise CampaignError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise CampaignError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise CampaignError("backoff delays must be >= 0")
        if self.poison_threshold < 1:
            raise CampaignError(
                f"poison_threshold must be >= 1, got "
                f"{self.poison_threshold}"
            )
        if self.crashloop_threshold < 1:
            raise CampaignError(
                f"crashloop_threshold must be >= 1, got "
                f"{self.crashloop_threshold}"
            )

    def resolve_shard_size(self, pending: int,
                           cells_per_s: Optional[float] = None) -> int:
        """Cells per unit for this batch of work.

        Inline and pool executors take single-cell units: results land
        (and persist) per cell, and the pool already amortises dispatch.
        Spawn workers pay a queue round-trip per unit, so they get
        coarser shards.  With no throughput estimate yet (the initial
        submit) the static heuristic applies -- about four units per
        worker across the run.  Once the streaming aggregator has a
        live ``cells_per_s``, units are sized to carry roughly
        :data:`ADAPTIVE_UNIT_SECONDS` of work per worker instead:
        sub-second calibration cells coalesce into coarse units, while
        multi-second paper cells requeue as fine-grained (often
        single-cell) units so a retry never re-runs a long stretch of
        finished work.  Either way the size is capped at
        :data:`MAX_SHARD_SIZE` and at the work actually pending.
        """
        if self.shard_size is not None:
            return self.shard_size
        if self.executor != "spawn":
            return 1
        if cells_per_s and cells_per_s > 0:
            per_unit = int((cells_per_s / self.workers)
                           * ADAPTIVE_UNIT_SECONDS)
            return max(1, min(per_unit, MAX_SHARD_SIZE, pending))
        per_worker = max(1, pending // (self.workers * 4))
        return min(per_worker, MAX_SHARD_SIZE)


class CampaignScheduler:
    """Run one campaign spec to completion against a store."""

    def __init__(self, spec: CampaignSpec, store_path: str,
                 config: Optional[FabricConfig] = None) -> None:
        self.spec = spec
        self.store_path = store_path
        self.config = config or FabricConfig()
        #: Live aggregate of every record this run has seen (including
        #: records folded from the store on resume).
        self.aggregator = StreamingAggregator(spec)
        self._attempts: Dict[str, int] = {}
        self._events_since_checkpoint = 0
        #: Worker deaths attributed per cell (poison accounting).
        self._worker_kills: Dict[str, int] = {}
        #: Cells quarantined as poison (never requeued again).
        self._quarantined: "set[str]" = set()
        #: Degradation note once the crash-loop breaker has fired.
        self._degraded: Optional[str] = None
        #: Retry payloads waiting out their backoff:
        #: ``(ready_at_monotonic, payload)``.
        self._backoff: List[Tuple[float, Dict[str, Any]]] = []
        #: Consecutive worker-death polls without a completed cell.
        self._death_streak = 0
        self._executor: Any = None

    # -- checkpointing ---------------------------------------------------

    def _checkpoint_path(self, store: Any) -> str:
        return store.sidecar_path(CHECKPOINT_NAME)

    def _load_checkpoint(self, store: Any) -> None:
        path = self._checkpoint_path(store)
        if not os.path.exists(path):
            return
        if os.environ.get("REPRO_FAULT_PLAN"):
            # Fault site: scribble over the sidecar just before the
            # load, proving the tolerance path below.
            from .faults import fire_checkpoint_corrupt
            fire_checkpoint_corrupt(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # a torn checkpoint costs only retry-budget memory
        if state.get("spec_hash") != self.spec.spec_hash():
            return
        attempts = state.get("attempts", {})
        if isinstance(attempts, dict):
            self._attempts = {
                str(cell_id): int(count)
                for cell_id, count in attempts.items()
            }
        kills = state.get("kills", {})
        if isinstance(kills, dict):
            self._worker_kills = {
                str(cell_id): int(count)
                for cell_id, count in kills.items()
            }
        quarantined = state.get("quarantined", [])
        if isinstance(quarantined, list):
            self._quarantined = {str(cell_id) for cell_id in quarantined}
        # ``degraded`` and ``backoff`` are per-run observability state
        # (surfaced by ``campaign watch``); a fresh run starts clean.

    def _save_checkpoint(self, store: Any) -> None:
        path = self._checkpoint_path(store)
        now_monotonic = time.monotonic()
        now_wall = time.time()
        state = {
            "spec_hash": self.spec.spec_hash(),
            "attempts": self._attempts,
            "kills": self._worker_kills,
            "quarantined": sorted(self._quarantined),
            "degraded": self._degraded,
            # Wall-clock deadlines so an outside watcher can render
            # "how long until the retry" without our monotonic base.
            "backoff": {
                payload["cell_id"]: round(
                    now_wall + max(0.0, ready_at - now_monotonic), 3
                )
                for ready_at, payload in self._backoff
            },
            "updated_at": now_wall,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._events_since_checkpoint = 0

    def _clear_checkpoint(self, store: Any) -> None:
        try:
            os.remove(self._checkpoint_path(store))
        except OSError:
            pass

    # -- the run ---------------------------------------------------------

    def run(self, resume: bool = False,
            progress: Optional[ProgressFn] = None) -> CampaignRunSummary:
        """Execute the campaign; see :func:`repro.campaign.run_campaign`."""
        config = self.config
        if os.environ.get("REPRO_FAULT_PLAN"):
            # A plan inherited through the environment (a CLI subprocess
            # under chaos) has no recorded parent yet; claim it so the
            # worker-only fault sites never SIGKILL the orchestrator.
            from .faults import PARENT_PID_ENV
            os.environ.setdefault(PARENT_PID_ENV, str(os.getpid()))
        store = open_store(
            self.store_path, durability=config.durability,
            shards=config.shards,
        )
        completed: set = set()
        recorded: set = set()
        if store.exists():
            if not resume:
                raise CampaignError(
                    f"store {self.store_path!r} already holds a campaign; "
                    "resume it (--resume / resume=True) to extend it, or "
                    "choose a new path"
                )
            store.verify_spec(self.spec)
            records = store.cell_records()
            completed = {r.cell_id for r in records if r.ok}
            recorded = {r.cell_id for r in records}
            self.aggregator.seed(records)
            self._load_checkpoint(store)
        else:
            store.initialise(self.spec)

        cells = self.spec.expand()
        spec_hash = self.spec.spec_hash()
        # Quarantined cells stay out of the grid on resume: the
        # checkpoint remembers the poison verdict, so a resumed run
        # never burns fresh workers rediscovering it.
        pending = [
            c for c in cells
            if c.cell_id not in completed
            and c.cell_id not in self._quarantined
        ]
        summary = CampaignRunSummary(
            total=len(cells),
            skipped=len(cells) - len(pending),
            executed=0,
            failed=0,
            duration_s=0.0,
        )
        start = time.perf_counter()

        def record_result(payload: Dict[str, Any]) -> None:
            record = CellRecord.from_dict({"type": "cell", **payload})
            store.append_cell(record)
            self.aggregator.fold(record)
            summary.records.append(record)
            summary.executed += 1
            if not record.ok:
                summary.failed += 1
            if progress is not None:
                progress(record, summary.skipped + summary.executed,
                         len(cells))

        try:
            # A quarantined cell normally already has its poison record
            # (appended before the checkpoint was saved); if the record
            # was lost to a crash between append and fsync, re-settle
            # it so the campaign still terminates with one final
            # outcome per cell.
            for cell in cells:
                if (
                    cell.cell_id in self._quarantined
                    and cell.cell_id not in recorded
                ):
                    record_result(self._poison_payload(
                        _cell_payload(cell, self.spec, spec_hash)
                    ))
            if pending:
                self._dispatch_loop(
                    store, pending, spec_hash, record_result, summary
                )
            if summary.completed == summary.total:
                self._clear_checkpoint(store)
            else:
                self._save_checkpoint(store)
        finally:
            store.close()
        summary.duration_s = time.perf_counter() - start
        summary.quarantined = len(self._quarantined)
        summary.degraded = self._degraded
        return summary

    def _dispatch_loop(self, store: Any, pending: List[Any],
                       spec_hash: str, record_result: Any,
                       summary: CampaignRunSummary) -> None:
        config = self.config
        self._executor = make_executor(
            config.executor, config.workers, config.cell_timeout_s
        )
        next_unit_id = 0

        def submit(payloads: List[Dict[str, Any]]) -> None:
            nonlocal next_unit_id
            payloads = [
                p for p in payloads
                if p["cell_id"] not in self._quarantined
            ]
            if not payloads:
                return
            # Re-resolved per submit: the initial batch uses the static
            # heuristic, requeues adapt to the observed cell rate.
            shard_size = config.resolve_shard_size(
                len(payloads), self.aggregator.cells_per_s
            )
            for index in range(0, len(payloads), shard_size):
                self._executor.submit(WorkUnit(
                    unit_id=next_unit_id,
                    payloads=tuple(payloads[index:index + shard_size]),
                ))
                next_unit_id += 1

        try:
            self._executor.start()
            submit([
                _cell_payload(cell, self.spec, spec_hash)
                for cell in pending
            ])
            while self._executor.outstanding() or self._backoff:
                now = time.monotonic()
                if self._backoff:
                    ready = [p for t, p in self._backoff if t <= now]
                    if ready:
                        self._backoff = [
                            (t, p) for t, p in self._backoff if t > now
                        ]
                        submit(ready)
                if not self._executor.outstanding():
                    # Everything left is waiting out a backoff.
                    next_ready = min(t for t, _ in self._backoff)
                    time.sleep(min(config.poll_interval_s,
                                   max(0.0, next_ready - now)))
                    continue
                events = self._executor.poll(config.poll_interval_s)
                saw_done = False
                saw_death = False
                for event in events:
                    self._events_since_checkpoint += 1
                    if isinstance(event, CellDone):
                        saw_done = True
                        record_result(event.result)
                    elif isinstance(event, UnitFailed):
                        saw_death = saw_death or event.worker_death
                        self._absorb_failure(store, event, record_result,
                                             summary)
                # Crash-loop accounting: a poll that completed any cell
                # is progress; a poll that only killed workers is one
                # step toward the breaker.
                if saw_done:
                    self._death_streak = 0
                elif saw_death:
                    self._death_streak += 1
                if (
                    self._death_streak >= config.crashloop_threshold
                    and self._executor.name != InlineExecutor.name
                ):
                    submit(self._degrade_executor(store, summary))
                if self._events_since_checkpoint >= config.checkpoint_every:
                    self._save_checkpoint(store)
        finally:
            self._executor.shutdown()
            self._executor = None

    def _degrade_executor(self, store: Any,
                          summary: CampaignRunSummary
                          ) -> List[Dict[str, Any]]:
        """Break a crash loop: swap the dying executor for ``inline``.

        The old executor surrenders its queued and in-flight work
        (no retry attempts are charged -- the loop is the executor's
        fault, not the cells'), and the surrendered payloads run
        in-process instead of respawning workers forever.  Loud on
        purpose: silent degradation would hide a real infrastructure
        problem.
        """
        old = self._executor
        abandoned = old.abandon()
        old.shutdown()
        self._degraded = (
            f"{old.name}->inline after {self._death_streak} consecutive "
            "worker-death polls with no completed cells"
        )
        summary.degraded = self._degraded
        print(
            f"fabric WARNING: crash-loop breaker tripped -- executor "
            f"{old.name!r} lost workers on "
            f"{self._death_streak} consecutive polls without completing "
            "a cell; degrading to 'inline' (in-process) for the rest of "
            "the run",
            file=sys.stderr, flush=True,
        )
        self._death_streak = 0
        self._executor = InlineExecutor(
            cell_timeout_s=self.config.cell_timeout_s
        )
        self._executor.start()
        self._save_checkpoint(store)
        return [
            payload for event in abandoned for payload in event.pending
        ]

    def _poison_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The synthesized error record for a quarantined cell."""
        kills = self._worker_kills.get(payload["cell_id"], 0)
        return {
            "cell_id": payload["cell_id"],
            "kind": payload["kind"],
            "params": dict(payload["params"]),
            "seed": int(payload["seed"]),
            "spec_hash": payload["spec_hash"],
            "status": "error",
            "metrics": None,
            "error": (
                f"fabric:poison cell killed {kills} workers "
                f"(threshold {self.config.poison_threshold}); quarantined"
            ),
            "duration_s": 0.0,
            "finished_at": time.time(),
            "worker": 0,
        }

    def _absorb_failure(self, store: Any, event: UnitFailed,
                        record_result: Any,
                        summary: CampaignRunSummary) -> None:
        """Fold one unit failure into retry/poison/error bookkeeping.

        Worker deaths are attributed to the unit's first unfinished
        cell (cells run in order, so that is the one the worker died
        under); a cell whose kills reach ``poison_threshold`` is
        quarantined with a synthesized ``fabric:poison`` record and an
        immediate checkpoint.  Everything else spends one retry
        attempt and, if budget remains, waits out a deterministic
        exponential backoff before requeueing.
        """
        config = self.config
        victim = (
            event.pending[0]["cell_id"]
            if event.worker_death and event.pending else None
        )
        for payload in event.pending:
            cell_id = payload["cell_id"]
            if cell_id in self._quarantined:
                continue  # verdict already recorded
            if cell_id == victim:
                kills = self._worker_kills.get(cell_id, 0) + 1
                self._worker_kills[cell_id] = kills
                if kills >= config.poison_threshold:
                    record_result(self._poison_payload(payload))
                    self._quarantined.add(cell_id)
                    summary.quarantined += 1
                    # Checkpoint *now*: the quarantine verdict must
                    # survive a SIGKILL, or a resume would burn fresh
                    # workers rediscovering the poison.
                    self._save_checkpoint(store)
                    continue
            attempts = self._attempts.get(cell_id, 0) + 1
            self._attempts[cell_id] = attempts
            if attempts < config.max_attempts:
                summary.retried += 1
                delay = backoff_delay(
                    cell_id, attempts,
                    base_s=config.backoff_base_s,
                    cap_s=config.backoff_cap_s,
                    seed=self.spec.master_seed,
                )
                self._backoff.append((time.monotonic() + delay, payload))
            else:
                record_result({
                    "cell_id": cell_id,
                    "kind": payload["kind"],
                    "params": dict(payload["params"]),
                    "seed": int(payload["seed"]),
                    "spec_hash": payload["spec_hash"],
                    "status": "error",
                    "metrics": None,
                    "error": (
                        f"fabric: {event.reason} "
                        f"(attempt {attempts}/{config.max_attempts})"
                    ),
                    "duration_s": 0.0,
                    "finished_at": time.time(),
                    "worker": 0,
                })
