"""The chaos matrix: rehearse every fault class, assert bit-identity.

``repro campaign chaos`` is the chaos twin of ``campaign selfcheck``:
where selfcheck proves the fabric survives a SIGKILL from *outside*,
the chaos matrix activates the deterministic fault plane
(:mod:`~repro.campaign.fabric.faults`) and proves the fabric survives
every fault class it can inject from *inside* -- on every store
backend -- with the surviving store **bit-identical in cell content**
to an uninjected reference run.

One clean inline reference run anchors every comparison: cell ids and
seeds derive from ``kind + params + master_seed`` only (never the
campaign name, store backend, executor or retry history), so the same
grid produces the same content everywhere.

Fault classes (:data:`FAULT_CLASSES`):

``crash``       one cell's first execution SIGKILLs its worker; the
                retry (after deterministic backoff) must match.
``hang``        one cell sleeps past ``cell_timeout_s``; the timeout
                kill plus retry must match.
``slow``        one cell is delayed but completes; nothing may differ.
``store-io``    appends fail transiently (torn-write + EIO for the
                line-append backends, ENOSPC for sqlite); the bounded
                retry must persist every record intact.
``checkpoint``  the scheduler's checkpoint sidecar is corrupted just
                before a resume loads it; the resume must complete
                anyway (only retry-budget memory may be lost).
``crashloop``   every worker execution dies; the crash-loop breaker
                must degrade the executor to ``inline`` and finish.
``poison``      one cell kills every worker that touches it; it must
                be quarantined with a ``fabric:poison`` record while
                every *other* cell matches the reference.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import CampaignError
from ..grids import calibration_campaign
from ..runner import CampaignRunSummary, run_campaign
from ..spec import CampaignSpec
from ..stores import BACKENDS, open_store
from .faults import FaultPlan, FaultSpec, activate, deactivate
from .selfcheck import STORE_NAMES, _ok_content

#: Every fault class the matrix can rehearse.
FAULT_CLASSES = (
    "crash",
    "hang",
    "slow",
    "store-io",
    "checkpoint",
    "crashloop",
    "poison",
)


@dataclass
class ChaosCaseResult:
    """Outcome of one (backend, fault class) chaos case.

    Attributes:
        backend: Store backend exercised.
        fault: Fault class injected.
        fired: Fault firings actually claimed (0 means the injection
            never happened and the case is void).
        duration_s: Wall-clock cost of the case.
        detail: One-line human note (what was survived, how).
        mismatches: Content differences vs the reference (empty=pass).
    """

    backend: str
    fault: str
    fired: int
    duration_s: float
    detail: str = ""
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the fault was survived with identical content."""
        return not self.mismatches and self.fired > 0


def _chaos_grid(quick: bool, chaos_seed: int) -> CampaignSpec:
    """The calibration grid every chaos case runs.

    The campaign name does not affect cell ids or seeds, so every
    backend and fault class shares one reference despite distinct
    store paths.
    """
    return calibration_campaign(
        cells=6 if quick else 10,
        spin_ms=10.0 if quick else 25.0,
        master_seed=104729 + chaos_seed,
        name="chaos",
    )


def _compare(reference: Dict[str, Tuple], store_path: str,
             ignore: Sequence[str] = ()) -> List[str]:
    """Content-key diff between the reference and a survivor store."""
    survivor = _ok_content(store_path)
    skip = set(ignore)
    mismatches: List[str] = []
    for cell_id in sorted(set(reference) | set(survivor)):
        if cell_id in skip:
            continue
        ref = reference.get(cell_id)
        got = survivor.get(cell_id)
        if ref is None:
            mismatches.append(f"{cell_id}: extra cell in chaos store")
        elif got is None:
            mismatches.append(f"{cell_id}: missing from chaos store")
        elif ref != got:
            mismatches.append(
                f"{cell_id}: content differs\n  reference: {ref}\n"
                f"  survivor:  {got}"
            )
    return mismatches


def _fault_target(spec: CampaignSpec) -> str:
    """The cell the single-cell fault classes torment.

    The first cell id in sorted order: deterministic, and (being a
    plain grid cell) representative of any of them.
    """
    return sorted(cell.cell_id for cell in spec.expand())[0]


@dataclass(frozen=True)
class _CasePlan:
    """How one fault class runs: its faults plus scheduling policy."""

    specs: Tuple[FaultSpec, ...]
    executor: str = "inline"
    workers: int = 1
    max_attempts: int = 3
    cell_timeout_s: Optional[float] = None
    poison_threshold: int = 99
    crashloop_threshold: int = 99
    two_stage: bool = False  # run, then resume with the fault armed


def _case_plan(fault: str, backend: str, target: str) -> _CasePlan:
    if fault == "crash":
        return _CasePlan(
            specs=(FaultSpec("cell.crash", cell_id=target),),
            executor="spawn", workers=2,
        )
    if fault == "hang":
        return _CasePlan(
            specs=(FaultSpec("cell.hang", cell_id=target, delay_s=30.0),),
            executor="spawn", workers=2, cell_timeout_s=1.5,
        )
    if fault == "slow":
        return _CasePlan(
            specs=(FaultSpec("cell.slow", cell_id=target, delay_s=0.2),),
        )
    if fault == "store-io":
        # Line-append backends get the nastiest mode -- a partial line
        # torn into the file before the error -- so the retry must heal
        # real crash debris; sqlite has no torn concept, so it gets
        # ENOSPC.
        mode = "enospc" if backend == "sqlite" else "torn"
        return _CasePlan(
            specs=(FaultSpec("store.append", mode=mode, times=2),),
        )
    if fault == "checkpoint":
        # Stage 1 crashes one cell with no retry budget, leaving an
        # error record and a checkpoint; stage 2 resumes with the
        # corruptor armed, so the checkpoint is scribbled over as the
        # resume loads it.
        return _CasePlan(
            specs=(
                FaultSpec("cell.crash", cell_id=target),
                FaultSpec("checkpoint.corrupt"),
            ),
            executor="spawn", workers=2, max_attempts=1, two_stage=True,
        )
    if fault == "crashloop":
        return _CasePlan(
            specs=(FaultSpec("executor.crashloop", times=500),),
            executor="spawn", workers=2, max_attempts=10,
            crashloop_threshold=3,
        )
    if fault == "poison":
        return _CasePlan(
            specs=(FaultSpec("cell.crash", cell_id=target, times=99),),
            executor="spawn", workers=2, max_attempts=10,
            poison_threshold=2,
        )
    raise CampaignError(
        f"unknown fault class {fault!r}; expected one of {FAULT_CLASSES}"
    )


def run_chaos_case(
    backend: str,
    fault: str,
    workdir: str,
    reference: Dict[str, Tuple],
    spec: CampaignSpec,
    chaos_seed: int = 0,
) -> ChaosCaseResult:
    """Inject one fault class against one backend and judge survival.

    Args:
        backend: ``jsonl``, ``sqlite`` or ``shards``.
        fault: A member of :data:`FAULT_CLASSES`.
        workdir: Fresh scratch directory for this case.
        reference: ``_ok_content`` of the clean reference run.
        spec: The shared chaos grid (must be the reference's spec).
        chaos_seed: Recorded in the plan for reproducibility.

    Returns:
        A :class:`ChaosCaseResult`; ``result.ok`` is the verdict.
    """
    os.makedirs(workdir, exist_ok=True)
    target = _fault_target(spec)
    case = _case_plan(fault, backend, target)
    plan = FaultPlan(
        chaos_seed=chaos_seed,
        specs=case.specs,
        state_dir=os.path.join(workdir, "fault-state"),
    )
    store_path = os.path.join(workdir, STORE_NAMES[backend])
    start = time.perf_counter()

    def run(resume: bool) -> CampaignRunSummary:
        return run_campaign(
            spec, store_path,
            workers=case.workers,
            executor=case.executor,
            resume=resume,
            max_attempts=case.max_attempts,
            cell_timeout_s=case.cell_timeout_s,
            poison_threshold=case.poison_threshold,
            crashloop_threshold=case.crashloop_threshold,
            backoff_base_s=0.01,
            backoff_cap_s=0.2,
        )

    activate(plan, os.path.join(workdir, "fault-plan.json"))
    try:
        if case.two_stage:
            run(resume=False)  # leaves an error record + checkpoint
            summary = run(resume=True)  # loads the corrupted sidecar
        else:
            summary = run(resume=False)
    finally:
        deactivate()
    duration = time.perf_counter() - start

    fired = sum(plan.fired(site) for site in {s.site for s in case.specs})
    mismatches: List[str] = []
    detail = ""
    if fault == "poison":
        # The poisoned cell must be quarantined (error record, no ok),
        # every other cell bit-identical.
        mismatches = _compare(reference, store_path, ignore=(target,))
        store = open_store(store_path)
        verdicts = [r for r in store.cell_records()
                    if r.cell_id == target]
        if any(r.ok for r in verdicts):
            mismatches.append(
                f"{target}: poison cell has an ok record; it should "
                "have been quarantined"
            )
        if not any(
            not r.ok and "fabric:poison" in (r.error or "")
            for r in verdicts
        ):
            mismatches.append(
                f"{target}: no fabric:poison record in the store"
            )
        if summary.quarantined != 1:
            mismatches.append(
                f"expected 1 quarantined cell, summary says "
                f"{summary.quarantined}"
            )
        detail = f"quarantined {target} after repeated worker kills"
    else:
        mismatches = _compare(reference, store_path)
        if fault == "crashloop":
            if not summary.degraded:
                mismatches.append(
                    "crash-loop breaker never degraded the executor"
                )
            detail = f"degraded: {summary.degraded}"
        elif fault == "checkpoint":
            detail = "resume completed over a corrupted checkpoint"
        elif summary.failed:
            mismatches.append(
                f"{summary.failed} cells ended as errors; every cell "
                "should have survived this fault class"
            )
    if fired == 0:
        mismatches.append(
            f"fault {fault!r} never fired; the case proved nothing"
        )
    return ChaosCaseResult(
        backend=backend,
        fault=fault,
        fired=fired,
        duration_s=duration,
        detail=detail,
        mismatches=mismatches,
    )


def run_chaos_matrix(
    workdir: str,
    backends: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
    quick: bool = True,
    chaos_seed: int = 0,
) -> List[ChaosCaseResult]:
    """Run the fault matrix: every fault class x every store backend.

    Args:
        workdir: Scratch directory (created if missing).
        backends: Store backends to exercise (default: all three).
        faults: Fault classes to inject (default: all of
            :data:`FAULT_CLASSES`).
        quick: Small grid and delays (the CI profile).
        chaos_seed: Folded into the grid's master seed and recorded in
            every plan, so a failing case reproduces exactly.

    Returns:
        One :class:`ChaosCaseResult` per case, in matrix order.
    """
    backends = list(backends) if backends else sorted(BACKENDS)
    faults = list(faults) if faults else list(FAULT_CLASSES)
    for backend in backends:
        if backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {backend!r}; expected one of "
                f"{tuple(sorted(BACKENDS))}"
            )
    for fault in faults:
        if fault not in FAULT_CLASSES:
            raise CampaignError(
                f"unknown fault class {fault!r}; expected one of "
                f"{FAULT_CLASSES}"
            )
    os.makedirs(workdir, exist_ok=True)
    spec = _chaos_grid(quick, chaos_seed)

    # One clean inline run anchors every comparison.
    reference_store = os.path.join(workdir, "reference.jsonl")
    run_campaign(spec, reference_store, workers=1)
    reference = _ok_content(reference_store)
    if len(reference) != spec.cell_count():
        raise CampaignError(
            "chaos reference run failed: "
            f"{len(reference)}/{spec.cell_count()} cells ok"
        )

    results: List[ChaosCaseResult] = []
    for backend in backends:
        for fault in faults:
            results.append(run_chaos_case(
                backend, fault,
                workdir=os.path.join(workdir, backend, fault),
                reference=reference,
                spec=spec,
                chaos_seed=chaos_seed,
            ))
    return results
