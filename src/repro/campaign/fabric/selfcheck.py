"""Kill/resume equivalence self-check.

The fabric's core durability claim: a campaign whose parent process is
SIGKILLed mid-grid (and whose workers crash along the way) and is then
resumed produces a store *identical in cell content* to an
uninterrupted run -- same cells, same seeds, same metrics -- on every
store backend.

:func:`run_selfcheck` proves it end to end, per backend:

1. **Reference** -- run a paced calibration grid inline, in this
   process, into a scratch JSONL store.  The grid's worker-crash cell
   flags are pre-created so nothing actually crashes here.
2. **Interrupted** -- run the *same spec* as a real
   ``python -m repro campaign run`` subprocess (pool executor, crash
   flags absent so one worker SIGKILLs itself mid-run), poll the store,
   and SIGKILL the whole run once ``kill_after`` cells have landed.
3. **Resume** -- run the subprocess again with ``--resume`` and let it
   finish.
4. **Compare** -- latest-ok content keys per cell
   (:meth:`~repro.campaign.store.CellRecord.content_key`, which
   excludes wall-clock fields and pids) must match the reference
   exactly.

CI runs this for all three backends; the tier-1 suite keeps the two
cheap ones.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...errors import CampaignError
from ..grids import calibration_campaign
from ..runner import run_campaign
from ..spec import CampaignSpec
from ..stores import BACKENDS, open_store

#: backend name -> store basename the backend resolver maps back.
STORE_NAMES = {
    "jsonl": "store.jsonl",
    "sqlite": "store.sqlite",
    "shards": "store.shards",
}


@dataclass
class SelfCheckResult:
    """Outcome of one backend's kill/resume equivalence check.

    Attributes:
        backend: Store backend exercised.
        total: Cells in the calibration grid.
        ok_at_kill: Completed cells observed when SIGKILL was sent.
        killed_mid_grid: Whether the kill landed before completion.
        resumed_executed: Cells the resumed run still had to execute.
        mismatches: Human-readable content differences (empty = pass).
    """

    backend: str
    total: int
    ok_at_kill: int
    killed_mid_grid: bool
    resumed_executed: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the interrupted store matched the reference."""
        return not self.mismatches


def _ok_content(store_path: str) -> Dict[str, Tuple]:
    """Latest-ok content key per cell id in a store."""
    store = open_store(store_path)
    latest: Dict[str, Tuple] = {}
    for record in store.cell_records():
        if record.ok:
            latest[record.cell_id] = record.content_key()
    return latest


def _subprocess_env() -> Dict[str, str]:
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _run_cli(spec_path: str, store_path: str, resume: bool,
             env: Dict[str, str]) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "campaign", "run",
        "--spec-json", spec_path, "--store", store_path,
        "--workers", "2", "--executor", "pool", "--max-attempts", "3",
    ]
    if resume:
        command.append("--resume")
    return subprocess.Popen(
        command, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _poll_ok_count(store_path: str) -> int:
    try:
        store = open_store(store_path)
        if not store.exists():
            return 0
        return len(store.completed_ids())
    except (CampaignError, OSError):
        return 0  # store not written yet (or mid-write lock)


def run_selfcheck(
    backend: str,
    workdir: str,
    cells: int = 14,
    spin_ms: float = 40.0,
    kill_after: int = 4,
    deadline_s: float = 120.0,
) -> SelfCheckResult:
    """Prove kill/resume equivalence for one store backend.

    Args:
        backend: ``jsonl``, ``sqlite`` or ``shards``.
        workdir: Scratch directory (created if missing).
        cells: Plain no-op cells in the calibration grid (one
            worker-crash cell is added on top).
        spin_ms: Busy-wait per cell, pacing the grid so the SIGKILL
            lands mid-flight.
        kill_after: Completed cells to wait for before killing.
        deadline_s: Per-subprocess wall-clock budget.

    Returns:
        A :class:`SelfCheckResult`; ``result.ok`` is the verdict.

    Raises:
        CampaignError: Unknown backend, or a subprocess misbehaved in
            a way that voids the comparison (resume failed outright).
    """
    if backend not in BACKENDS:
        raise CampaignError(
            f"unknown backend {backend!r}; expected one of "
            f"{tuple(BACKENDS)}"
        )
    os.makedirs(workdir, exist_ok=True)
    crash_flag = os.path.join(workdir, "crash.flag")
    spec = calibration_campaign(
        cells=cells, spin_ms=spin_ms, crash_flags=(crash_flag,),
        name=f"selfcheck-{backend}",
    )

    # 1. Reference: inline, uninterrupted.  Pre-create the crash flag
    # so the crash cell runs its ordinary path in *this* process.
    with open(crash_flag, "w", encoding="utf-8") as handle:
        handle.write("reference\n")
    reference_store = os.path.join(workdir, "reference.jsonl")
    run_campaign(spec, reference_store, workers=1)
    reference = _ok_content(reference_store)
    os.remove(crash_flag)  # the subprocess run must actually crash

    # 2. Interrupted run: real CLI subprocess, SIGKILLed mid-grid.
    spec_path = os.path.join(workdir, "spec.json")
    spec.save(spec_path)
    store_path = os.path.join(workdir, STORE_NAMES[backend])
    env = _subprocess_env()
    child = _run_cli(spec_path, store_path, resume=False, env=env)
    deadline = time.monotonic() + deadline_s
    ok_at_kill = 0
    killed = False
    while child.poll() is None:
        if time.monotonic() > deadline:
            child.kill()
            child.wait()
            raise CampaignError(
                f"selfcheck[{backend}]: interrupted run exceeded "
                f"{deadline_s:.0f}s"
            )
        ok_at_kill = _poll_ok_count(store_path)
        if ok_at_kill >= kill_after:
            os.kill(child.pid, signal.SIGKILL)
            killed = True
            break
        time.sleep(0.05)
    child.wait()

    # 3. Resume to completion.
    resumed = _run_cli(spec_path, store_path, resume=True, env=env)
    try:
        output, _ = resumed.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        resumed.kill()
        resumed.communicate()
        raise CampaignError(
            f"selfcheck[{backend}]: resume exceeded {deadline_s:.0f}s"
        ) from None
    if resumed.returncode != 0:
        raise CampaignError(
            f"selfcheck[{backend}]: resume exited "
            f"{resumed.returncode}:\n{output}"
        )

    # 4. Compare content keys, cell for cell.
    interrupted = _ok_content(store_path)
    mismatches: List[str] = []
    for cell_id in sorted(set(reference) | set(interrupted)):
        ref = reference.get(cell_id)
        got = interrupted.get(cell_id)
        if ref is None:
            mismatches.append(f"{cell_id}: extra cell in resumed store")
        elif got is None:
            mismatches.append(f"{cell_id}: missing from resumed store")
        elif ref != got:
            mismatches.append(
                f"{cell_id}: content differs\n  reference: {ref}\n"
                f"  resumed:   {got}"
            )
    resumed_executed = spec.cell_count() - ok_at_kill
    return SelfCheckResult(
        backend=backend,
        total=spec.cell_count(),
        ok_at_kill=ok_at_kill,
        killed_mid_grid=killed,
        resumed_executed=max(0, resumed_executed),
        mismatches=mismatches,
    )


def run_all_selfchecks(workdir: str, **kwargs: object) -> List[SelfCheckResult]:
    """Run the kill/resume check for every registered backend."""
    return [
        run_selfcheck(backend, os.path.join(workdir, backend), **kwargs)
        for backend in BACKENDS
    ]


@dataclass
class GcSelfCheckResult:
    """Outcome of one backend's gc-crash atomicity check.

    Attributes:
        backend: Store backend exercised.
        gc_returncode: Exit status of the SIGKILLed ``campaign gc``
            (should be ``-SIGKILL``).
        errors_dropped: Superseded error records the clean re-gc
            dropped (must be >= 1 or the check proved nothing).
        mismatches: Human-readable problems (empty = pass).
    """

    backend: str
    gc_returncode: int
    errors_dropped: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the killed gc left the store intact."""
        return not self.mismatches


def run_gc_selfcheck(
    backend: str,
    workdir: str,
    cells: int = 6,
    deadline_s: float = 60.0,
) -> GcSelfCheckResult:
    """Prove gc compaction is atomic under SIGKILL for one backend.

    Builds a store with real debris (a worker-crash cell whose error
    record is later superseded by a clean resume), then runs
    ``repro campaign gc`` as a subprocess with a ``gc.crash`` fault
    plan in its environment -- the fault plane SIGKILLs the gc inside
    its crash window (before the atomic rename for the line-append
    backends; between DELETE and commit for sqlite).  The store must
    be untouched: every cell's content identical, the superseded error
    debris still present for a clean re-gc to drop.

    Args:
        backend: ``jsonl``, ``sqlite`` or ``shards``.
        workdir: Scratch directory (created if missing).
        cells: Plain no-op cells in the grid (one crash cell added).
        deadline_s: Per-subprocess wall-clock budget.

    Returns:
        A :class:`GcSelfCheckResult`; ``result.ok`` is the verdict.
    """
    from .faults import FaultPlan, FaultSpec

    if backend not in BACKENDS:
        raise CampaignError(
            f"unknown backend {backend!r}; expected one of "
            f"{tuple(BACKENDS)}"
        )
    os.makedirs(workdir, exist_ok=True)

    # 1. Debris: the crash cell's first attempt kills its worker with
    # no retry budget, recording an error; the resume supersedes it
    # with an ok record.  That superseded error is what gc drops.
    crash_flag = os.path.join(workdir, "crash.flag")
    spec = calibration_campaign(
        cells=cells, spin_ms=0.0, crash_flags=(crash_flag,),
        name=f"gc-selfcheck-{backend}",
    )
    store_path = os.path.join(workdir, STORE_NAMES[backend])
    run_campaign(spec, store_path, workers=2, executor="pool",
                 max_attempts=1)
    run_campaign(spec, store_path, workers=2, executor="pool",
                 max_attempts=1, resume=True)
    before = _ok_content(store_path)
    mismatches: List[str] = []
    if len(before) != spec.cell_count():
        mismatches.append(
            f"debris setup incomplete: {len(before)}/{spec.cell_count()} "
            "cells ok before gc"
        )

    # 2. SIGKILL a real gc subprocess inside its crash window.
    plan = FaultPlan(
        chaos_seed=0,
        specs=(FaultSpec("gc.crash"),),
        state_dir=os.path.join(workdir, "fault-state"),
    )
    plan_path = os.path.join(workdir, "fault-plan.json")
    plan.save(plan_path)
    env = _subprocess_env()
    env["REPRO_FAULT_PLAN"] = plan_path
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "gc",
         "--store", store_path],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        output, _ = child.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        child.kill()
        child.communicate()
        raise CampaignError(
            f"gc-selfcheck[{backend}]: killed gc exceeded {deadline_s:.0f}s"
        ) from None
    if child.returncode != -signal.SIGKILL:
        mismatches.append(
            f"gc subprocess exited {child.returncode}, expected "
            f"-SIGKILL ({-signal.SIGKILL}); the crash never fired:\n"
            f"{output}"
        )

    # 3. The killed gc must have changed nothing visible.
    after = _ok_content(store_path)
    if after != before:
        mismatches.append(
            "store content changed across the killed gc "
            f"({len(before)} -> {len(after)} ok cells)"
        )

    # 4. A clean re-gc succeeds and drops the superseded error.
    errors_dropped = 0
    try:
        stats = open_store(store_path).gc()
        errors_dropped = stats.errors_dropped
    except CampaignError as exc:
        mismatches.append(f"clean re-gc failed: {exc}")
    else:
        if errors_dropped < 1:
            mismatches.append(
                "clean re-gc dropped no superseded error records; the "
                "killed gc must have committed after all"
            )
        if _ok_content(store_path) != before:
            mismatches.append("store content changed across the clean re-gc")
    return GcSelfCheckResult(
        backend=backend,
        gc_returncode=child.returncode,
        errors_dropped=errors_dropped,
        mismatches=mismatches,
    )
