"""Deterministic fault-injection plane for the campaign fabric.

Production schedulers certify their recovery paths by rehearsing
failure, not by hoping for it.  This module is that rehearsal plane:
a :class:`FaultPlan` is a seeded, serializable list of
:class:`FaultSpec` entries, each naming an injection *site* the fabric
has wired a hook into:

========================  ====================================================
site                      effect when fired
========================  ====================================================
``cell.crash``            the worker SIGKILLs itself before running the cell
``cell.hang``             the cell sleeps ``delay_s`` (exceeding the
                          scheduler's ``cell_timeout_s``)
``cell.slow``             the cell sleeps ``delay_s`` then runs normally
``store.append``          the store append raises a transient
                          ``OSError`` -- mode ``eio``/``enospc`` -- or
                          tears a partial line into the file first
                          (mode ``torn``)
``checkpoint.corrupt``    the scheduler's checkpoint sidecar is
                          scribbled over just before it is loaded
``executor.crashloop``    *every* worker cell execution SIGKILLs the
                          worker (until ``times`` is exhausted)
``gc.crash``              the process SIGKILLs itself inside the gc
                          compaction crash window (before the atomic
                          replace / commit)
========================  ====================================================

Determinism and exactly-``times`` semantics come from *firing claims*:
every fault keeps a claim counter as flag files inside the plan's
``state_dir``, created with ``O_CREAT | O_EXCL`` so concurrent worker
processes race for each firing atomically -- the same protocol the
``noop`` adapter's ``crash_flag`` uses.  A plan therefore injects each
fault exactly ``times`` times across the whole process tree, every
run, regardless of scheduling interleavings.

Activation crosses process boundaries by environment: the plan is
saved to JSON and ``REPRO_FAULT_PLAN`` points at it, so pool/spawn
workers and real CLI subprocesses all see the same plan.
``REPRO_FAULT_PARENT_PID`` records the orchestrating process; the
worker-only sites (``cell.crash``, ``cell.hang``,
``executor.crashloop``) never fire in that process, which is what lets
a crash-looping executor *degrade to inline and actually finish* --
and keeps reference runs clean.

:func:`backoff_delay` also lives here: the fabric's retry backoff is
exponential with deterministic jitter derived from
``(seed, cell_id, attempt)``, so a retry schedule is reproducible
bit-for-bit and testable without clock mocking.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import CampaignError

#: Environment variable naming the active plan's JSON file.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable holding the orchestrating process's pid.
PARENT_PID_ENV = "REPRO_FAULT_PARENT_PID"

#: Every site a fabric hook exists for.
FAULT_SITES = (
    "cell.crash",
    "cell.hang",
    "cell.slow",
    "store.append",
    "checkpoint.corrupt",
    "executor.crashloop",
    "gc.crash",
)

#: Sites that must only fire in worker processes, never in the
#: orchestrating parent -- crashing the parent is ``selfcheck``'s job
#: (SIGKILL from outside), and an inline-degraded executor must be
#: able to finish the grid.
WORKER_ONLY_SITES = frozenset(
    {"cell.crash", "cell.hang", "executor.crashloop"}
)

#: Modes accepted by the ``store.append`` site.
STORE_APPEND_MODES = ("torn", "eio", "enospc")


def backoff_delay(cell_id: str, attempt: int, base_s: float = 0.05,
                  cap_s: float = 2.0, seed: int = 0) -> float:
    """Deterministic exponential backoff with jitter for one retry.

    ``min(cap_s, base_s * 2**(attempt-1))`` scaled into
    ``[0.5, 1.0)`` of itself by a fraction derived from
    ``sha256(seed:cell_id:attempt)`` -- full determinism (the same
    retry always waits the same time, so schedules are testable and
    resumable) with enough spread that a burst of failing cells does
    not retry in lockstep.

    Args:
        cell_id: The retried cell (each cell gets its own jitter).
        attempt: 1-based attempt number being *scheduled* (the first
            retry is attempt 1).
        base_s: Delay scale for the first retry.
        cap_s: Upper bound the exponential saturates at.
        seed: Campaign-level seed folded into the jitter.

    Returns:
        Seconds to wait before the retry.
    """
    if attempt < 1:
        return 0.0
    raw = min(float(cap_s), float(base_s) * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(
        f"{seed}:{cell_id}:{attempt}".encode("utf-8")
    ).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(2 ** 64)
    return raw * (0.5 + 0.5 * fraction)


def _slug(text: str) -> str:
    """Filesystem-safe token for claim-file names."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", text)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        site: Injection site (a member of :data:`FAULT_SITES`).
        cell_id: Restrict to one cell (``None``: any cell; ignored by
            sites without cell context).
        mode: Site-specific variant (``store.append`` only:
            ``torn`` / ``eio`` / ``enospc``).
        times: How many firings the plan grants this fault in total,
            across every process.
        delay_s: Sleep length for ``cell.hang`` / ``cell.slow``.
    """

    site: str
    cell_id: Optional[str] = None
    mode: str = ""
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise CampaignError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{FAULT_SITES}"
            )
        if self.site == "store.append" and self.mode not in STORE_APPEND_MODES:
            raise CampaignError(
                f"store.append fault needs a mode from "
                f"{STORE_APPEND_MODES}, got {self.mode!r}"
            )
        if self.times < 1:
            raise CampaignError(f"times must be >= 1, got {self.times}")

    @property
    def key(self) -> str:
        """Stable claim-file prefix identifying this fault."""
        return _slug(f"{self.site}.{self.cell_id or 'any'}.{self.mode or '-'}")

    def matches(self, site: str, cell_id: Optional[str]) -> bool:
        """Whether this fault applies at ``site`` for ``cell_id``."""
        if self.site != site:
            return False
        return self.cell_id is None or self.cell_id == cell_id

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "cell_id": self.cell_id,
            "mode": self.mode,
            "times": self.times,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            site=data["site"],
            cell_id=data.get("cell_id"),
            mode=data.get("mode", ""),
            times=int(data.get("times", 1)),
            delay_s=float(data.get("delay_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults plus the shared claim state directory.

    Attributes:
        chaos_seed: Seed the plan was derived with (recorded for
            reproducibility; :func:`derive_faults` consumes it).
        specs: The faults to inject.
        state_dir: Directory holding firing-claim flag files -- shared
            across every process the plan is active in.
    """

    chaos_seed: int
    specs: Tuple[FaultSpec, ...]
    state_dir: str

    def __post_init__(self) -> None:
        if not self.state_dir:
            raise CampaignError("a fault plan needs a state_dir")

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chaos_seed": self.chaos_seed,
            "specs": [spec.to_dict() for spec in self.specs],
            "state_dir": self.state_dir,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            chaos_seed=int(data.get("chaos_seed", 0)),
            specs=tuple(
                FaultSpec.from_dict(item) for item in data.get("specs", ())
            ),
            state_dir=data["state_dir"],
        )

    def save(self, path: str) -> None:
        """Write the plan as JSON (what :data:`PLAN_ENV` points at)."""
        os.makedirs(self.state_dir, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise CampaignError(
                f"cannot load fault plan from {path!r}: {exc!r}"
            ) from exc

    # -- firing ----------------------------------------------------------

    def claim(self, site: str, cell_id: Optional[str] = None
              ) -> Optional[FaultSpec]:
        """Atomically claim one firing at ``site`` (``None``: no fire).

        Claims are flag files ``state_dir/<key>.<n>`` created with
        ``O_CREAT | O_EXCL``: the first process to create slot ``n``
        owns firing ``n``; once every slot up to ``times`` exists the
        fault is spent.  Worker-only sites refuse to fire in the
        process named by :data:`PARENT_PID_ENV`.
        """
        if site in WORKER_ONLY_SITES:
            parent = os.environ.get(PARENT_PID_ENV)
            if parent and int(parent) == os.getpid():
                return None
        for spec in self.specs:
            if not spec.matches(site, cell_id):
                continue
            for slot in range(spec.times):
                flag = os.path.join(self.state_dir, f"{spec.key}.{slot}")
                try:
                    fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.write(fd, f"{os.getpid()}\n".encode())
                os.close(fd)
                return spec
        return None

    def fired(self, site: str) -> int:
        """How many firings have been claimed at ``site`` so far."""
        count = 0
        for spec in self.specs:
            if spec.site != site:
                continue
            for slot in range(spec.times):
                flag = os.path.join(self.state_dir, f"{spec.key}.{slot}")
                if os.path.exists(flag):
                    count += 1
        return count


def derive_faults(chaos_seed: int, master_seed: int,
                  cell_ids: Sequence[str],
                  sites: Sequence[str] = ("cell.crash",),
                  delay_s: float = 0.0) -> List[FaultSpec]:
    """Pick deterministic fault targets from a grid.

    The target of each requested site is chosen by
    ``sha256(chaos_seed:master_seed:site)`` over the sorted cell ids,
    so the same seeds always torment the same cells -- a failing chaos
    case reproduces exactly.
    """
    ordered = sorted(cell_ids)
    if not ordered:
        raise CampaignError("derive_faults needs at least one cell id")
    specs: List[FaultSpec] = []
    for site in sites:
        digest = hashlib.sha256(
            f"{chaos_seed}:{master_seed}:{site}".encode("utf-8")
        ).digest()
        target = ordered[int.from_bytes(digest[:4], "big") % len(ordered)]
        needs_cell = site.startswith("cell.")
        specs.append(FaultSpec(
            site=site,
            cell_id=target if needs_cell else None,
            mode="",
            times=1,
            delay_s=delay_s,
        ))
    return specs


# --------------------------------------------------------------------- #
# Activation: one module-global plan, inherited through the environment.
# --------------------------------------------------------------------- #

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_SOURCE: Optional[str] = None  # plan path the cache was loaded from


def activate(plan: FaultPlan, path: str) -> None:
    """Make ``plan`` the active plan for this process tree.

    Saves the plan to ``path``, points :data:`PLAN_ENV` at it (so
    forked/spawned workers and CLI subprocesses inherit it) and marks
    this process as the parent for the worker-only sites.
    """
    global _ACTIVE, _ACTIVE_SOURCE
    plan.save(path)
    os.environ[PLAN_ENV] = os.path.abspath(path)
    os.environ[PARENT_PID_ENV] = str(os.getpid())
    _ACTIVE = plan
    _ACTIVE_SOURCE = os.path.abspath(path)


def deactivate() -> None:
    """Clear the active plan (idempotent)."""
    global _ACTIVE, _ACTIVE_SOURCE
    _ACTIVE = None
    _ACTIVE_SOURCE = None
    os.environ.pop(PLAN_ENV, None)
    os.environ.pop(PARENT_PID_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan in force for this process, if any.

    Checks the module global first (in-process activation), then
    :data:`PLAN_ENV` -- which is how worker processes and CLI
    subprocesses pick the plan up.  A plan loaded from the environment
    is cached per path.
    """
    global _ACTIVE, _ACTIVE_SOURCE
    env_path = os.environ.get(PLAN_ENV)
    if _ACTIVE is not None:
        if env_path is None or _ACTIVE_SOURCE == os.path.abspath(env_path):
            return _ACTIVE
    if not env_path:
        return None
    plan = FaultPlan.load(env_path)
    _ACTIVE = plan
    _ACTIVE_SOURCE = os.path.abspath(env_path)
    return plan


def claim(site: str, cell_id: Optional[str] = None) -> Optional[FaultSpec]:
    """Claim one firing at ``site`` against the active plan, if any."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.claim(site, cell_id)


# --------------------------------------------------------------------- #
# Injection helpers the fabric hooks call.
# --------------------------------------------------------------------- #

def fire_cell_faults(cell_id: str) -> None:
    """Cell-execution hook (runs in whatever process executes cells).

    ``executor.crashloop`` and ``cell.crash`` SIGKILL the process;
    ``cell.hang`` / ``cell.slow`` sleep.  All are no-ops without an
    active plan, and the worker-only sites never fire in the parent.
    """
    if active_plan() is None:  # the common case: one cheap env lookup
        return
    if claim("executor.crashloop", cell_id) or claim("cell.crash", cell_id):
        os.kill(os.getpid(), signal.SIGKILL)
    spec = claim("cell.hang", cell_id)
    if spec is not None:
        time.sleep(spec.delay_s)
    spec = claim("cell.slow", cell_id)
    if spec is not None:
        time.sleep(spec.delay_s)


def fire_store_append(store: Any, payload: Mapping[str, Any]) -> None:
    """Store-append hook: raise a transient I/O error when claimed.

    ``eio`` / ``enospc`` raise before anything touches the backend;
    ``torn`` first asks the backend to tear a partial line into its
    file (``_torn_write``) so the retry path must also heal real crash
    debris, then raises ``EIO`` as the write's failure.
    """
    spec = claim("store.append", payload.get("cell_id"))
    if spec is None:
        return
    if spec.mode == "torn":
        store._torn_write(payload)
        raise OSError(errno.EIO, "injected torn write (fault plan)")
    if spec.mode == "enospc":
        raise OSError(errno.ENOSPC, "injected ENOSPC (fault plan)")
    raise OSError(errno.EIO, "injected EIO (fault plan)")


def fire_checkpoint_corrupt(path: str) -> None:
    """Checkpoint-load hook: scribble garbage over the sidecar."""
    if claim("checkpoint.corrupt") is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"spec_hash": "corrupted by fa')  # torn mid-write


def fire_gc_crash() -> None:
    """Gc crash-window hook: SIGKILL this process when claimed."""
    if claim("gc.crash") is not None:
        os.kill(os.getpid(), signal.SIGKILL)
