"""Campaign execution: parallel, persistent, resumable.

The runner expands a :class:`CampaignSpec` into cells, subtracts the
cells already completed in the store (``resume``), and executes the
remainder -- in-process when ``workers == 1`` (pure, debuggable, no
forks) or across a :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise.  Each cell is dispatched through the adapter registry with
the scale reseeded to the cell's derived seed, so results are identical
whether a cell runs serially, in a pool, today or in a resumed run next
week.  Only the parent process writes to the store: workers return
plain dicts and the parent appends records as futures complete.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import CampaignError
from ..experiments.scale import ExperimentScale
from .registry import get_adapter
from .spec import CampaignCell, CampaignSpec
from .store import CampaignStore, CellRecord

#: Progress callback: (record, done_count, total_count).
ProgressFn = Callable[[CellRecord, int, int], None]


@dataclass
class CampaignRunSummary:
    """Outcome of one ``run_campaign`` invocation.

    Attributes:
        total: Cells in the spec's expansion.
        skipped: Cells already complete in the store (resume).
        executed: Cells run by this invocation.
        failed: Executed cells that ended in error.
        duration_s: Wall-clock time of this invocation.
        records: The records appended by this invocation.
    """

    total: int
    skipped: int
    executed: int
    failed: int
    duration_s: float
    records: List[CellRecord] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Cells now complete in the store."""
        return self.skipped + self.executed - self.failed


def execute_cell(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one cell and return its record payload.

    Module-level and dict-in/dict-out so it pickles cleanly across the
    process pool; also the ``workers == 1`` code path, so both modes
    share one implementation.
    """
    scale = ExperimentScale.from_dict(payload["scale"]).with_seed(
        int(payload["seed"])
    )
    record: Dict[str, Any] = {
        "cell_id": payload["cell_id"],
        "kind": payload["kind"],
        "params": dict(payload["params"]),
        "seed": int(payload["seed"]),
        "spec_hash": payload["spec_hash"],
        "worker": os.getpid(),
    }
    start = time.perf_counter()
    try:
        adapter = get_adapter(payload["kind"])
        metrics = adapter.run(payload["params"], scale)
    except Exception as exc:  # noqa: BLE001 - a cell must never kill the run
        record.update(
            status="error",
            metrics=None,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
        )
    else:
        record.update(status="ok", metrics=metrics, error=None)
    record["duration_s"] = time.perf_counter() - start
    record["finished_at"] = time.time()
    return record


def _cell_payload(cell: CampaignCell, spec: CampaignSpec,
                  spec_hash: str) -> Dict[str, Any]:
    return {
        "cell_id": cell.cell_id,
        "kind": cell.kind,
        "params": dict(cell.params),
        "seed": cell.seed,
        "spec_hash": spec_hash,
        "scale": spec.scale.to_dict(),
    }


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    workers: int = 1,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> CampaignRunSummary:
    """Execute a campaign against a persistent store.

    Args:
        spec: The campaign definition.
        store_path: JSONL store path (created on first run).
        workers: Process-pool size; ``1`` runs every cell in-process.
        resume: Extend an existing store, skipping completed cells.
            The store's spec hash must match ``spec`` exactly.
        progress: Optional per-cell callback.

    Returns:
        A :class:`CampaignRunSummary`; per-cell failures are recorded,
        not raised, so one broken cell cannot abort a 48-hour campaign.

    Raises:
        CampaignError: The store exists but ``resume`` was not given,
            or ``workers < 1``.
        StoreIntegrityError: Resuming with a changed spec.
    """
    if workers < 1:
        raise CampaignError(f"workers must be >= 1, got {workers}")
    store = CampaignStore(store_path)
    completed: set = set()
    if store.exists():
        if not resume:
            raise CampaignError(
                f"store {store_path!r} already holds a campaign; resume it "
                "(--resume / resume=True) to extend it, or choose a new path"
            )
        store.verify_spec(spec)
        completed = store.completed_ids()
    else:
        store.initialise(spec)

    cells = spec.expand()
    spec_hash = spec.spec_hash()
    pending = [c for c in cells if c.cell_id not in completed]
    summary = CampaignRunSummary(
        total=len(cells),
        skipped=len(cells) - len(pending),
        executed=0,
        failed=0,
        duration_s=0.0,
    )
    start = time.perf_counter()

    def record_result(payload: Dict[str, Any]) -> None:
        record = CellRecord.from_dict({"type": "cell", **payload})
        store.append_cell(record)
        summary.records.append(record)
        summary.executed += 1
        if not record.ok:
            summary.failed += 1
        if progress is not None:
            progress(record, summary.skipped + summary.executed, len(cells))

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            record_result(execute_cell(_cell_payload(cell, spec, spec_hash)))
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    execute_cell, _cell_payload(cell, spec, spec_hash)
                ): cell
                for cell in pending
            }
            remaining = set(futures)
            # Append results as they land so a kill mid-campaign keeps
            # every finished cell, not just those before a barrier.
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    record_result(future.result())

    summary.duration_s = time.perf_counter() - start
    return summary
