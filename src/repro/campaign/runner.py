"""Campaign execution: parallel, persistent, resumable.

:func:`run_campaign` expands a :class:`CampaignSpec` into cells,
subtracts the cells already completed in the store (``resume``), and
executes the remainder through the campaign fabric
(:mod:`repro.campaign.fabric`): cells are sharded into work units and
dispatched through an executor -- in-process when ``workers == 1``
(pure, debuggable, no forks), a crash-recovering process pool, or N
owned local worker processes modeling multi-machine dispatch.  Each
cell runs with the scale reseeded to the cell's derived seed, so
results are identical whether a cell runs serially, in a pool, today
or in a resumed run next week.  Only the parent process writes to the
store: workers return plain dicts and the parent appends records as
they arrive.

This module keeps the cell-level primitives (:func:`execute_cell`,
:func:`execute_unit`) that workers actually run; scheduling policy --
retries, timeouts, checkpoints, streaming aggregation -- lives in
:class:`repro.campaign.fabric.CampaignScheduler`.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import CampaignError
from ..experiments.scale import ExperimentScale
from .registry import get_adapter
from .spec import CampaignCell, CampaignSpec
from .store import DurabilityPolicy, CellRecord

#: Progress callback: (record, done_count, total_count).
ProgressFn = Callable[[CellRecord, int, int], None]


@dataclass
class CampaignRunSummary:
    """Outcome of one ``run_campaign`` invocation.

    Attributes:
        total: Cells in the spec's expansion.
        skipped: Cells already complete in the store (resume).
        executed: Cells run by this invocation.
        failed: Executed cells whose final outcome is an error.
        duration_s: Wall-clock time of this invocation.
        records: The records appended by this invocation.
        retried: Cell attempts beyond the first (crashes, timeouts,
            requeues) absorbed by the fabric.
        quarantined: Cells quarantined as poison (each killed
            ``poison_threshold`` workers and got a synthesized
            ``fabric:poison`` error record instead of more respawns).
        degraded: Degradation note when the crash-loop breaker swapped
            a repeatedly-dying executor for ``inline`` (``None``
            otherwise).
    """

    total: int
    skipped: int
    executed: int
    failed: int
    duration_s: float
    records: List[CellRecord] = field(default_factory=list)
    retried: int = 0
    quarantined: int = 0
    degraded: Optional[str] = None

    @property
    def completed(self) -> int:
        """Cells now complete in the store."""
        return self.skipped + self.executed - self.failed


def execute_cell(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one cell and return its record payload.

    Module-level and dict-in/dict-out so it pickles cleanly across the
    process pool; also the ``workers == 1`` code path, so both modes
    share one implementation.
    """
    if os.environ.get("REPRO_FAULT_PLAN"):
        # The fault plane's cell sites (crash/hang/slow) fire here, in
        # whatever process executes the cell.  Lazy import: the fabric
        # imports this module at import time.
        from .fabric.faults import fire_cell_faults
        fire_cell_faults(payload["cell_id"])
    scale = ExperimentScale.from_dict(payload["scale"]).with_seed(
        int(payload["seed"])
    )
    record: Dict[str, Any] = {
        "cell_id": payload["cell_id"],
        "kind": payload["kind"],
        "params": dict(payload["params"]),
        "seed": int(payload["seed"]),
        "spec_hash": payload["spec_hash"],
        "worker": os.getpid(),
    }
    start = time.perf_counter()
    try:
        adapter = get_adapter(payload["kind"])
        metrics = adapter.run(payload["params"], scale)
    except Exception as exc:  # noqa: BLE001 - a cell must never kill the run
        record.update(
            status="error",
            metrics=None,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
        )
    else:
        record.update(status="ok", metrics=metrics, error=None)
    record["duration_s"] = time.perf_counter() - start
    record["finished_at"] = time.time()
    return record


def execute_unit(
    payloads: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Run one work unit (a shard of cells) and return its records.

    The pool executor ships whole units to amortise dispatch overhead;
    a unit is just its cells run in order.
    """
    return [execute_cell(payload) for payload in payloads]


def _cell_payload(cell: CampaignCell, spec: CampaignSpec,
                  spec_hash: str) -> Dict[str, Any]:
    return {
        "cell_id": cell.cell_id,
        "kind": cell.kind,
        "params": dict(cell.params),
        "seed": cell.seed,
        "spec_hash": spec_hash,
        "scale": spec.scale.to_dict(),
    }


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    workers: int = 1,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    executor: str = "auto",
    shard_size: Optional[int] = None,
    max_attempts: int = 2,
    cell_timeout_s: Optional[float] = None,
    durability: Optional[DurabilityPolicy] = None,
    shards: Optional[int] = None,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 2.0,
    poison_threshold: int = 3,
    crashloop_threshold: int = 5,
) -> CampaignRunSummary:
    """Execute a campaign against a persistent store.

    Args:
        spec: The campaign definition.
        store_path: Store path or URI; the backend is chosen by
            :func:`repro.campaign.stores.resolve_backend` (JSONL file,
            ``.sqlite`` database, or sharded directory).
        workers: Worker count; ``1`` runs every cell in-process.
        resume: Extend an existing store, skipping completed cells.
            The store's spec hash must match ``spec`` exactly.
        progress: Optional per-cell callback.
        executor: ``auto`` (inline for one worker, pool otherwise),
            ``inline``, ``pool``, or ``spawn`` (owned local workers).
        shard_size: Cells per dispatched work unit (default: sized by
            the scheduler for the executor).
        max_attempts: Attempts per cell before a synthesized error
            record (crashed/timed-out attempts produce no record of
            their own).
        cell_timeout_s: Per-cell wall-clock budget; exceeding it kills
            the worker and consumes one attempt.
        durability: Store durability policy (default: fsync on every
            record).
        shards: Shard count for the sharded-directory backend.
        backoff_base_s: First-retry backoff scale (retries wait an
            exponentially-growing, deterministically-jittered delay).
        backoff_cap_s: Upper bound the retry backoff saturates at.
        poison_threshold: Worker deaths attributed to one cell before
            it is quarantined with a ``fabric:poison`` record.
        crashloop_threshold: Consecutive no-progress worker-death
            polls before a ``pool``/``spawn`` executor is degraded to
            ``inline``.

    Returns:
        A :class:`CampaignRunSummary`; per-cell failures are recorded,
        not raised, so one broken cell cannot abort a 48-hour campaign.

    Raises:
        CampaignError: The store exists but ``resume`` was not given,
            or ``workers < 1``.
        StoreIntegrityError: Resuming with a changed spec.
    """
    # Imported lazily: the fabric imports execute_cell/execute_unit
    # from this module at import time.
    from .fabric import CampaignScheduler, FabricConfig

    config = FabricConfig(
        workers=workers,
        executor=executor,
        shard_size=shard_size,
        max_attempts=max_attempts,
        cell_timeout_s=cell_timeout_s,
        durability=durability,
        shards=shards,
        backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s,
        poison_threshold=poison_threshold,
        crashloop_threshold=crashloop_threshold,
    )
    scheduler = CampaignScheduler(spec, store_path, config)
    return scheduler.run(resume=resume, progress=progress)
