"""Preset campaign grids: the paper's protocol and a CI smoke grid.

:func:`paper_campaign` declares the study's full sweep -- every lag
host of Figs. 4-7, the QoE N x motion grid, the bandwidth caps and the
mobile scenarios, per platform -- which at ``PAPER_SCALE`` is the
700-session/48-hour protocol.  :func:`smoke_campaign` is the same shape
shrunk to a handful of seconds for end-to-end checks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CampaignError
from ..experiments.bandwidth_study import RATE_LIMITS
from ..experiments.dynamics_study import DYNAMICS_SCENARIOS
from ..experiments.lag_study import LAG_SCENARIOS
from ..experiments.mobile_study import MOBILE_SCENARIOS
from ..experiments.scale import ExperimentScale
from ..media.frames import FrameSpec
from .spec import CampaignSpec, ScenarioSpec

#: Platforms measured by the paper.
ALL_PLATFORMS = ("zoom", "webex", "meet")

#: Scale used by ``--smoke`` runs: one short session per cell.
SMOKE_SCALE = ExperimentScale(
    sessions=1,
    lag_session_duration_s=6.0,
    qoe_session_duration_s=5.0,
    content_spec=FrameSpec(96, 72, 10),
    probe_count=3,
    score_frames=12,
)


def paper_campaign(
    platforms: Sequence[str] = ALL_PLATFORMS,
    kinds: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    master_seed: int = 7,
    name: str = "paper-protocol",
) -> CampaignSpec:
    """The full measurement grid of the paper, optionally filtered.

    Args:
        platforms: Platforms to sweep (every scenario crosses these).
        kinds: Restrict to a subset of scenario kinds (default: all).
        scale: Per-cell sessions/durations (default:
            :class:`ExperimentScale`'s quick profile; pass
            ``PAPER_SCALE`` for the 48-hour protocol).
        master_seed: Root of per-cell seed derivation.
        name: Campaign name recorded in the store.
    """
    platforms = tuple(platforms)
    hosts = tuple(host for _, host, _ in LAG_SCENARIOS)
    groups = {host: group for _, host, group in LAG_SCENARIOS}
    scenarios = {
        "lag": lambda: [
            ScenarioSpec("lag", {
                "platform": platforms,
                "host": (host,),
                "group": (groups[host],),
            })
            for host in hosts
        ],
        "endpoints": lambda: [
            ScenarioSpec("endpoints", {"platform": platforms})
        ],
        "qoe": lambda: [
            ScenarioSpec("qoe", {
                "platform": platforms,
                "motion": ("low", "high"),
                "participants": (2, 3, 4),
                "region": ("US", "EU"),
            })
        ],
        "bandwidth": lambda: [
            ScenarioSpec("bandwidth", {
                "platform": platforms,
                "motion": ("high",),
                "limit_bps": tuple(RATE_LIMITS),
            })
        ],
        "mobile": lambda: [
            ScenarioSpec("mobile", {
                "platform": platforms,
                "scenario": tuple(MOBILE_SCENARIOS),
            })
        ],
        "dynamics": lambda: [
            ScenarioSpec("dynamics", {
                "platform": platforms,
                "scenario": tuple(DYNAMICS_SCENARIOS),
            })
        ],
    }
    selected = tuple(kinds) if kinds else tuple(scenarios)
    unknown = [kind for kind in selected if kind not in scenarios]
    if unknown:
        raise CampaignError(
            f"unknown scenario kinds {unknown}; expected a subset of "
            f"{tuple(scenarios)}"
        )
    specs = []
    for kind in selected:
        specs.extend(scenarios[kind]())
    return CampaignSpec(
        name=name, scenarios=specs, scale=scale, master_seed=master_seed
    )


def calibration_campaign(
    cells: int = 24,
    spin_ms: float = 0.0,
    crash_flags: Sequence[str] = (),
    master_seed: int = 7,
    name: str = "calibration",
) -> CampaignSpec:
    """A grid of deterministic no-op cells.

    Used by the scheduler-overhead benchmark (``spin_ms=0``: every
    second not spent in the cell is fabric overhead) and by the
    kill/resume self-check (``spin_ms>0`` paces the grid so a SIGKILL
    lands mid-flight; each ``crash_flags`` path adds one cell whose
    first attempt SIGKILLs its own worker).

    Args:
        cells: Number of plain no-op cells (``index`` axis).
        spin_ms: Busy-wait per cell, in milliseconds.
        crash_flags: Flag-file paths; one worker-crash cell per path.
        master_seed: Root of per-cell seed derivation.
        name: Campaign name recorded in the store.
    """
    if cells < 1 and not crash_flags:
        raise CampaignError("a calibration campaign needs at least one cell")
    scenarios = []
    if cells >= 1:
        scenarios.append(
            ScenarioSpec("noop", {
                "index": tuple(range(cells)),
                "spin_ms": (spin_ms,),
            })
        )
    # One scenario per crash flag: a shared axis would Cartesian-
    # product the flags against every index.
    for i, flag in enumerate(crash_flags):
        scenarios.append(
            ScenarioSpec("noop", {
                "index": (cells + i,),
                "spin_ms": (spin_ms,),
                "crash_flag": (flag,),
            })
        )
    return CampaignSpec(
        name=name,
        scenarios=tuple(scenarios),
        scale=SMOKE_SCALE,
        master_seed=master_seed,
    )


def smoke_campaign(
    platforms: Sequence[str] = ("zoom", "meet"),
    master_seed: int = 7,
) -> CampaignSpec:
    """A tiny end-to-end grid, seconds total.

    Two platforms of lag + qoe, plus one dynamics ramp cell so CI
    exercises the condition-timeline path (mid-session link mutation,
    per-phase reporting) end to end.
    """
    platforms = tuple(platforms)
    return CampaignSpec(
        name="smoke",
        scenarios=(
            ScenarioSpec("lag", {
                "platform": platforms,
                "host": ("US-East",),
                "group": ("US",),
            }),
            ScenarioSpec("qoe", {
                "platform": platforms,
                "motion": ("low",),
                "participants": (2,),
            }),
            ScenarioSpec("dynamics", {
                "platform": platforms[:1],
                "scenario": ("ramp",),
            }),
        ),
        scale=SMOKE_SCALE,
        master_seed=master_seed,
    )
