"""Campaign orchestration: parallel, persistent, resumable grids.

The paper runs 700+ sessions over 48 hours; this package turns the
one-shot drivers of :mod:`repro.experiments` into that kind of
campaign:

* :mod:`repro.campaign.spec` -- declarative sweeps
  (:class:`ScenarioSpec`, :class:`CampaignSpec`) expanded into concrete
  :class:`CampaignCell` work items with deterministic per-cell seeds,
* :mod:`repro.campaign.registry` -- uniform adapters dispatching cells
  to the experiment drivers and serializing their results,
* :mod:`repro.campaign.store` -- an append-only JSONL result store with
  spec-hash integrity checking,
* :mod:`repro.campaign.runner` -- in-process or process-pool execution
  with resume (completed cells are skipped by id),
* :mod:`repro.campaign.aggregate` -- paper-style tables and Markdown
  reports folded from the store alone,
* :mod:`repro.campaign.grids` -- the paper's full grid and a smoke
  preset.

Quickstart::

    from repro.campaign import run_campaign, smoke_campaign

    spec = smoke_campaign()
    summary = run_campaign(spec, "campaign.jsonl", workers=2)
    summary = run_campaign(spec, "campaign.jsonl", workers=2, resume=True)
    assert summary.executed == 0   # everything was already done

    from repro.campaign import report_from_store
    print(report_from_store("campaign.jsonl").render())

Or from the shell: ``python -m repro campaign run --smoke --workers 2``.
"""

from .aggregate import build_report, report_from_store, status_table
from .grids import ALL_PLATFORMS, SMOKE_SCALE, paper_campaign, smoke_campaign
from .registry import ADAPTERS, ScenarioAdapter, get_adapter
from .runner import CampaignRunSummary, execute_cell, run_campaign
from .spec import (
    KNOWN_KINDS,
    CampaignCell,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from .store import CampaignStore, CellRecord

__all__ = [
    "ADAPTERS",
    "ALL_PLATFORMS",
    "CampaignCell",
    "CampaignRunSummary",
    "CampaignSpec",
    "CampaignStore",
    "CellRecord",
    "KNOWN_KINDS",
    "SMOKE_SCALE",
    "ScenarioAdapter",
    "ScenarioSpec",
    "build_report",
    "derive_seed",
    "execute_cell",
    "get_adapter",
    "paper_campaign",
    "report_from_store",
    "run_campaign",
    "smoke_campaign",
    "status_table",
]
