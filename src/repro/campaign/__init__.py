"""Campaign orchestration: parallel, persistent, resumable grids.

The paper runs 700+ sessions over 48 hours; this package turns the
one-shot drivers of :mod:`repro.experiments` into that kind of
campaign:

* :mod:`repro.campaign.spec` -- declarative sweeps
  (:class:`ScenarioSpec`, :class:`CampaignSpec`) expanded into concrete
  :class:`CampaignCell` work items with deterministic per-cell seeds,
* :mod:`repro.campaign.registry` -- uniform adapters dispatching cells
  to the experiment drivers and serializing their results,
* :mod:`repro.campaign.store` / :mod:`~repro.campaign.stores` --
  pluggable result stores behind one contract: append-only JSONL,
  sqlite, or a sharded directory, selected by path
  (:func:`open_store`), all with spec-hash integrity checking and a
  configurable :class:`DurabilityPolicy`,
* :mod:`repro.campaign.fabric` -- the distributed campaign fabric:
  sharded scheduling over pluggable executors (in-process,
  crash-recovering pool, owned local workers), per-cell retry/timeout,
  durable checkpoints, streaming aggregation and live watch,
* :mod:`repro.campaign.runner` -- :func:`run_campaign`, the one-call
  entry point with resume (completed cells are skipped by id),
* :mod:`repro.campaign.aggregate` -- paper-style tables and Markdown
  reports folded from the store alone,
* :mod:`repro.campaign.grids` -- the paper's full grid, a smoke
  preset, and the no-op calibration grid.

Quickstart::

    from repro.campaign import run_campaign, smoke_campaign

    spec = smoke_campaign()
    summary = run_campaign(spec, "campaign.sqlite", workers=2)
    summary = run_campaign(spec, "campaign.sqlite", workers=2, resume=True)
    assert summary.executed == 0   # everything was already done

    from repro.campaign import report_from_store
    print(report_from_store("campaign.sqlite").render())

Or from the shell: ``python -m repro campaign run --smoke --workers 2``,
then ``python -m repro campaign watch <store>`` from another terminal.
"""

from .aggregate import (
    KIND_TABLES,
    TableSpec,
    build_report,
    report_from_store,
    status_table,
    table_for,
)
from .fabric import (
    FAULT_CLASSES,
    CampaignScheduler,
    ChaosCaseResult,
    FabricConfig,
    FaultPlan,
    FaultSpec,
    GcSelfCheckResult,
    ProgressSnapshot,
    SelfCheckResult,
    StreamingAggregator,
    backoff_delay,
    make_executor,
    run_all_selfchecks,
    run_chaos_case,
    run_chaos_matrix,
    run_gc_selfcheck,
    run_selfcheck,
    watch_store,
)
from .grids import (
    ALL_PLATFORMS,
    SMOKE_SCALE,
    calibration_campaign,
    paper_campaign,
    smoke_campaign,
)
from .registry import ADAPTERS, ScenarioAdapter, get_adapter
from .runner import (
    CampaignRunSummary,
    execute_cell,
    execute_unit,
    run_campaign,
)
from .spec import (
    KNOWN_KINDS,
    CampaignCell,
    CampaignSpec,
    ScenarioSpec,
    derive_seed,
)
from .store import (
    CampaignStore,
    CampaignStoreBase,
    CellRecord,
    DurabilityPolicy,
    GcStats,
    JsonlCampaignStore,
)
from .store_shards import ShardedCampaignStore
from .store_sqlite import SqliteCampaignStore
from .stores import BACKENDS, open_store, resolve_backend

__all__ = [
    "ADAPTERS",
    "ALL_PLATFORMS",
    "BACKENDS",
    "CampaignCell",
    "CampaignRunSummary",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStore",
    "CampaignStoreBase",
    "CellRecord",
    "ChaosCaseResult",
    "DurabilityPolicy",
    "FAULT_CLASSES",
    "FabricConfig",
    "FaultPlan",
    "FaultSpec",
    "GcSelfCheckResult",
    "GcStats",
    "JsonlCampaignStore",
    "KIND_TABLES",
    "KNOWN_KINDS",
    "ProgressSnapshot",
    "SMOKE_SCALE",
    "ScenarioAdapter",
    "ScenarioSpec",
    "SelfCheckResult",
    "ShardedCampaignStore",
    "SqliteCampaignStore",
    "StreamingAggregator",
    "TableSpec",
    "backoff_delay",
    "build_report",
    "calibration_campaign",
    "derive_seed",
    "execute_cell",
    "execute_unit",
    "get_adapter",
    "make_executor",
    "open_store",
    "paper_campaign",
    "report_from_store",
    "resolve_backend",
    "run_all_selfchecks",
    "run_campaign",
    "run_chaos_case",
    "run_chaos_matrix",
    "run_gc_selfcheck",
    "run_selfcheck",
    "smoke_campaign",
    "status_table",
    "table_for",
    "watch_store",
]
