"""Declarative campaign specifications and grid expansion.

The paper's measurement campaign is a grid: platform x region pair x
feed/motion x network condition, repeated for sessions over 48 hours.
A :class:`ScenarioSpec` declares one such sweep for one experiment kind
(its axes are Cartesian-producted), a :class:`CampaignSpec` bundles
several sweeps with a shared :class:`ExperimentScale` and a master
seed, and :meth:`CampaignSpec.expand` turns the whole thing into
concrete :class:`CampaignCell` work items with deterministic per-cell
seeds -- the unit the runner schedules and the store persists.

Determinism contract: the same spec always expands to the same cells,
in the same order, with the same ``cell_id`` and ``seed`` values, so a
resumed campaign can skip completed cells by id and any cell can be
re-run bit-for-bit in isolation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..errors import CampaignError
from ..experiments.scale import ExperimentScale
from ..net.dynamics import ConditionTimeline

#: Experiment kinds the registry knows how to dispatch.  ``noop`` is
#: the calibration kind: a deterministic near-zero-cost cell used to
#: measure scheduler overhead and to exercise crash recovery without
#: paying for a real session.
KNOWN_KINDS = ("lag", "qoe", "bandwidth", "mobile", "endpoints", "dynamics",
               "noop")


def canonical_json(value: Any) -> str:
    """Canonical JSON used for hashing and cell identity."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def freeze_axis_value(value: Any) -> Any:
    """Normalise one axis value to its JSON-serializable form.

    Condition timelines are first-class axis values: they are frozen to
    their tagged dict form here, so expansion, the ``cell_id``, the
    spec hash and the JSONL store all see one canonical spelling
    whether a grid was authored with :class:`ConditionTimeline`
    objects or reloaded from a persisted spec.
    """
    if isinstance(value, ConditionTimeline):
        return value.as_axis_value()
    return value


def derive_seed(master_seed: int, cell_id: str) -> int:
    """A deterministic 31-bit seed for one cell.

    Independent of expansion order and of the other cells in the grid:
    adding a scenario to a campaign never changes the seeds of existing
    cells, which keeps resumed and extended campaigns comparable.
    """
    digest = hashlib.sha256(f"{master_seed}:{cell_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep: an experiment kind plus axes to grid over.

    Attributes:
        kind: One of :data:`KNOWN_KINDS`.
        axes: Axis name -> tuple of values.  Every combination becomes
            one cell; axes the kind's adapter does not sweep fall back
            to adapter defaults.  Values must be JSON-serializable
            scalars (``None`` is allowed, e.g. an uncapped bandwidth
            limit) or :class:`~repro.net.dynamics.ConditionTimeline`
            objects, which are frozen to their serialized form.
    """

    kind: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]

    def __init__(self, kind: str, axes: Mapping[str, Sequence[Any]]):
        if kind not in KNOWN_KINDS:
            raise CampaignError(
                f"unknown scenario kind {kind!r}; expected one of {KNOWN_KINDS}"
            )
        if not axes:
            raise CampaignError(f"scenario {kind!r} needs at least one axis")
        frozen = []
        for name in sorted(axes):
            values = tuple(freeze_axis_value(v) for v in axes[name])
            if not values:
                raise CampaignError(
                    f"axis {name!r} of scenario {kind!r} has no values"
                )
            frozen.append((name, values))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "axes", tuple(frozen))

    def cells(self) -> Iterator[Dict[str, Any]]:
        """Every axis combination as a params dict."""
        names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            yield dict(zip(names, combo))

    def cell_count(self) -> int:
        """Size of this sweep's grid."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form."""
        return {
            "kind": self.kind,
            "axes": {name: list(values) for name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a sweep persisted with :meth:`to_dict`."""
        try:
            return cls(data["kind"], data["axes"])
        except (KeyError, TypeError) as exc:
            raise CampaignError(f"bad scenario record: {exc!r}") from exc


@dataclass(frozen=True)
class CampaignCell:
    """One concrete unit of work: an experiment kind with bound params.

    Attributes:
        kind: Experiment kind (registry dispatch key).
        params: Fully-bound axis values for this cell.
        cell_id: Stable identity string (kind plus canonical params).
        seed: Per-cell seed derived from the campaign master seed.
    """

    kind: str
    params: Mapping[str, Any]
    cell_id: str
    seed: int

    @classmethod
    def build(cls, kind: str, params: Mapping[str, Any],
              master_seed: int) -> "CampaignCell":
        """Derive identity and seed for one expanded combination."""
        cell_id = f"{kind}:" + ",".join(
            f"{name}={canonical_json(params[name])}" for name in sorted(params)
        )
        return cls(
            kind=kind,
            params=dict(params),
            cell_id=cell_id,
            seed=derive_seed(master_seed, cell_id),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named collection of sweeps run at one scale from one seed.

    Attributes:
        name: Campaign name (recorded in the store header).
        scenarios: The sweeps to expand.
        scale: Sessions/durations profile shared by every cell (each
            cell runs it reseeded with its own derived seed).
        master_seed: Root of the per-cell seed derivation.
    """

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    scale: ExperimentScale = field(default_factory=ExperimentScale)
    master_seed: int = 7

    def __init__(self, name: str, scenarios: Sequence[ScenarioSpec],
                 scale: ExperimentScale | None = None, master_seed: int = 7):
        if not name:
            raise CampaignError("a campaign needs a name")
        if not scenarios:
            raise CampaignError("a campaign needs at least one scenario")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "scenarios", tuple(scenarios))
        object.__setattr__(
            self, "scale", scale if scale is not None else ExperimentScale()
        )
        object.__setattr__(self, "master_seed", int(master_seed))

    def expand(self) -> List[CampaignCell]:
        """The full grid as deterministic, deduplicated cells."""
        cells: List[CampaignCell] = []
        seen: set[str] = set()
        for scenario in self.scenarios:
            for params in scenario.cells():
                cell = CampaignCell.build(
                    scenario.kind, params, self.master_seed
                )
                if cell.cell_id in seen:
                    continue
                seen.add(cell.cell_id)
                cells.append(cell)
        return cells

    def cell_count(self) -> int:
        """Number of distinct cells in the campaign."""
        return len(self.expand())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form (hashed and stored verbatim)."""
        return {
            "name": self.name,
            "master_seed": self.master_seed,
            "scale": self.scale.to_dict(),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign persisted with :meth:`to_dict`."""
        try:
            return cls(
                name=data["name"],
                scenarios=[
                    ScenarioSpec.from_dict(s) for s in data["scenarios"]
                ],
                scale=ExperimentScale.from_dict(data["scale"]),
                master_seed=int(data["master_seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"bad campaign record: {exc!r}") from exc

    def spec_hash(self) -> str:
        """Content hash binding stored results to this exact spec."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode()
        ).hexdigest()[:16]

    def save(self, path: str) -> None:
        """Write this spec as JSON (``campaign run --spec-json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Read a spec written by :meth:`save`.

        Raises:
            CampaignError: The file is missing or not a valid spec.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"cannot load spec {path!r}: {exc}") from exc
        return cls.from_dict(data)
