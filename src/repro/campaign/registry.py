"""Uniform adapters from campaign cells to the experiment drivers.

Each :class:`ScenarioAdapter` binds one experiment kind to the driver
that runs it (:mod:`repro.experiments`), fills defaults for axes a cell
does not sweep, and flattens the driver's rich result object into a
JSON-serializable metrics dict (scalars plus serialized
:class:`~repro.core.results.SummaryStats`) that the store can persist
and the aggregator can fold into paper-style tables without importing
any driver types.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping

import numpy as np

from ..core.results import SummaryStats
from ..errors import CampaignError
from ..experiments.bandwidth_study import limit_label, run_bandwidth_cell
from ..experiments.dynamics_study import run_dynamics_cell
from ..experiments.endpoint_study import run_endpoint_study
from ..experiments.lag_study import run_lag_scenario
from ..experiments.mobile_study import run_mobile_scenario
from ..experiments.qoe_study import EU_ROSTER, US_ROSTER, run_qoe_cell
from ..experiments.scale import ExperimentScale
from ..net.dynamics import ConditionTimeline
from .spec import KNOWN_KINDS

Metrics = Dict[str, Any]


def sanitize(value: Any) -> Any:
    """Replace non-finite floats with ``None``, recursively.

    Keeps stored metrics strict JSON (``NaN`` is not) and equality-
    comparable (``NaN != NaN`` would make identical cells look
    different), e.g. VIFp when ``compute_vifp`` is off.
    """
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


@dataclass(frozen=True)
class ScenarioAdapter:
    """Dispatch entry for one experiment kind.

    Attributes:
        kind: Registry key (a member of ``KNOWN_KINDS``).
        defaults: Fallback values for params a cell leaves unbound.
        execute: ``(params, scale) -> metrics`` driver invocation.
    """

    kind: str
    defaults: Mapping[str, Any]
    execute: Callable[[Mapping[str, Any], ExperimentScale], Metrics]

    def bind(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Cell params over adapter defaults; rejects unknown names."""
        unknown = set(params) - set(self.defaults)
        if unknown:
            raise CampaignError(
                f"scenario kind {self.kind!r} does not accept params "
                f"{sorted(unknown)}; known: {sorted(self.defaults)}"
            )
        bound = dict(self.defaults)
        bound.update(params)
        return bound

    def run(self, params: Mapping[str, Any],
            scale: ExperimentScale) -> Metrics:
        """Execute the driver for one fully-bound cell."""
        return sanitize(self.execute(self.bind(params), scale))


def _lag_execute(params: Mapping[str, Any],
                 scale: ExperimentScale) -> Metrics:
    result = run_lag_scenario(
        params["platform"], params["host"], params["group"], scale=scale
    )
    all_lags = [lag for lags in result.lags_ms.values() for lag in lags]
    all_rtts = [
        rtt for rtts in result.rtts_ms.values() for rtt in rtts
        if np.isfinite(rtt)
    ]
    lo, hi = result.lag_range_ms()
    return {
        "median_lag_ms": {
            receiver: result.median_lag_ms(receiver)
            for receiver in sorted(result.lags_ms)
        },
        "mean_rtt_ms": {
            receiver: float(np.nanmean(rtts))
            for receiver, rtts in sorted(result.rtts_ms.items())
        },
        "lag_band_ms": [lo, hi],
        "lag_ms": SummaryStats.from_values(all_lags).to_dict(),
        "rtt_ms": (
            SummaryStats.from_values(all_rtts).to_dict() if all_rtts else None
        ),
        "sessions": len(result.sessions),
    }


def _qoe_execute(params: Mapping[str, Any],
                 scale: ExperimentScale) -> Metrics:
    roster = US_ROSTER if params["region"] == "US" else EU_ROSTER
    cell = run_qoe_cell(
        params["platform"],
        params["motion"],
        int(params["participants"]),
        roster=roster,
        scale=scale,
        compute_vifp=bool(params["compute_vifp"]),
    )
    return {
        "psnr_db": {"mean": cell.psnr_mean, "std": cell.psnr_std},
        "ssim": {"mean": cell.ssim_mean, "std": cell.ssim_std},
        "vifp": {"mean": cell.vifp_mean, "std": cell.vifp_std},
        "upload_mbps": cell.upload_mbps,
        "download_mbps": cell.download_mbps,
        "sessions": len(cell.sessions),
    }


def _bandwidth_execute(params: Mapping[str, Any],
                       scale: ExperimentScale) -> Metrics:
    limit = params["limit_bps"]
    cell = run_bandwidth_cell(
        params["platform"],
        params["motion"],
        None if limit is None else float(limit),
        scale=scale,
        compute_vifp=bool(params["compute_vifp"]),
    )
    return {
        "limit_label": limit_label(cell.limit_bps),
        "psnr_db": cell.psnr_mean,
        "ssim": cell.ssim_mean,
        "vifp": cell.vifp_mean,
        "mos_lqo": cell.mos_lqo_mean,
        "download_mbps": cell.download_mbps,
        "frames_frozen": cell.frames_frozen,
    }


def _mobile_execute(params: Mapping[str, Any],
                    scale: ExperimentScale) -> Metrics:
    result = run_mobile_scenario(
        params["platform"],
        params["scenario"],
        scale=scale,
        num_participants=int(params["participants"]),
    )
    return {
        "devices": {
            device: {
                "median_cpu_pct": reading.median_cpu_pct,
                "mean_rate_mbps": reading.mean_rate_mbps,
                "discharge_mah": reading.discharge_mah,
                "cpu_pct": SummaryStats.from_values(
                    reading.cpu_samples
                ).to_dict() if reading.cpu_samples else None,
            }
            for device, reading in sorted(result.readings.items())
        },
        "participants": result.num_participants,
    }


def _dynamics_execute(params: Mapping[str, Any],
                      scale: ExperimentScale) -> Metrics:
    # A cell may carry a full serialized timeline (a grid axis value)
    # or just a named scenario; the driver resolves either.
    timeline = ConditionTimeline.coerce(params["timeline"])
    cell = run_dynamics_cell(
        params["platform"],
        params["scenario"],
        scale=scale,
        motion=params["motion"],
        timeline=timeline,
    )
    return {
        "psnr_db": cell.psnr_mean,
        "ssim": cell.ssim_mean,
        "phases": {
            report.name: {
                "psnr_db": report.psnr_mean,
                "ssim": report.ssim_mean,
                "download_mbps": report.download_mbps,
                "freeze_fraction": report.freeze_fraction,
                "frames_scored": report.frames_scored,
                "shaper_dropped": report.shaper_dropped,
            }
            for report in cell.phases
        },
        "phase_order": [report.name for report in cell.phases],
        "sessions": cell.sessions,
    }


def _noop_execute(params: Mapping[str, Any],
                  scale: ExperimentScale) -> Metrics:
    """Calibration cell: deterministic metrics, near-zero cost.

    ``spin_ms`` busy-waits to give a cell measurable duration (so a
    kill/resume check can reliably interrupt a grid mid-flight);
    ``crash_flag``, when set to a path that does not exist yet, creates
    the file and SIGKILLs the worker process -- the first attempt dies,
    the retry finds the flag and succeeds, which is exactly the
    worker-crash-recovery path the fabric must survive.  Metrics are a
    pure function of the cell seed and params, so a crashed-and-retried
    cell is content-identical to an uninterrupted one.
    """
    import signal

    flag = params["crash_flag"]
    if flag and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)
    spin_ms = float(params["spin_ms"])
    if spin_ms > 0:
        deadline = time.perf_counter() + spin_ms / 1000.0
        while time.perf_counter() < deadline:
            pass
    index = int(params["index"])
    return {
        "index": index,
        "value": (scale.seed * 2654435761 + index) % (2 ** 31),
    }


def _endpoints_execute(params: Mapping[str, Any],
                       scale: ExperimentScale) -> Metrics:
    sessions = params["sessions"]
    result = run_endpoint_study(
        params["platform"],
        scale=scale,
        sessions=None if sessions is None else int(sessions),
    )
    return {
        "mean_endpoints_per_client": result.mean_endpoints_per_client(),
        "endpoints_per_session": result.endpoints_per_session(),
        "ports": sorted(result.ports),
        "sessions": result.sessions,
    }


#: kind -> adapter; covers every member of ``KNOWN_KINDS``.
ADAPTERS: Dict[str, ScenarioAdapter] = {
    adapter.kind: adapter
    for adapter in (
        ScenarioAdapter(
            kind="lag",
            defaults={"platform": "zoom", "host": "US-East", "group": "US"},
            execute=_lag_execute,
        ),
        ScenarioAdapter(
            kind="qoe",
            defaults={
                "platform": "zoom",
                "motion": "high",
                "participants": 3,
                "region": "US",
                "compute_vifp": False,
            },
            execute=_qoe_execute,
        ),
        ScenarioAdapter(
            kind="bandwidth",
            defaults={
                "platform": "zoom",
                "motion": "high",
                "limit_bps": None,
                "compute_vifp": False,
            },
            execute=_bandwidth_execute,
        ),
        ScenarioAdapter(
            kind="mobile",
            defaults={"platform": "zoom", "scenario": "LM", "participants": 3},
            execute=_mobile_execute,
        ),
        ScenarioAdapter(
            kind="endpoints",
            defaults={"platform": "zoom", "sessions": None},
            execute=_endpoints_execute,
        ),
        ScenarioAdapter(
            kind="noop",
            defaults={"index": 0, "spin_ms": 0.0, "crash_flag": None},
            execute=_noop_execute,
        ),
        ScenarioAdapter(
            kind="dynamics",
            defaults={
                "platform": "zoom",
                "scenario": "ramp",
                "motion": "high",
                "timeline": None,
            },
            execute=_dynamics_execute,
        ),
    )
}

assert set(ADAPTERS) == set(KNOWN_KINDS)


def get_adapter(kind: str) -> ScenarioAdapter:
    """The adapter for one kind (raises CampaignError if unknown)."""
    try:
        return ADAPTERS[kind]
    except KeyError:
        raise CampaignError(
            f"no adapter registered for scenario kind {kind!r}"
        ) from None
