"""Fold persisted campaign records into paper-style outputs.

Everything here works from the JSONL store alone -- no driver objects,
no re-execution -- so a report can be rendered on a different machine
(or months later) from the store file.  Tables reuse
:class:`~repro.analysis.tables.TextTable` and the Markdown shape of
:class:`~repro.analysis.report.ExperimentReport`, so campaign output
matches the per-figure benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from ..analysis.report import ExperimentReport
from ..analysis.tables import TextTable
from .spec import CampaignSpec
from .store import CampaignStore, CellRecord

#: Render order and section titles for the per-kind tables.
KIND_TITLES = {
    "lag": "Streaming lag (Figs. 4-11 protocol)",
    "endpoints": "Endpoint architecture (Fig. 3 protocol)",
    "qoe": "Video QoE (Figs. 12/16 protocol)",
    "bandwidth": "Bandwidth constraints (Figs. 17-18 protocol)",
    "mobile": "Mobile resources (Fig. 19 protocol)",
    "dynamics": "Network dynamics (scripted condition timelines)",
}


def _fmt(value: Optional[float], spec: str = ".1f") -> str:
    if value is None:
        return "-"
    formatted = format(value, spec)
    return "-" if formatted == "nan" else formatted


def _ok_records(records: Iterable[CellRecord], kind: str) -> List[CellRecord]:
    return sorted(
        (r for r in records if r.kind == kind and r.ok and r.metrics),
        key=lambda r: r.cell_id,
    )


def lag_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, host) lag cell."""
    table = TextTable(
        ["Platform", "Host", "Group", "Lag band (ms)", "Median lag (ms)",
         "Mean RTT (ms)", "Sessions"]
    )
    for record in _ok_records(records, "lag"):
        metrics = record.metrics
        lo, hi = metrics["lag_band_ms"]
        rtt = metrics.get("rtt_ms")
        table.add_row([
            record.params.get("platform", "?"),
            record.params.get("host", "?"),
            record.params.get("group", "?"),
            f"{_fmt(lo)} - {_fmt(hi)}",
            _fmt(metrics["lag_ms"]["median"]),
            _fmt(rtt["mean"]) if rtt else "-",
            metrics.get("sessions", "-"),
        ])
    return table


def endpoints_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per endpoint-study cell (the 20/19.5/1.8 finding)."""
    table = TextTable(
        ["Platform", "Sessions", "Mean endpoints/client", "Ports"]
    )
    for record in _ok_records(records, "endpoints"):
        metrics = record.metrics
        table.add_row([
            record.params.get("platform", "?"),
            metrics.get("sessions", "-"),
            _fmt(metrics["mean_endpoints_per_client"]),
            ",".join(str(p) for p in metrics.get("ports", [])),
        ])
    return table


def qoe_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, motion, N) QoE cell."""
    table = TextTable(
        ["Platform", "Motion", "N", "Region", "PSNR (dB)", "SSIM",
         "Up Mbps", "Down Mbps"]
    )
    for record in _ok_records(records, "qoe"):
        metrics = record.metrics
        table.add_row([
            record.params.get("platform", "?"),
            record.params.get("motion", "?"),
            record.params.get("participants", "-"),
            record.params.get("region", "US"),
            f"{_fmt(metrics['psnr_db']['mean'])} "
            f"+/- {_fmt(metrics['psnr_db']['std'])}",
            f"{_fmt(metrics['ssim']['mean'], '.3f')} "
            f"+/- {_fmt(metrics['ssim']['std'], '.3f')}",
            _fmt(metrics["upload_mbps"], ".2f"),
            _fmt(metrics["download_mbps"], ".2f"),
        ])
    return table


def bandwidth_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, motion, limit) bandwidth cell."""
    table = TextTable(
        ["Platform", "Motion", "Limit", "PSNR (dB)", "SSIM", "MOS-LQO",
         "Down Mbps", "Frozen"]
    )
    for record in _ok_records(records, "bandwidth"):
        metrics = record.metrics
        table.add_row([
            record.params.get("platform", "?"),
            record.params.get("motion", "?"),
            metrics.get("limit_label", "-"),
            _fmt(metrics["psnr_db"]),
            _fmt(metrics["ssim"], ".3f"),
            _fmt(metrics["mos_lqo"], ".2f"),
            _fmt(metrics["download_mbps"], ".2f"),
            metrics.get("frames_frozen", "-"),
        ])
    return table


def mobile_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, scenario, device) mobile reading."""
    table = TextTable(
        ["Platform", "Scenario", "N", "Device", "Median CPU %",
         "Rate (Mbps)", "mAh"]
    )
    for record in _ok_records(records, "mobile"):
        metrics = record.metrics
        for device, reading in metrics["devices"].items():
            table.add_row([
                record.params.get("platform", "?"),
                record.params.get("scenario", "?"),
                metrics.get("participants", "-"),
                device,
                _fmt(reading["median_cpu_pct"], ".0f"),
                _fmt(reading["mean_rate_mbps"], ".2f"),
                _fmt(reading["discharge_mah"], ".2f"),
            ])
    return table


def dynamics_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, scenario, phase), in timeline order."""
    table = TextTable(
        ["Platform", "Scenario", "Phase", "PSNR (dB)", "SSIM",
         "Down Mbps", "Freeze", "Drops"]
    )
    for record in _ok_records(records, "dynamics"):
        metrics = record.metrics
        phases = metrics.get("phases", {})
        for name in metrics.get("phase_order", sorted(phases)):
            reading = phases[name]
            table.add_row([
                record.params.get("platform", "?"),
                record.params.get("scenario", "?"),
                name,
                _fmt(reading["psnr_db"]),
                _fmt(reading["ssim"], ".3f"),
                _fmt(reading["download_mbps"], ".2f"),
                _fmt(reading["freeze_fraction"], ".2f"),
                reading.get("shaper_dropped", "-"),
            ])
    return table


#: kind -> table builder, in render order.
TABLE_BUILDERS = {
    "lag": lag_table,
    "endpoints": endpoints_table,
    "qoe": qoe_table,
    "bandwidth": bandwidth_table,
    "mobile": mobile_table,
    "dynamics": dynamics_table,
}


def status_rows(spec: CampaignSpec,
                records: Sequence[CellRecord]) -> List[List[object]]:
    """Per-kind (total, completed, failed, pending) progress rows."""
    cells = spec.expand()
    totals: Counter = Counter(c.kind for c in cells)
    ok_ids = {r.cell_id for r in records if r.ok}
    failed_ids = {r.cell_id for r in records if not r.ok} - ok_ids
    rows = []
    for kind in KIND_TITLES:
        if kind not in totals:
            continue
        kind_cells = [c for c in cells if c.kind == kind]
        done = sum(1 for c in kind_cells if c.cell_id in ok_ids)
        failed = sum(1 for c in kind_cells if c.cell_id in failed_ids)
        rows.append(
            [kind, totals[kind], done, failed, totals[kind] - done]
        )
    return rows


def status_table(spec: CampaignSpec,
                 records: Sequence[CellRecord]) -> TextTable:
    """Progress of a campaign as a table."""
    table = TextTable(["Kind", "Cells", "Completed", "Failed", "Pending"])
    for row in status_rows(spec, records):
        table.add_row(row)
    return table


def build_report(spec: CampaignSpec,
                 records: Sequence[CellRecord]) -> ExperimentReport:
    """A paper-style Markdown report assembled from stored records."""
    report = ExperimentReport(f"Campaign report: {spec.name}")
    ok = [r for r in records if r.ok]
    # A cell that failed and then succeeded on resume is not a
    # failure; only cells with no ok record count.
    ok_ids = {r.cell_id for r in ok}
    failed = [r for r in records if not r.ok and r.cell_id not in ok_ids]
    runtime = sum(r.duration_s for r in records)
    report.add_table(
        "Campaign summary",
        ["Kind", "Cells", "Completed", "Failed", "Pending"],
        status_rows(spec, records),
        notes=[
            f"spec hash {spec.spec_hash()}, master seed {spec.master_seed}",
            f"{len(ok)} cells stored, {len(failed)} failures, "
            f"{runtime:.1f} s of cell runtime",
        ],
    )
    for kind, title in KIND_TITLES.items():
        if not any(r.kind == kind and r.ok for r in ok):
            continue
        report.add_section(title, TABLE_BUILDERS[kind](ok).render())
    if failed:
        table = TextTable(["Cell", "Error"])
        for record in sorted(failed, key=lambda r: r.cell_id):
            table.add_row([record.cell_id, record.error or "?"])
        report.add_section("Failures", table.render())
    return report


def report_from_store(store_path: str) -> ExperimentReport:
    """Render the report for a store file, from the store alone."""
    store = CampaignStore(store_path)
    return build_report(store.spec(), store.cell_records())
