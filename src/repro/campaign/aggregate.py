"""Fold persisted campaign records into paper-style outputs.

Everything here works from stored cell records alone -- no driver
objects, no re-execution -- so a report can be rendered on a different
machine (or months later) from any store backend.  Tables reuse
:class:`~repro.analysis.tables.TextTable` and the Markdown shape of
:class:`~repro.analysis.report.ExperimentReport`, so campaign output
matches the per-figure benchmarks.

Each paper table is declared as a :class:`TableSpec`: headers plus a
*per-record* row builder.  The batch path (:func:`build_report`) and
the streaming path (:class:`~repro.campaign.fabric.streaming.StreamingAggregator`,
which folds records into table rows as they arrive) share these specs,
which is what keeps an incrementally-built report identical to one
assembled from the store after the fact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from ..analysis.report import ExperimentReport
from ..analysis.tables import TextTable
from .spec import CampaignSpec
from .store import CellRecord
from .stores import open_store

#: Render order and section titles for the per-kind tables.
KIND_TITLES = {
    "lag": "Streaming lag (Figs. 4-11 protocol)",
    "endpoints": "Endpoint architecture (Fig. 3 protocol)",
    "qoe": "Video QoE (Figs. 12/16 protocol)",
    "bandwidth": "Bandwidth constraints (Figs. 17-18 protocol)",
    "mobile": "Mobile resources (Fig. 19 protocol)",
    "dynamics": "Network dynamics (scripted condition timelines)",
    "noop": "Scheduler calibration (no-op cells)",
}


def _fmt(value: Optional[float], spec: str = ".1f") -> str:
    if value is None:
        return "-"
    formatted = format(value, spec)
    return "-" if formatted == "nan" else formatted


def _ok_records(records: Iterable[CellRecord], kind: str) -> List[CellRecord]:
    """The latest ok record per cell of ``kind``, sorted by cell id."""
    latest: Dict[str, CellRecord] = {}
    for record in records:
        if record.kind == kind and record.ok and record.metrics:
            latest[record.cell_id] = record
    return [latest[cell_id] for cell_id in sorted(latest)]


# --------------------------------------------------------------------- #
# Per-kind table specs: headers + rows for ONE ok record.
# --------------------------------------------------------------------- #

RowBuilder = Callable[[CellRecord], List[List[object]]]


@dataclass(frozen=True)
class TableSpec:
    """One paper table: its headers and its per-record row builder."""

    headers: List[str]
    rows: RowBuilder


def _lag_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    lo, hi = metrics["lag_band_ms"]
    rtt = metrics.get("rtt_ms")
    return [[
        record.params.get("platform", "?"),
        record.params.get("host", "?"),
        record.params.get("group", "?"),
        f"{_fmt(lo)} - {_fmt(hi)}",
        _fmt(metrics["lag_ms"]["median"]),
        _fmt(rtt["mean"]) if rtt else "-",
        metrics.get("sessions", "-"),
    ]]


def _endpoints_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    return [[
        record.params.get("platform", "?"),
        metrics.get("sessions", "-"),
        _fmt(metrics["mean_endpoints_per_client"]),
        ",".join(str(p) for p in metrics.get("ports", [])),
    ]]


def _qoe_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    return [[
        record.params.get("platform", "?"),
        record.params.get("motion", "?"),
        record.params.get("participants", "-"),
        record.params.get("region", "US"),
        f"{_fmt(metrics['psnr_db']['mean'])} "
        f"+/- {_fmt(metrics['psnr_db']['std'])}",
        f"{_fmt(metrics['ssim']['mean'], '.3f')} "
        f"+/- {_fmt(metrics['ssim']['std'], '.3f')}",
        _fmt(metrics["upload_mbps"], ".2f"),
        _fmt(metrics["download_mbps"], ".2f"),
    ]]


def _bandwidth_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    return [[
        record.params.get("platform", "?"),
        record.params.get("motion", "?"),
        metrics.get("limit_label", "-"),
        _fmt(metrics["psnr_db"]),
        _fmt(metrics["ssim"], ".3f"),
        _fmt(metrics["mos_lqo"], ".2f"),
        _fmt(metrics["download_mbps"], ".2f"),
        metrics.get("frames_frozen", "-"),
    ]]


def _mobile_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    return [
        [
            record.params.get("platform", "?"),
            record.params.get("scenario", "?"),
            metrics.get("participants", "-"),
            device,
            _fmt(reading["median_cpu_pct"], ".0f"),
            _fmt(reading["mean_rate_mbps"], ".2f"),
            _fmt(reading["discharge_mah"], ".2f"),
        ]
        for device, reading in metrics["devices"].items()
    ]


def _dynamics_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    phases = metrics.get("phases", {})
    return [
        [
            record.params.get("platform", "?"),
            record.params.get("scenario", "?"),
            name,
            _fmt(phases[name]["psnr_db"]),
            _fmt(phases[name]["ssim"], ".3f"),
            _fmt(phases[name]["download_mbps"], ".2f"),
            _fmt(phases[name]["freeze_fraction"], ".2f"),
            phases[name].get("shaper_dropped", "-"),
        ]
        for name in metrics.get("phase_order", sorted(phases))
    ]


def _noop_rows(record: CellRecord) -> List[List[object]]:
    metrics = record.metrics
    return [[
        metrics.get("index", "-"),
        metrics.get("value", "-"),
        record.seed,
        _fmt(record.duration_s * 1000.0, ".2f"),
    ]]


#: kind -> table spec, in render order.
KIND_TABLES: Dict[str, TableSpec] = {
    "lag": TableSpec(
        ["Platform", "Host", "Group", "Lag band (ms)", "Median lag (ms)",
         "Mean RTT (ms)", "Sessions"],
        _lag_rows,
    ),
    "endpoints": TableSpec(
        ["Platform", "Sessions", "Mean endpoints/client", "Ports"],
        _endpoints_rows,
    ),
    "qoe": TableSpec(
        ["Platform", "Motion", "N", "Region", "PSNR (dB)", "SSIM",
         "Up Mbps", "Down Mbps"],
        _qoe_rows,
    ),
    "bandwidth": TableSpec(
        ["Platform", "Motion", "Limit", "PSNR (dB)", "SSIM", "MOS-LQO",
         "Down Mbps", "Frozen"],
        _bandwidth_rows,
    ),
    "mobile": TableSpec(
        ["Platform", "Scenario", "N", "Device", "Median CPU %",
         "Rate (Mbps)", "mAh"],
        _mobile_rows,
    ),
    "dynamics": TableSpec(
        ["Platform", "Scenario", "Phase", "PSNR (dB)", "SSIM",
         "Down Mbps", "Freeze", "Drops"],
        _dynamics_rows,
    ),
    "noop": TableSpec(
        ["Index", "Value", "Seed", "Duration (ms)"],
        _noop_rows,
    ),
}


def table_for(kind: str, records: Iterable[CellRecord]) -> TextTable:
    """The paper table of one kind, from ok records."""
    spec = KIND_TABLES[kind]
    table = TextTable(list(spec.headers))
    for record in _ok_records(records, kind):
        for row in spec.rows(record):
            table.add_row(row)
    return table


def lag_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, host) lag cell."""
    return table_for("lag", records)


def endpoints_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per endpoint-study cell (the 20/19.5/1.8 finding)."""
    return table_for("endpoints", records)


def qoe_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, motion, N) QoE cell."""
    return table_for("qoe", records)


def bandwidth_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, motion, limit) bandwidth cell."""
    return table_for("bandwidth", records)


def mobile_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, scenario, device) mobile reading."""
    return table_for("mobile", records)


def dynamics_table(records: Iterable[CellRecord]) -> TextTable:
    """One row per (platform, scenario, phase), in timeline order."""
    return table_for("dynamics", records)


#: kind -> table builder, in render order (kept for compatibility).
TABLE_BUILDERS = {
    kind: (lambda records, _kind=kind: table_for(_kind, records))
    for kind in KIND_TABLES
}


# --------------------------------------------------------------------- #
# Progress and report assembly.
# --------------------------------------------------------------------- #

def status_rows_from_ids(
    spec: CampaignSpec, ok_ids: Set[str], failed_ids: Set[str]
) -> List[List[object]]:
    """Per-kind (total, completed, failed, pending) progress rows."""
    cells = spec.expand()
    totals: Counter = Counter(c.kind for c in cells)
    failed_ids = failed_ids - ok_ids
    rows = []
    for kind in KIND_TITLES:
        if kind not in totals:
            continue
        kind_cells = [c for c in cells if c.kind == kind]
        done = sum(1 for c in kind_cells if c.cell_id in ok_ids)
        failed = sum(1 for c in kind_cells if c.cell_id in failed_ids)
        rows.append(
            [kind, totals[kind], done, failed, totals[kind] - done]
        )
    return rows


def status_rows(spec: CampaignSpec,
                records: Sequence[CellRecord]) -> List[List[object]]:
    """Per-kind progress rows derived from raw records."""
    ok_ids = {r.cell_id for r in records if r.ok}
    failed_ids = {r.cell_id for r in records if not r.ok}
    return status_rows_from_ids(spec, ok_ids, failed_ids)


def status_table(spec: CampaignSpec,
                 records: Sequence[CellRecord]) -> TextTable:
    """Progress of a campaign as a table."""
    table = TextTable(["Kind", "Cells", "Completed", "Failed", "Pending"])
    for row in status_rows(spec, records):
        table.add_row(row)
    return table


def build_report(spec: CampaignSpec,
                 records: Sequence[CellRecord]) -> ExperimentReport:
    """A paper-style Markdown report assembled from stored records.

    Folds the records through the streaming aggregator, so a report
    built incrementally during a run and one built from the store
    afterwards are the same document.
    """
    from .fabric.streaming import StreamingAggregator

    aggregator = StreamingAggregator(spec)
    for record in records:
        aggregator.fold(record)
    return aggregator.build_report()


def report_from_store(store_path: str) -> ExperimentReport:
    """Render the report for any store backend, from the store alone."""
    store = open_store(store_path)
    return build_report(store.spec(), store.cell_records())
