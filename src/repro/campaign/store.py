"""Persistent result stores for measurement campaigns.

A campaign store holds one header record (the campaign spec and its
content hash) plus one record per finished cell.  The header hash is
the integrity check: a store is only ever extended by the exact spec
that created it, and a crash mid-campaign loses at most the in-flight
cell -- every completed cell survives, so ``resume`` is a set
difference between the spec's expansion and the ids already persisted.

This module defines the pieces every backend shares -- the
:class:`CellRecord` schema, the :class:`DurabilityPolicy`, and the
:class:`CampaignStoreBase` interface -- plus the original JSONL
backend (:class:`JsonlCampaignStore`).  The sqlite and sharded
directory backends live in :mod:`repro.campaign.store_sqlite` and
:mod:`repro.campaign.store_shards`; :func:`repro.campaign.stores.open_store`
selects a backend from the store path.

``CampaignStore`` remains an alias of the JSONL backend so existing
callers (and stores on disk) keep working unchanged.
"""

from __future__ import annotations

import errno as errno_mod
import json
import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import CampaignError, StoreIntegrityError
from .spec import CampaignSpec, canonical_json

#: Record discriminators on the ``type`` field of each record.
HEADER_TYPE = "campaign"
CELL_TYPE = "cell"

#: errno values treated as *transient* on append: the media is busy or
#: momentarily full, not corrupt, so a bounded retry is safe.  Anything
#: else (and any integrity error) still refuses immediately.
TRANSIENT_APPEND_ERRNOS = frozenset({
    errno_mod.EIO, errno_mod.ENOSPC, errno_mod.EAGAIN, errno_mod.EINTR,
})

#: Retries (beyond the first try) one append gets on transient errors.
APPEND_RETRIES = 3


@dataclass
class CellRecord:
    """One persisted cell outcome.

    Attributes:
        cell_id: Stable identity from the spec expansion.
        kind: Experiment kind.
        params: Axis values the cell ran with.
        seed: Derived per-cell seed the drivers were reseeded with.
        spec_hash: Hash of the owning campaign spec.
        status: ``"ok"`` or ``"error"``.
        duration_s: Wall-clock runtime of the cell.
        finished_at: Unix timestamp when the cell completed.
        metrics: Serialized driver output (``None`` on error).
        error: Exception text when ``status == "error"``.
        worker: Pid of the process that executed the cell.
    """

    cell_id: str
    kind: str
    params: Dict[str, Any]
    seed: int
    spec_hash: str
    status: str = "ok"
    duration_s: float = 0.0
    finished_at: float = 0.0
    metrics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    worker: int = 0

    @property
    def ok(self) -> bool:
        """Whether the cell completed successfully."""
        return self.status == "ok"

    def content_key(self) -> Tuple[str, str, str, int, str, str]:
        """Run-invariant identity of this record's *content*.

        Excludes wall-clock fields (``duration_s``, ``finished_at``)
        and the executing pid, so two records are content-equal exactly
        when the cell produced the same result -- the equality the
        kill/resume self-check asserts across interrupted and
        uninterrupted runs.
        """
        return (
            self.cell_id,
            self.kind,
            canonical_json(self.params),
            self.seed,
            self.status,
            canonical_json([self.metrics, self.error]),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The serialized record payload."""
        return {
            "type": CELL_TYPE,
            "cell_id": self.cell_id,
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "spec_hash": self.spec_hash,
            "status": self.status,
            "duration_s": self.duration_s,
            "finished_at": self.finished_at,
            "metrics": self.metrics,
            "error": self.error,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellRecord":
        """Rebuild a record from one parsed payload."""
        try:
            return cls(
                cell_id=data["cell_id"],
                kind=data["kind"],
                params=dict(data["params"]),
                seed=int(data["seed"]),
                spec_hash=data["spec_hash"],
                status=data["status"],
                duration_s=float(data.get("duration_s", 0.0)),
                finished_at=float(data.get("finished_at", 0.0)),
                metrics=data.get("metrics"),
                error=data.get("error"),
                worker=int(data.get("worker", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"bad cell record: {exc!r}") from exc


@dataclass(frozen=True)
class DurabilityPolicy:
    """How eagerly appends are forced to disk.

    ``fsync_every=1`` (the default) fsyncs after every record -- the
    original store behaviour, where a kill loses at most the in-flight
    cell.  ``fsync_every=N`` batches the fsync over N appends (a kill
    can lose up to the last N-1 records; they are simply re-run on
    resume), and ``fsync_every=0`` only forces on :meth:`close`.
    Every policy still *flushes* per append, so live readers
    (``campaign watch``) see records immediately.
    """

    fsync_every: int = 1

    def __post_init__(self) -> None:
        if self.fsync_every < 0:
            raise CampaignError(
                f"fsync_every must be >= 0, got {self.fsync_every}"
            )

    @classmethod
    def coerce(cls, value: "DurabilityPolicy | int | None") -> "DurabilityPolicy":
        """Accept a policy, an ``fsync_every`` int, or ``None``."""
        if value is None:
            return cls()
        if isinstance(value, DurabilityPolicy):
            return value
        return cls(fsync_every=int(value))


@dataclass(frozen=True)
class GcStats:
    """What one store compaction (``campaign gc``) reclaimed.

    Attributes:
        records_kept: Cell records surviving the rewrite.
        errors_dropped: Error records dropped because a later ``ok``
            record superseded them (latest-wins, same as resume).
        debris_bytes: Bytes of torn-tail crash debris healed away
            (always 0 for backends without line-level appends).
    """

    records_kept: int
    errors_dropped: int
    debris_bytes: int

    @property
    def reclaimed(self) -> bool:
        """Whether the compaction actually removed anything."""
        return self.errors_dropped > 0 or self.debris_bytes > 0


def partition_superseded(
    payloads: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], int]:
    """Split payloads into survivors and a superseded-error count.

    An error record is superseded when any ``ok`` record exists for
    the same cell -- exactly the records ``completed_ids`` already
    ignores, so dropping them never changes what a resume or report
    sees.  Non-cell payloads (headers) pass through untouched.
    """
    ok_ids = {
        p["cell_id"] for p in payloads
        if p.get("type") == CELL_TYPE and p.get("status") == "ok"
    }
    kept = [
        p for p in payloads
        if p.get("type") != CELL_TYPE
        or p.get("status") == "ok"
        or p.get("cell_id") not in ok_ids
    ]
    return kept, len(payloads) - len(kept)


def build_header(spec: CampaignSpec) -> Dict[str, Any]:
    """The header payload every backend persists at initialise time."""
    return {
        "type": HEADER_TYPE,
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "created_at": time.time(),
        "cells": spec.cell_count(),
        "spec": spec.to_dict(),
    }


class CampaignStoreBase(ABC):
    """Backend interface for campaign persistence.

    Concrete backends implement existence, header I/O, appends and
    (incremental) reads; everything spec-shaped -- initialise, header
    caching, spec verification, record hydration -- is shared here so
    the scheduler, aggregator and watch code never see backend
    details.
    """

    #: Short name used in CLI output and the backend registry.
    backend = "base"

    def __init__(self, path: str,
                 durability: "DurabilityPolicy | int | None" = None) -> None:
        if not path:
            raise CampaignError("a store needs a path")
        self.path = path
        self.durability = DurabilityPolicy.coerce(durability)
        self._header: Optional[Dict[str, Any]] = None

    # -- backend surface -------------------------------------------------

    @abstractmethod
    def exists(self) -> bool:
        """Whether anything has been written at this path."""

    @abstractmethod
    def _write_header(self, header: Dict[str, Any]) -> None:
        """Persist the header of a fresh store."""

    @abstractmethod
    def _load_header(self) -> Optional[Dict[str, Any]]:
        """Read the persisted header payload (``None`` if absent)."""

    @abstractmethod
    def _append_payload(self, payload: Dict[str, Any]) -> None:
        """Persist one cell payload."""

    @abstractmethod
    def _iter_payloads(self) -> Iterator[Dict[str, Any]]:
        """Every persisted cell payload, in append order."""

    @abstractmethod
    def tail(self, cursor: Any = None) -> Tuple[List[CellRecord], Any]:
        """Records appended since ``cursor`` plus the new cursor.

        ``cursor=None`` starts from the beginning.  Cursors are
        backend-opaque; callers only thread them through.  Reading is
        safe while another process appends (``campaign watch``).
        """

    def flush(self) -> None:
        """Force buffered appends to disk (a durability barrier)."""

    def close(self) -> None:
        """Flush and release any held handles."""

    # -- shared behaviour ------------------------------------------------

    def initialise(self, spec: CampaignSpec) -> None:
        """Write the header for a fresh store.

        Raises:
            CampaignError: The path already holds a campaign (use
                :meth:`verify_spec` + resume instead of overwriting).
        """
        if self.exists():
            raise CampaignError(
                f"store {self.path!r} already exists; resume it or pick "
                "a new path"
            )
        header = build_header(spec)
        self._write_header(header)
        self._header = header

    def header(self) -> Dict[str, Any]:
        """The campaign header record (parsed once, then cached --
        the header of an append-only store never changes)."""
        if self._header is not None:
            return self._header
        if not self.exists():
            raise CampaignError(f"no campaign store at {self.path!r}")
        header = self._load_header()
        if header is None or header.get("type") != HEADER_TYPE:
            raise StoreIntegrityError(
                f"{self.path!r} does not start with a campaign header"
            )
        self._header = header
        return header

    def spec(self) -> CampaignSpec:
        """The campaign spec persisted in the header."""
        return CampaignSpec.from_dict(self.header()["spec"])

    def spec_hash(self) -> str:
        """The spec hash persisted in the header."""
        return self.header()["spec_hash"]

    def verify_spec(self, spec: CampaignSpec) -> None:
        """Check that ``spec`` is the one this store was created from.

        Raises:
            StoreIntegrityError: The hashes differ -- resuming would mix
                results from two different grids in one store.
        """
        stored = self.spec_hash()
        current = spec.spec_hash()
        if stored != current:
            raise StoreIntegrityError(
                f"store {self.path!r} was created by spec {stored}, "
                f"refusing to resume with spec {current} "
                "(campaign definition changed; use a new store path)"
            )

    def cell_records(self) -> List[CellRecord]:
        """Every persisted cell record.

        Ordering contract: records of the *same cell* appear in append
        order (so latest-wins dedup is well defined); backends may
        interleave records of different cells (the sharded store reads
        shard by shard).
        """
        return [CellRecord.from_dict(p) for p in self._iter_payloads()]

    def completed_ids(self) -> Set[str]:
        """Ids of cells that finished successfully (resume skips these)."""
        return {r.cell_id for r in self.cell_records() if r.ok}

    def append_cell(self, record: CellRecord) -> None:
        """Persist one finished cell, absorbing transient I/O errors.

        An ``OSError`` whose errno is in :data:`TRANSIENT_APPEND_ERRNOS`
        (EIO, ENOSPC, EAGAIN, EINTR -- busy or momentarily full media)
        gets up to :data:`APPEND_RETRIES` retries: the backend first
        recovers its append state (:meth:`_recover_append` reopens
        handles, which also heals any partial line the failed write
        tore into the file), then waits a short deterministic backoff.
        Anything else -- and every integrity refusal -- propagates
        unchanged: corruption is never retried into.
        """
        payload = record.to_dict()
        attempt = 0
        while True:
            try:
                if os.environ.get("REPRO_FAULT_PLAN"):
                    # Lazy: fabric imports this module at import time.
                    from .fabric.faults import fire_store_append
                    fire_store_append(self, payload)
                self._append_payload(payload)
                return
            except OSError as exc:
                if (
                    exc.errno not in TRANSIENT_APPEND_ERRNOS
                    or attempt >= APPEND_RETRIES
                ):
                    raise CampaignError(
                        f"store {self.path!r}: append of "
                        f"{record.cell_id!r} failed after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                attempt += 1
                self._recover_append()
                from .fabric.faults import backoff_delay
                time.sleep(backoff_delay(
                    f"append:{record.cell_id}", attempt,
                    base_s=0.01, cap_s=0.2,
                ))

    def _recover_append(self) -> None:
        """Reset append state after a transient write failure.

        Backends with persistent handles reopen them here so the next
        try starts from a clean handle (and, for line-append backends,
        a healed tail).  The base implementation is a no-op.
        """

    def _torn_write(self, payload: Dict[str, Any]) -> None:
        """Tear a partial line into the backend's file (fault plane).

        Only meaningful for line-append backends; the default is a
        no-op so injecting ``torn`` into a backend without a torn-write
        concept degrades to a plain transient error.
        """

    def sidecar_path(self, name: str) -> str:
        """Where scheduler sidecar state (checkpoints) lives."""
        return f"{self.path}.{name}"

    def gc(self) -> GcStats:
        """Compact the store in place.

        Drops error records superseded by a later ``ok`` for the same
        cell and (for line-append backends) heals torn-tail crash
        debris by rewriting only complete records.  The rewrite is
        atomic per file, the header survives unchanged, and nothing a
        resume, report or watch would use is ever removed.

        Raises:
            CampaignError: The backend does not support compaction, or
                the store does not exist.
        """
        raise CampaignError(
            f"{self.backend} store {self.path!r} does not support gc"
        )

    def __enter__(self) -> "CampaignStoreBase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------------- #
# JSONL helpers shared with the sharded-directory backend.
# --------------------------------------------------------------------- #

def iter_jsonl_payloads(
    path: str, start: int = 0
) -> Iterator[Tuple[Dict[str, Any], int]]:
    """Yield ``(payload, end_offset)`` for each complete record line.

    A truncated or corrupt *final* line (crash mid-append) is
    tolerated -- iteration stops before it and the cursor never
    advances past it; corruption anywhere earlier raises, because an
    append-only file damaged mid-stream means lost results, not an
    interrupted write.
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        offset = start
        for raw in handle:
            end = offset + len(raw)
            if not raw.endswith(b"\n"):
                return  # partial tail write; re-read once completed
            stripped = raw.strip()
            if not stripped:
                offset = end
                continue
            try:
                payload = json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if handle.read(1):
                    raise CampaignError(
                        f"{path}: corrupt record at byte {offset}"
                    ) from None
                return  # corrupt final line: the interrupted append
            yield payload, end
            offset = end


def open_jsonl_append(path: str):
    """Open a JSONL file for appending, healing crash debris first.

    A kill mid-append leaves a torn (or corrupt) final line.  Readers
    tolerate it, but appending *after* it would turn interrupted-write
    debris into permanent mid-file corruption -- so the partial tail is
    truncated away before the append handle opens.  The records it held
    were never complete, so nothing real is lost; the cell re-runs on
    resume.
    """
    if os.path.exists(path) and os.path.getsize(path) > 0:
        valid_end = 0
        for _, end in iter_jsonl_payloads(path):
            valid_end = end
        if valid_end < os.path.getsize(path):
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
    return open(path, "a", encoding="utf-8")


def gc_jsonl_file(path: str) -> Tuple[int, int, int]:
    """Compact one JSONL record file in place.

    Returns ``(records_kept, errors_dropped, debris_bytes)``.  The
    replacement file holds exactly the surviving complete records, so
    a torn tail (crash debris readers already skip) is healed away;
    the rewrite goes through a fsynced temporary and ``os.replace``,
    so a kill mid-gc leaves the original file intact.
    """
    size = os.path.getsize(path)
    payloads: List[Dict[str, Any]] = []
    valid_end = 0
    for payload, end in iter_jsonl_payloads(path):
        payloads.append(payload)
        valid_end = end
    kept, dropped = partition_superseded(payloads)
    tmp = f"{path}.gc"
    with open(tmp, "w", encoding="utf-8") as handle:
        for payload in kept:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if os.environ.get("REPRO_FAULT_PLAN"):
        # The crash window the gc selfcheck rehearses: dying here must
        # leave the original file untouched (plus a stray .gc temp).
        from .fabric.faults import fire_gc_crash
        fire_gc_crash()
    os.replace(tmp, path)
    cells_kept = sum(1 for p in kept if p.get("type") == CELL_TYPE)
    return cells_kept, dropped, size - valid_end


class JsonlCampaignStore(CampaignStoreBase):
    """Append-only single-file JSONL persistence (the original store).

    The first line is the header; every later line is one cell.  A
    persistent append handle is kept open across appends (opening and
    fsyncing per record made the store the bottleneck for sub-second
    cells); the :class:`DurabilityPolicy` controls how often the handle
    is fsynced.
    """

    backend = "jsonl"

    def __init__(self, path: str,
                 durability: "DurabilityPolicy | int | None" = None) -> None:
        super().__init__(path, durability)
        self._handle = None
        self._unsynced = 0

    # -- reading ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def _load_header(self) -> Optional[Dict[str, Any]]:
        for payload, _ in iter_jsonl_payloads(self.path):
            return payload
        return None

    def _iter_payloads(self) -> Iterator[Dict[str, Any]]:
        for payload, _ in iter_jsonl_payloads(self.path):
            if payload.get("type") == CELL_TYPE:
                yield payload

    def tail(self, cursor: Any = None) -> Tuple[List[CellRecord], Any]:
        offset = 0 if cursor is None else int(cursor)
        if not os.path.exists(self.path):
            return [], offset
        records: List[CellRecord] = []
        for payload, end in iter_jsonl_payloads(self.path, start=offset):
            if payload.get("type") == CELL_TYPE:
                records.append(CellRecord.from_dict(payload))
            offset = end
        return records, offset

    # -- writing ---------------------------------------------------------

    def _write_header(self, header: Dict[str, Any]) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._write_line(header)

    def _append_payload(self, payload: Dict[str, Any]) -> None:
        self._write_line(payload)

    def _write_line(self, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open_jsonl_append(self.path)
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        # Always flush (live watchers tail the file); fsync per policy.
        self._handle.flush()
        self._unsynced += 1
        every = self.durability.fsync_every
        if every and self._unsynced >= every:
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._unsynced:
                os.fsync(self._handle.fileno())
                self._unsynced = 0

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def _recover_append(self) -> None:
        # Drop the persistent handle; the next write reopens through
        # open_jsonl_append, which truncates any torn tail the failed
        # write left behind.
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
            self._unsynced = 0

    def _torn_write(self, payload: Dict[str, Any]) -> None:
        with open(self.path, "ab") as handle:
            handle.write(b'{"type": "cell", "cell_id": "to')
            handle.flush()
            os.fsync(handle.fileno())

    # -- compaction ------------------------------------------------------

    def gc(self) -> GcStats:
        if not self.exists():
            raise CampaignError(f"no campaign store at {self.path!r}")
        self.header()  # integrity check before any rewrite
        self.close()  # the rewrite replaces the append handle's file
        return GcStats(*gc_jsonl_file(self.path))


#: Backwards-compatible name for the original (JSONL) store.
CampaignStore = JsonlCampaignStore
