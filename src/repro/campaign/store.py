"""Persistent JSONL result store for measurement campaigns.

Layout: the first line is a header record carrying the campaign spec
and its content hash; every subsequent line is one cell record (the
cell identity, the derived seed, timings, a status, and the serialized
metrics).  Append-only JSONL means a crash mid-campaign loses at most
the in-flight cell, every completed cell survives, and ``resume`` is a
set-difference between the spec's expansion and the ids already on
disk.  The header hash is the integrity check: a store is only ever
extended by the exact spec that created it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from ..errors import CampaignError, StoreIntegrityError
from .spec import CampaignSpec

#: Record discriminators on the ``type`` field of each JSONL line.
HEADER_TYPE = "campaign"
CELL_TYPE = "cell"


@dataclass
class CellRecord:
    """One persisted cell outcome.

    Attributes:
        cell_id: Stable identity from the spec expansion.
        kind: Experiment kind.
        params: Axis values the cell ran with.
        seed: Derived per-cell seed the drivers were reseeded with.
        spec_hash: Hash of the owning campaign spec.
        status: ``"ok"`` or ``"error"``.
        duration_s: Wall-clock runtime of the cell.
        finished_at: Unix timestamp when the cell completed.
        metrics: Serialized driver output (``None`` on error).
        error: Exception text when ``status == "error"``.
        worker: Pid of the process that executed the cell.
    """

    cell_id: str
    kind: str
    params: Dict[str, Any]
    seed: int
    spec_hash: str
    status: str = "ok"
    duration_s: float = 0.0
    finished_at: float = 0.0
    metrics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    worker: int = 0

    @property
    def ok(self) -> bool:
        """Whether the cell completed successfully."""
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL line payload."""
        return {
            "type": CELL_TYPE,
            "cell_id": self.cell_id,
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "spec_hash": self.spec_hash,
            "status": self.status,
            "duration_s": self.duration_s,
            "finished_at": self.finished_at,
            "metrics": self.metrics,
            "error": self.error,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellRecord":
        """Rebuild a record from one parsed JSONL line."""
        try:
            return cls(
                cell_id=data["cell_id"],
                kind=data["kind"],
                params=dict(data["params"]),
                seed=int(data["seed"]),
                spec_hash=data["spec_hash"],
                status=data["status"],
                duration_s=float(data.get("duration_s", 0.0)),
                finished_at=float(data.get("finished_at", 0.0)),
                metrics=data.get("metrics"),
                error=data.get("error"),
                worker=int(data.get("worker", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"bad cell record: {exc!r}") from exc


class CampaignStore:
    """Append-only JSONL persistence for one campaign's results."""

    def __init__(self, path: str) -> None:
        if not path:
            raise CampaignError("a store needs a path")
        self.path = path
        self._header: Optional[Dict[str, Any]] = None

    # -- reading ---------------------------------------------------------

    def exists(self) -> bool:
        """Whether anything has been written at this path."""
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def _lines(self) -> Iterable[Dict[str, Any]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A truncated trailing line (crash mid-append) only
                    # costs that cell; anything earlier is corruption.
                    if handle.readline():
                        raise CampaignError(
                            f"{self.path}:{lineno}: corrupt record"
                        ) from None
                    return

    def header(self) -> Dict[str, Any]:
        """The campaign header record (parsed once, then cached --
        the header of an append-only store never changes)."""
        if self._header is not None:
            return self._header
        if not self.exists():
            raise CampaignError(f"no campaign store at {self.path!r}")
        for record in self._lines():
            if record.get("type") == HEADER_TYPE:
                self._header = record
                return record
            break
        raise StoreIntegrityError(
            f"{self.path!r} does not start with a campaign header"
        )

    def spec(self) -> CampaignSpec:
        """The campaign spec persisted in the header."""
        return CampaignSpec.from_dict(self.header()["spec"])

    def spec_hash(self) -> str:
        """The spec hash persisted in the header."""
        return self.header()["spec_hash"]

    def cell_records(self) -> List[CellRecord]:
        """Every persisted cell record, in append order."""
        records = []
        for record in self._lines():
            if record.get("type") == CELL_TYPE:
                records.append(CellRecord.from_dict(record))
        return records

    def completed_ids(self) -> Set[str]:
        """Ids of cells that finished successfully (resume skips these)."""
        return {r.cell_id for r in self.cell_records() if r.ok}

    # -- writing ---------------------------------------------------------

    def initialise(self, spec: CampaignSpec) -> None:
        """Write the header for a fresh store.

        Raises:
            CampaignError: The path already holds a campaign (use
                :meth:`verify_spec` + resume instead of overwriting).
        """
        if self.exists():
            raise CampaignError(
                f"store {self.path!r} already exists; resume it or pick "
                "a new path"
            )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        header = {
            "type": HEADER_TYPE,
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "created_at": time.time(),
            "cells": spec.cell_count(),
            "spec": spec.to_dict(),
        }
        self._append(header)
        self._header = header

    def verify_spec(self, spec: CampaignSpec) -> None:
        """Check that ``spec`` is the one this store was created from.

        Raises:
            StoreIntegrityError: The hashes differ -- resuming would mix
                results from two different grids in one file.
        """
        stored = self.spec_hash()
        current = spec.spec_hash()
        if stored != current:
            raise StoreIntegrityError(
                f"store {self.path!r} was created by spec {stored}, "
                f"refusing to resume with spec {current} "
                "(campaign definition changed; use a new store path)"
            )

    def append_cell(self, record: CellRecord) -> None:
        """Persist one finished cell."""
        self._append(record.to_dict())

    def _append(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
