"""Sharded-directory campaign store backend.

Layout::

    campaign.shards/
        campaign.json        # the header (written atomically)
        shard-000.jsonl      # cell records, routed by hash(cell_id)
        shard-001.jsonl
        ...

Each shard is an independent append-only JSONL file with the same
truncated-tail tolerance as the single-file store, so per-shard crash
semantics are identical.  The shard is the unit a remote worker would
ship home in the multi-machine future: a worker that owns a shard can
append locally and the files merge by concatenation, no record-level
coordination needed.  Shard routing is by stable hash of the cell id,
so a cell always lands in the same shard across runs and resumes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from ..errors import CampaignError, StoreIntegrityError
from .store import (
    CELL_TYPE,
    CampaignStoreBase,
    CellRecord,
    GcStats,
    gc_jsonl_file,
    iter_jsonl_payloads,
    open_jsonl_append,
)

#: Header file name inside the store directory.
HEADER_FILE = "campaign.json"

#: Default shard fan-out for new stores.
DEFAULT_SHARDS = 8


def shard_index(cell_id: str, shards: int) -> int:
    """Stable shard routing: same cell, same shard, every run."""
    digest = hashlib.sha256(cell_id.encode()).digest()
    return int.from_bytes(digest[:4], "big") % shards


class ShardedCampaignStore(CampaignStoreBase):
    """Campaign persistence across one directory of shard files."""

    backend = "shards"

    def __init__(self, path: str, durability=None,
                 shards: int = DEFAULT_SHARDS) -> None:
        super().__init__(path.rstrip("/") or path, durability)
        if shards < 1:
            raise CampaignError(f"shards must be >= 1, got {shards}")
        self._shards = shards
        self._handles: Dict[int, TextIO] = {}
        self._unsynced: Dict[int, int] = {}

    # -- layout ----------------------------------------------------------

    def _header_path(self) -> str:
        return os.path.join(self.path, HEADER_FILE)

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.path, f"shard-{index:03d}.jsonl")

    def shard_count(self) -> int:
        """Fan-out of this store (persisted in the header)."""
        if self.exists():
            return int(self.header().get("shards", self._shards))
        return self._shards

    def sidecar_path(self, name: str) -> str:
        return os.path.join(self.path, name)

    # -- reading ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.isfile(self._header_path())

    def _load_header(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self._header_path(), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"sharded store {self.path!r} has a corrupt header"
            ) from exc

    def _shard_paths(self) -> List[str]:
        return [self._shard_path(i) for i in range(self.shard_count())]

    def _iter_payloads(self) -> Iterator[Dict[str, Any]]:
        for path in self._shard_paths():
            if not os.path.exists(path):
                continue
            for payload, _ in iter_jsonl_payloads(path):
                if payload.get("type") == CELL_TYPE:
                    yield payload

    def tail(self, cursor: Any = None) -> Tuple[List[CellRecord], Any]:
        offsets: Dict[str, int] = dict(cursor) if cursor else {}
        if not self.exists():
            return [], offsets
        records: List[CellRecord] = []
        for index in range(self.shard_count()):
            path = self._shard_path(index)
            if not os.path.exists(path):
                continue
            key = os.path.basename(path)
            offset = offsets.get(key, 0)
            for payload, end in iter_jsonl_payloads(path, start=offset):
                if payload.get("type") == CELL_TYPE:
                    records.append(CellRecord.from_dict(payload))
                offset = end
            offsets[key] = offset
        return records, offsets

    # -- writing ---------------------------------------------------------

    def _write_header(self, header: Dict[str, Any]) -> None:
        os.makedirs(self.path, exist_ok=True)
        header = dict(header, shards=self._shards)
        # Atomic: a kill during initialise leaves no half-written
        # header for a resume to trip over.
        tmp = self._header_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(header, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._header_path())
        self._header = header

    def _append_payload(self, payload: Dict[str, Any]) -> None:
        index = shard_index(payload["cell_id"], self.shard_count())
        handle = self._handles.get(index)
        if handle is None:
            handle = open_jsonl_append(self._shard_path(index))
            self._handles[index] = handle
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        count = self._unsynced.get(index, 0) + 1
        every = self.durability.fsync_every
        if every and count >= every:
            os.fsync(handle.fileno())
            count = 0
        self._unsynced[index] = count

    def flush(self) -> None:
        for index, handle in self._handles.items():
            handle.flush()
            if self._unsynced.get(index):
                os.fsync(handle.fileno())
                self._unsynced[index] = 0

    def _recover_append(self) -> None:
        # Drop every shard handle; reopening goes through
        # open_jsonl_append, which truncates torn tails per shard.
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._handles.clear()
        self._unsynced.clear()

    def _torn_write(self, payload: Dict[str, Any]) -> None:
        index = shard_index(payload["cell_id"], self.shard_count())
        with open(self._shard_path(index), "ab") as handle:
            handle.write(b'{"type": "cell", "cell_id": "to')
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        self.flush()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    # -- compaction ------------------------------------------------------

    def gc(self) -> GcStats:
        """Compact every shard file independently.

        Shard routing is by cell id, so an error and the ok that
        supersedes it always share a shard -- per-file compaction sees
        the whole history of every cell it touches.
        """
        if not self.exists():
            raise CampaignError(f"no campaign store at {self.path!r}")
        self.header()
        self.close()
        kept = dropped = debris = 0
        for path in self._shard_paths():
            if not os.path.exists(path):
                continue
            shard_kept, shard_dropped, shard_debris = gc_jsonl_file(path)
            kept += shard_kept
            dropped += shard_dropped
            debris += shard_debris
        return GcStats(kept, dropped, debris)
