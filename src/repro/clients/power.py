"""Battery discharge: power rails and the Monsoon meter (Section 5).

The J3's removable battery is wired to a Monsoon power meter producing
fine-grained current readings.  We model device power as a sum of
rails -- SoC idle, CPU (proportional to utilisation), screen, camera
and radio (base + per-Mbps) -- and the meter integrates sampled power
into a discharge figure in mAh, the unit of Figure 19c.

Calibration anchors from the paper: one hour of conferencing with
camera on drains up to ~40 % of the J3's 2600 mAh battery; screen-off
audio-only roughly halves the drain; the three clients sit within
~10 % of each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..units import to_mbps

#: Nominal battery voltage used for mAh conversion.
BATTERY_VOLTAGE = 3.85


@dataclass(frozen=True)
class PowerRailModel:
    """Per-rail power coefficients, in watts.

    Attributes:
        soc_idle_w: Always-on SoC/baseband floor.
        cpu_w_per_100pct: CPU power per 100 % of a core in use.
        screen_w: Display panel at conferencing brightness.
        camera_w: Camera sensor + ISP while capturing.
        radio_base_w: WiFi radio actively associated.
        radio_w_per_mbps: Marginal radio power per Mbps moved.
    """

    soc_idle_w: float = 0.30
    cpu_w_per_100pct: float = 0.45
    screen_w: float = 0.90
    camera_w: float = 0.55
    radio_base_w: float = 0.25
    radio_w_per_mbps: float = 0.18

    def power_w(
        self,
        cpu_pct: float,
        screen_on: bool,
        camera_on: bool,
        traffic_bps: float,
    ) -> float:
        """Instantaneous device power for one state."""
        power = self.soc_idle_w
        power += self.cpu_w_per_100pct * max(cpu_pct, 0.0) / 100.0
        if screen_on:
            power += self.screen_w
        if camera_on:
            power += self.camera_w
        power += self.radio_base_w + self.radio_w_per_mbps * to_mbps(traffic_bps)
        return power


@dataclass
class BatteryModel:
    """A battery with finite capacity (the J3's removable 2600 mAh)."""

    capacity_mah: float = 2600.0
    voltage: float = BATTERY_VOLTAGE

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage <= 0:
            raise ConfigurationError("battery parameters must be positive")

    def drain_fraction(self, discharge_mah: float) -> float:
        """Fraction of capacity consumed by a discharge."""
        return discharge_mah / self.capacity_mah


@dataclass(frozen=True)
class PowerReading:
    """One Monsoon sample."""

    time_s: float
    power_w: float

    @property
    def current_ma(self) -> float:
        """Instantaneous current draw in milliamps."""
        return self.power_w / BATTERY_VOLTAGE * 1000.0


class MonsoonMeter:
    """Integrates sampled power into discharge (mAh).

    The real meter samples at 5 kHz; the model samples at the rate the
    experiment schedules (default 10 Hz) with small measurement noise,
    and integrates with the trapezoid rule.  At conferencing power
    levels the integration error at 10 Hz is far below the meter's own
    tolerance.
    """

    def __init__(self, rng: np.random.Generator, noise_w: float = 0.02) -> None:
        if noise_w < 0:
            raise ConfigurationError("noise_w must be >= 0")
        self._rng = rng
        self._noise_w = noise_w
        self.readings: List[PowerReading] = []

    def record(self, time_s: float, power_w: float) -> PowerReading:
        """Take one sample (noise added as measurement error)."""
        measured = max(0.0, power_w + float(self._rng.normal(0.0, self._noise_w)))
        reading = PowerReading(time_s=time_s, power_w=measured)
        self.readings.append(reading)
        return reading

    def discharge_mah(self) -> float:
        """Total integrated discharge over the recorded window."""
        if len(self.readings) < 2:
            return 0.0
        times = np.array([r.time_s for r in self.readings])
        currents = np.array([r.current_ma for r in self.readings])
        hours = (times - times[0]) / 3600.0
        return float(np.trapezoid(currents, hours))

    def mean_power_w(self) -> float:
        """Average sampled power."""
        if not self.readings:
            return 0.0
        return float(np.mean([r.power_w for r in self.readings]))
