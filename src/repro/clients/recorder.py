"""Desktop recorder: the platform-agnostic QoE recording of Section 3.1.

"We run a videoconferencing client in full screen mode, and use
simplescreenrecorder to record the desktop screen with audio, within a
cloud VM itself."  The recorder samples the client's rendered output at
its own frame clock, which is what makes the approach platform-agnostic
-- and also what introduces the recording artefacts the paper's
post-processing must undo (UI widgets over the padding, resampling,
start-time offset).

We model those artefacts explicitly:

* at every recorder tick the most recently decoded frame is grabbed
  (a frozen stream yields repeated frames, exactly as on screen),
* client UI widgets are drawn into the padding margin,
* the screen-scaling round trip (render at desktop resolution, record,
  scale back) is applied as a down/up resample.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import SessionError
from ..media.frames import FrameSpec
from ..media.padding import pad_size, resize_frames
from ..media.video_codec import VideoDecoder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import BaseClient

#: Luma of UI widget rectangles drawn over the padding.
WIDGET_VALUE = 52

#: Default screen-scaling round-trip factor (desktop render + capture).
DEFAULT_RESAMPLE = 0.85


class DesktopRecorder:
    """Samples a decoded video flow at a fixed recording frame rate.

    Ticks are scheduled at absolute multiples of the frame period from
    the recording start, so timestamps stay exact over arbitrarily
    long sessions (repeated relative ``schedule(1/fps)`` calls would
    accumulate float rounding error).  The screen-scaling round trip
    is applied lazily in batches: ticks only grab and annotate frames,
    and the resample runs as a vectorized pass over the pending stack
    the first time :attr:`frames` is read.

    Attributes:
        frames: Recorded (uint8) frames, in tick order.
        timestamps: Simulation times of each recorded frame.
        stale_flags: Per-tick freeze markers: ``True`` when the grab
            repeated the previous screen content (the decoder produced
            no new frame since the last tick) -- the raw data for
            per-phase freeze summaries under dynamic conditions.
    """

    def __init__(
        self,
        client: "BaseClient",
        spec: FrameSpec,
        pad_fraction: float,
        record_fps: Optional[int] = None,
        resample_factor: float = DEFAULT_RESAMPLE,
        draw_widgets: bool = True,
    ) -> None:
        if not 0.0 < resample_factor <= 1.0:
            raise SessionError("resample_factor must be in (0, 1]")
        self._client = client
        self.spec = spec
        self.pad_fraction = pad_fraction
        self.record_fps = record_fps if record_fps is not None else spec.fps
        self.resample_factor = resample_factor
        self.draw_widgets = draw_widgets
        self.timestamps: List[float] = []
        self.stale_flags: List[bool] = []
        self._finalized: List[np.ndarray] = []
        self._pending: List[np.ndarray] = []
        self._decoder: Optional[VideoDecoder] = None
        self._running = False
        self._stop_at = 0.0
        self._record_start = 0.0
        self._ticker = None
        self._frames_seen = 0

    @property
    def frames(self) -> List[np.ndarray]:
        """Recorded frames, with the capture resample applied."""
        self._finalize_pending()
        return self._finalized

    def frames_head(self, count: int) -> List[np.ndarray]:
        """The first ``count`` recorded frames.

        Applies the capture resample only to that prefix; scoring
        pipelines with a frame cap use this to skip resampling frames
        that can never be scored.  Later :attr:`frames` reads finalize
        the remainder, so the full recording stays available.
        """
        self._finalize_pending(count)
        return self._finalized[:count]

    def start(
        self, decoder: VideoDecoder, duration_s: float, start_delay_s: float = 0.0
    ) -> None:
        """Record the output of ``decoder`` for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise SessionError("recording duration must be positive")
        self._decoder = decoder
        simulator = self._client.host.network.simulator
        self._running = True
        simulator.schedule(start_delay_s, self._begin, duration_s)

    def _begin(self, duration_s: float) -> None:
        simulator = self._client.host.network.simulator
        self._record_start = simulator.now
        self._stop_at = simulator.now + duration_s
        self._ticker = simulator.schedule_periodic(
            None, self._tick, rate=self.record_fps
        )

    def stop(self) -> None:
        """Stop recording at the next tick."""
        self._running = False

    def _tick(self) -> "bool | None":
        simulator = self._client.host.network.simulator
        if not self._running or simulator.now >= self._stop_at:
            return False
        decoder = self._decoder
        if decoder is not None and decoder.defer:
            # Deferred decode: grabbing last_frame here would force a
            # materialise per tick.  Park the decoder's event count as
            # a token instead; _finalize_pending resolves it to the
            # exact frame this tick would have grabbed.  The stale
            # flag reads the (eagerly exact) metadata state machine.
            decoded = decoder.frames_decoded
            self.stale_flags.append(
                not decoder.has_output or decoded == self._frames_seen
            )
            self._frames_seen = decoded
            self._pending.append(decoder.events_seen)
            self.timestamps.append(simulator.now)
            return None
        frame = decoder.last_frame if decoder is not None else None
        decoded = decoder.frames_decoded if decoder is not None else 0
        self.stale_flags.append(frame is None or decoded == self._frames_seen)
        self._frames_seen = decoded
        if frame is None:
            # Nothing rendered yet: the desktop shows the meeting UI on
            # a dark background.
            frame = np.zeros(self.spec.shape, dtype=np.uint8)
        rendered = frame.copy()
        if self.draw_widgets:
            rendered = self._overlay_widgets(rendered)
        self._pending.append(rendered)
        self.timestamps.append(simulator.now)
        return None

    # ----------------------------------------------------------------- #
    # Screen rendering + capture model.
    # ----------------------------------------------------------------- #

    def _finalize_pending(self, count: Optional[int] = None) -> None:
        """Apply the screen-scaling round trip to grabbed frames.

        Runs of equally-shaped pending frames are resampled as one
        ``(T, H, W)`` stack -- bit-compatible with resizing each frame
        on its own, at a fraction of the per-frame overhead.  With
        ``count``, only enough frames to make the first ``count``
        available are processed.
        """
        if not self._pending:
            return
        if count is None:
            needed = len(self._pending)
        else:
            needed = min(max(0, count - len(self._finalized)), len(self._pending))
            if needed == 0:
                return
        pending = self._pending[:needed]
        del self._pending[:needed]
        if self._decoder is not None and self._decoder.defer:
            # Deferred decode parked tokens instead of frames; one
            # materialise replays the whole session's decodes batched,
            # then each token resolves to the exact frame its tick
            # would have grabbed (and annotates it identically).
            pending = [self._resolve_token(token) for token in pending]
        if self.resample_factor >= 1.0:
            self._finalized.extend(pending)
            return
        small_shape = (
            max(16, int(self.spec.height * self.resample_factor)),
            max(16, int(self.spec.width * self.resample_factor)),
        )
        start = 0
        for end in range(1, len(pending) + 1):
            if (
                end < len(pending)
                and pending[end].shape == pending[start].shape
            ):
                continue
            stack = np.stack(pending[start:end])
            resampled = resize_frames(
                resize_frames(stack, small_shape), self.spec.shape
            )
            self._finalized.extend(resampled)
            start = end

    def _resolve_token(self, token: int) -> np.ndarray:
        """Turn a deferred-grab token into the tick's rendered frame."""
        frame = self._decoder.frame_at_token(token)
        if frame is None:
            frame = np.zeros(self.spec.shape, dtype=np.uint8)
        rendered = frame.copy()
        if self.draw_widgets:
            rendered = self._overlay_widgets(rendered)
        return rendered

    def _overlay_widgets(self, frame: np.ndarray) -> np.ndarray:
        """Draw client UI chrome confined to the padding margin.

        A control toolbar along the bottom padding and a self-view
        thumbnail in the top-right padding corner -- the widgets that
        "partially block" the screen in Section 4.3 and motivate the
        padding workflow of Figure 13.
        """
        height, width = frame.shape
        pad_h = pad_size(height, self.pad_fraction / (1 + 2 * self.pad_fraction))
        pad_w = pad_size(width, self.pad_fraction / (1 + 2 * self.pad_fraction))
        if pad_h >= 4:
            toolbar_top = height - int(pad_h * 0.8)
            toolbar_bottom = height - int(pad_h * 0.2)
            frame[toolbar_top:toolbar_bottom, width // 4 : 3 * width // 4] = (
                WIDGET_VALUE
            )
        if pad_h >= 4 and pad_w >= 4:
            frame[: int(pad_h * 0.9), width - int(pad_w * 0.9) :] = WIDGET_VALUE
        return frame
