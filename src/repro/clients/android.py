"""Android device clients: the Samsung S10 and J3 of Table 2.

An :class:`AndroidClient` is a :class:`~repro.clients.client.BaseClient`
whose host sits behind the Raspberry-Pi WiFi at the residential
vantage point, instrumented the way Section 5 instruments the phones:

* CPU usage sampled every three seconds through the adb monitor
  (:class:`~repro.clients.cpu.CpuModel`),
* download data rate measured from its packet capture,
* battery discharge integrated by the Monsoon meter (J3 only in the
  paper; the model allows either),
* UI state (full screen / gallery / screen-off, camera on/off) that
  both drives subscriptions and feeds the resource models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..net.node import Host
from ..platforms.base import ViewContext
from .client import BaseClient
from .cpu import CpuModel, CpuSample
from .power import BatteryModel, MonsoonMeter, PowerRailModel

#: CPU sampling period of the adb-based monitor.
CPU_SAMPLE_PERIOD_S = 3.0

#: Monsoon sampling period used by the model.
POWER_SAMPLE_PERIOD_S = 0.1


@dataclass(frozen=True)
class AndroidDeviceSpec:
    """Table 2: Android device characteristics.

    Attributes:
        name: Device label.
        android_version: OS major version.
        cpu_cores: Number of cores ("Quad-core"/"Octa-core").
        memory_gb: RAM in GB.
        screen_resolution: (width, height) pixels.
        device_class: ``mobile-highend`` or ``mobile-lowend``.
        battery_mah: Battery capacity (J3's removable pack is 2600).
    """

    name: str
    android_version: int
    cpu_cores: int
    memory_gb: int
    screen_resolution: tuple[int, int]
    device_class: str
    battery_mah: float

    def __post_init__(self) -> None:
        if self.device_class not in ("mobile-highend", "mobile-lowend"):
            raise ConfigurationError(f"bad device class: {self.device_class!r}")


GALAXY_J3 = AndroidDeviceSpec(
    name="Galaxy J3",
    android_version=8,
    cpu_cores=4,
    memory_gb=2,
    screen_resolution=(720, 1280),
    device_class="mobile-lowend",
    battery_mah=2600.0,
)

GALAXY_S10 = AndroidDeviceSpec(
    name="Galaxy S10",
    android_version=11,
    cpu_cores=8,
    memory_gb=8,
    screen_resolution=(1440, 3040),
    device_class="mobile-highend",
    battery_mah=3400.0,
)

#: Table 2 registry by short name.
ANDROID_DEVICES = {"J3": GALAXY_J3, "S10": GALAXY_S10}


class AndroidClient(BaseClient):
    """A phone participant with resource instrumentation."""

    def __init__(
        self,
        name: str,
        host: Host,
        device: AndroidDeviceSpec,
        platform_name: str,
        rng: np.random.Generator,
        view: Optional[ViewContext] = None,
        camera_on: bool = False,
        screen_on: bool = True,
    ) -> None:
        view = view if view is not None else ViewContext(
            view_mode="fullscreen", device=device.device_class
        )
        super().__init__(name, host, view)
        self.device = device
        self.platform_name = platform_name
        self.camera_on = camera_on
        self.screen_on = screen_on
        self.rng = rng
        self.cpu_model = CpuModel(platform=platform_name, device=device.device_class)
        self.power_rails = PowerRailModel()
        self.battery = BatteryModel(capacity_mah=device.battery_mah)
        self.meter = MonsoonMeter(rng)
        self.cpu_samples: List[CpuSample] = []
        self._monitor_running = False
        self._monitor_stop_at = 0.0
        self._video_bytes_snapshot = 0
        self._total_bytes_snapshot = 0
        self._last_video_bps = 0.0
        self._last_total_bps = 0.0
        self.thumbnail_count = 0

    # ----------------------------------------------------------------- #
    # Scenario state.
    # ----------------------------------------------------------------- #

    @property
    def effective_view_mode(self) -> str:
        """UI mode fed to the resource models."""
        if not self.screen_on:
            return "audio-only"
        return self.view.view_mode

    def scenario_label(self, motion: str) -> str:
        """The paper's scenario naming (LM, HM, LM-View, ...)."""
        prefix = "LM" if motion == "low" else "HM"
        parts = [prefix]
        if self.camera_on:
            parts.append("Video")
        if self.view.view_mode == "gallery":
            parts.append("View")
        if not self.screen_on:
            parts.append("Off")
        return "-".join(parts)

    # ----------------------------------------------------------------- #
    # Resource monitoring.
    # ----------------------------------------------------------------- #

    def start_monitoring(self, duration_s: float, start_delay_s: float = 0.0) -> None:
        """Begin CPU and power sampling for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError("monitoring duration must be positive")
        simulator = self.host.network.simulator
        self._monitor_running = True
        simulator.schedule(start_delay_s, self._begin_monitor, duration_s)

    def _begin_monitor(self, duration_s: float) -> None:
        simulator = self.host.network.simulator
        self._monitor_stop_at = simulator.now + duration_s
        self._cpu_tick()
        self._power_tick()

    def _take_rate_window(self) -> None:
        """Refresh smoothed rates from the receiver engine's counters.

        Reading the engine's per-flow byte totals and differencing
        against the last snapshot is O(flows) per sample, unlike
        re-scanning the packet capture.
        """
        video_bytes = 0
        total_bytes = 0
        for flow_id, stats in self.receiver.flow_stats.items():
            total_bytes += stats.bytes
            if "|v-" in flow_id:
                video_bytes += stats.bytes
        self._last_video_bps = (
            (video_bytes - self._video_bytes_snapshot) * 8.0 / CPU_SAMPLE_PERIOD_S
        )
        self._last_total_bps = (
            (total_bytes - self._total_bytes_snapshot) * 8.0 / CPU_SAMPLE_PERIOD_S
        )
        self._video_bytes_snapshot = video_bytes
        self._total_bytes_snapshot = total_bytes

    def _cpu_tick(self) -> None:
        simulator = self.host.network.simulator
        if not self._monitor_running or simulator.now >= self._monitor_stop_at:
            return
        self._take_rate_window()
        sample = self.cpu_model.sample(
            rng=self.rng,
            time_s=simulator.now,
            incoming_video_bps=self._last_video_bps,
            view_mode=self.effective_view_mode,
            camera_on=self.camera_on,
            screen_on=self.screen_on,
            thumbnail_count=self.thumbnail_count,
        )
        self.cpu_samples.append(sample)
        simulator.schedule(CPU_SAMPLE_PERIOD_S, self._cpu_tick)

    def _power_tick(self) -> None:
        simulator = self.host.network.simulator
        if not self._monitor_running or simulator.now >= self._monitor_stop_at:
            return
        cpu_pct = self.cpu_samples[-1].usage_pct if self.cpu_samples else 50.0
        power = self.power_rails.power_w(
            cpu_pct=cpu_pct,
            screen_on=self.screen_on,
            camera_on=self.camera_on,
            traffic_bps=self._last_total_bps,
        )
        self.meter.record(simulator.now, power)
        simulator.schedule(POWER_SAMPLE_PERIOD_S, self._power_tick)

    def stop_monitoring(self) -> None:
        """Stop the samplers at their next tick."""
        self._monitor_running = False

    # ----------------------------------------------------------------- #
    # Summaries.
    # ----------------------------------------------------------------- #

    def median_cpu_pct(self) -> float:
        """Median CPU usage over the monitored window."""
        if not self.cpu_samples:
            raise ConfigurationError(f"{self.name}: no CPU samples collected")
        return float(np.median([s.usage_pct for s in self.cpu_samples]))

    def discharge_mah(self) -> float:
        """Monsoon-integrated battery discharge."""
        return self.meter.discharge_mah()

    def battery_drain_fraction(self) -> float:
        """Discharge as a fraction of battery capacity."""
        return self.battery.drain_fraction(self.discharge_mah())
