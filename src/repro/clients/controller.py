"""Client controller: scripted UI workflow automation.

"Client controller replays a platform-specific script for operating /
navigating a client, including launch, login, meeting-join/-leave and
layout change" (Section 3.2).  The real tool drives xdotool/adb; here
the controller is a timed state machine on the simulator that fires the
same workflow steps and records a timeline, so experiments are
structured exactly like the paper's automated runs (staggered joins,
settle time before measurement, scripted layout changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING

from ..errors import SessionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import BaseClient


@dataclass(frozen=True)
class WorkflowStep:
    """One step of a client workflow.

    Attributes:
        name: Step label (``launch``, ``login``, ``join``...).
        duration_s: Time the step takes to complete.
        action: Optional callable invoked when the step completes.
    """

    name: str
    duration_s: float
    action: Optional[Callable[[], None]] = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise SessionError(f"step {self.name!r} has negative duration")


def standard_workflow(join_action: Optional[Callable[[], None]] = None) -> List[WorkflowStep]:
    """The canonical launch -> login -> join -> configure sequence.

    Durations are representative of the paper's automation (a few
    seconds per UI interaction); experiments usually only care that
    joins are staggered and media starts after everyone has settled.
    """
    return [
        WorkflowStep("launch", 2.0),
        WorkflowStep("login", 3.0),
        WorkflowStep("join", 2.0, join_action),
        WorkflowStep("configure-layout", 1.0),
    ]


@dataclass
class CompletedStep:
    """Timeline record of one executed step."""

    name: str
    started_at: float
    finished_at: float


class ClientController:
    """Replays a workflow script on the simulator for one client."""

    def __init__(self, client: "BaseClient") -> None:
        self._client = client
        self.timeline: List[CompletedStep] = []
        self._busy = False

    @property
    def busy(self) -> bool:
        """Whether a workflow is currently executing."""
        return self._busy

    def run_workflow(
        self,
        steps: List[WorkflowStep],
        start_delay_s: float = 0.0,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Execute steps sequentially, then call ``on_complete``.

        Raises:
            SessionError: If a workflow is already running.
        """
        if self._busy:
            raise SessionError(f"{self._client.name}: controller is busy")
        if not steps:
            raise SessionError("workflow needs at least one step")
        self._busy = True
        simulator = self._client.host.network.simulator
        simulator.schedule(
            start_delay_s, self._run_step, list(steps), 0, on_complete
        )

    def _run_step(
        self,
        steps: List[WorkflowStep],
        index: int,
        on_complete: Optional[Callable[[], None]],
    ) -> None:
        simulator = self._client.host.network.simulator
        step = steps[index]
        started = simulator.now
        simulator.schedule(
            step.duration_s,
            self._finish_step,
            steps,
            index,
            started,
            on_complete,
        )

    def _finish_step(
        self,
        steps: List[WorkflowStep],
        index: int,
        started: float,
        on_complete: Optional[Callable[[], None]],
    ) -> None:
        simulator = self._client.host.network.simulator
        step = steps[index]
        self.timeline.append(CompletedStep(step.name, started, simulator.now))
        if step.action is not None:
            step.action()
        if index + 1 < len(steps):
            self._run_step(steps, index + 1, on_complete)
            return
        self._busy = False
        if on_complete is not None:
            on_complete()
