"""Receiver engine: reassembly, decoding, loss accounting, feedback.

Every client runs one of these.  Incoming media packets are tracked
per flow (for loss statistics and data-rate accounting), video
fragments are reassembled into encoded frames, and -- when the session
asks for it -- frames are decoded and handed to the desktop recorder.
A periodic feedback loop reports the smoothed loss fraction of each
video flow back to its sender through the platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, TYPE_CHECKING

from ..errors import SessionError
from ..media.audio_codec import AudioCodec, AudioCodecConfig, AudioDecoder
from ..media.frames import FrameSpec
from ..media.transport import ChunkFragment, Reassembler
from ..media.video_codec import VideoDecoder
from ..net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import BaseClient

#: Fraction of a frame's fragments FEC/NACK recovery can absorb.
DEFAULT_FEC_TOLERANCE = 0.2

#: Process-wide default for deferred receiver decode (burst event
#: core): park delivered frames and replay the batched decode at
#: finalize.  Bit-identical either way; it only engages for watched
#: flows with no per-frame sink, where decode outputs are unobservable
#: until the recording is read.
DEFER_DECODE_DEFAULT = True


@dataclass
class FlowStats:
    """Per-flow receive-side accounting.

    Sequence numbers are stamped by the sender per flow; loss over a
    feedback window is ``1 - received / expected`` where expected is
    the sequence advance in the window.
    """

    packets: int = 0
    bytes: int = 0
    max_seq: int = -1
    window_packets: int = 0
    window_start_seq: int = -1

    def on_packet(self, seq: int, payload_bytes: int) -> None:
        """Account one arriving packet."""
        self.packets += 1
        self.bytes += payload_bytes
        self.window_packets += 1
        if self.window_start_seq < 0:
            self.window_start_seq = seq
        self.max_seq = max(self.max_seq, seq)

    def take_window_loss(self) -> float:
        """Loss fraction since the last call; resets the window."""
        if self.window_start_seq < 0:
            return 0.0
        expected = self.max_seq - self.window_start_seq + 1
        received = self.window_packets
        self.window_packets = 0
        self.window_start_seq = self.max_seq + 1
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - received / expected)


class ReceiverEngine:
    """Dispatches media packets into reassembly/decoding pipelines."""

    def __init__(self, client: "BaseClient") -> None:
        self._client = client
        self.flow_stats: Dict[str, FlowStats] = {}
        self._reassemblers: Dict[str, Reassembler] = {}
        self._video_decoders: Dict[str, VideoDecoder] = {}
        self._frame_sinks: Dict[str, Callable] = {}
        self._audio_decoders: Dict[str, AudioDecoder] = {}
        self._audio_frame_counts: Dict[str, int] = {}
        self._last_pli: Dict[str, float] = {}
        self._feedback_running = False

    def reset(self) -> None:
        """Drop all per-session state (client left the session)."""
        self.flow_stats.clear()
        self._reassemblers.clear()
        self._video_decoders.clear()
        self._frame_sinks.clear()
        self._audio_decoders.clear()
        self._audio_frame_counts.clear()
        self._last_pli.clear()
        self._feedback_running = False

    # ----------------------------------------------------------------- #
    # Pipeline wiring.
    # ----------------------------------------------------------------- #

    def watch_video(
        self,
        flow_id: str,
        spec: FrameSpec,
        on_frame: Optional[Callable] = None,
        codec_batch: Optional[bool] = None,
        pixels: bool = True,
        defer: Optional[bool] = None,
    ) -> VideoDecoder:
        """Decode a video flow; ``on_frame(frame, time)`` per render.

        ``pixels=False`` attaches a stats-only decoder (freeze/decoded
        counts, no reconstructions) for flows nobody renders.

        ``defer`` controls deferred decode (default
        :data:`DEFER_DECODE_DEFAULT`): delivered frames are parked and
        replayed through the batched decoder when outputs are first
        read.  It only engages when nothing observes per-frame outputs
        during the session -- a pixel decoder with no ``on_frame``
        sink; with a sink (or stats-only) the eager path runs.
        """
        effective_defer = (
            (DEFER_DECODE_DEFAULT if defer is None else bool(defer))
            and pixels
            and on_frame is None
        )
        decoder = VideoDecoder(
            spec, batch=codec_batch, pixels=pixels, defer=effective_defer
        )
        self._video_decoders[flow_id] = decoder
        if on_frame is not None:
            self._frame_sinks[flow_id] = on_frame
        return decoder

    def listen_audio(
        self,
        flow_id: str,
        config: AudioCodecConfig,
        codec_batch: Optional[bool] = None,
    ) -> AudioDecoder:
        """Decode an audio flow for later waveform assembly.

        With batching on, received frames are parked and inverse
        transformed in one batched IDCT when the waveform is first
        assembled (post-session MOS scoring) -- bit-identical to eager
        decoding, minus a per-frame transform on the packet path.
        """
        decoder = AudioDecoder(AudioCodec(config, batch=codec_batch),
                               batch=codec_batch)
        self._audio_decoders[flow_id] = decoder
        return decoder

    def video_decoder(self, flow_id: str) -> VideoDecoder:
        """The decoder attached to a watched flow."""
        try:
            return self._video_decoders[flow_id]
        except KeyError:
            raise SessionError(f"flow {flow_id!r} is not being watched") from None

    def audio_decoder(self, flow_id: str) -> AudioDecoder:
        """The decoder attached to a listened flow."""
        try:
            return self._audio_decoders[flow_id]
        except KeyError:
            raise SessionError(f"flow {flow_id!r} is not being listened") from None

    def audio_frames_expected(self, flow_id: str) -> int:
        """Highest audio frame index seen + 1 (for waveform assembly)."""
        return self._audio_frame_counts.get(flow_id, 0)

    def snapshot(self) -> tuple[dict, dict, dict]:
        """Copies of the decoder maps, for post-session artifacts.

        The engine is reset between sessions; artifacts keep these
        references so analyses can read decoders afterwards.
        """
        return (
            dict(self._video_decoders),
            dict(self._audio_decoders),
            dict(self._audio_frame_counts),
        )

    # ----------------------------------------------------------------- #
    # Packet path.
    # ----------------------------------------------------------------- #

    def on_media(self, packet: Packet) -> None:
        """Entry point from the client's port handler."""
        stats = self.flow_stats.setdefault(packet.flow_id, FlowStats())
        seq = packet.seq
        if seq is None:
            # Legacy senders stamped the sequence into metadata; media
            # packets now carry it in a dedicated slot.
            seq = int(packet.metadata.get("seq", stats.max_seq + 1))
        stats.on_packet(seq, packet.payload_bytes)
        if packet.kind is PacketKind.MEDIA_AUDIO:
            self._on_audio(packet)
            return
        self._on_video(packet)

    def _on_video(self, packet: Packet) -> None:
        fragment = packet.payload
        if not isinstance(fragment, ChunkFragment):
            return  # size-modelled traffic carries no decodable payload
        flow_id = packet.flow_id
        if flow_id not in self._video_decoders:
            return  # flow received but not watched; stats only
        reassembler = self._reassemblers.get(flow_id)
        if reassembler is None:
            decoder = self._video_decoders[flow_id]
            sink = self._frame_sinks.get(flow_id)

            def on_frame(encoded, _flow=flow_id, _decoder=decoder, _sink=sink):
                frame = _decoder.decode(encoded)
                if _sink is not None and frame is not None:
                    _sink(frame, self._client.host.network.simulator.now)

            def on_lost(index, _flow=flow_id, _decoder=decoder):
                _decoder.mark_lost(index)
                self._request_keyframe(_flow)

            reassembler = Reassembler(
                on_frame=on_frame,
                on_lost=on_lost,
                fec_tolerance=DEFAULT_FEC_TOLERANCE,
            )
            self._reassemblers[flow_id] = reassembler
        reassembler.push(fragment)

    def _on_audio(self, packet: Packet) -> None:
        frame = packet.payload
        flow_id = packet.flow_id
        if frame is None:
            return
        count = self._audio_frame_counts.get(flow_id, 0)
        self._audio_frame_counts[flow_id] = max(count, frame.index + 1)
        decoder = self._audio_decoders.get(flow_id)
        if decoder is not None:
            decoder.push(frame)

    # ----------------------------------------------------------------- #
    # PLI (keyframe request) path.
    # ----------------------------------------------------------------- #

    #: Minimum spacing between keyframe requests per flow.
    PLI_INTERVAL_S = 0.3

    def _request_keyframe(self, flow_id: str) -> None:
        """Ask the sender for a keyframe after a detected frame loss."""
        if self._client.wiring is None:
            return
        now = self._client.host.network.simulator.now
        last = self._last_pli.get(flow_id)
        if last is not None and now - last < self.PLI_INTERVAL_S:
            return
        self._last_pli[flow_id] = now
        packet = Packet(
            src=self._client.media_address,
            dst=self._client.service_address,
            payload_bytes=32,
            kind=PacketKind.FEEDBACK,
            flow_id=flow_id,
            metadata={"pli": True, "reporter": self._client.name},
        )
        self._client.host.send(packet)

    # ----------------------------------------------------------------- #
    # Feedback loop.
    # ----------------------------------------------------------------- #

    def start_feedback_loop(self, interval_s: float = 1.0) -> None:
        """Begin periodic loss reporting for all video flows."""
        if self._client.wiring is None:
            raise SessionError("join a session before starting feedback")
        if self._feedback_running:
            return
        self._feedback_running = True
        simulator = self._client.host.network.simulator
        simulator.schedule(interval_s, self._feedback_tick, interval_s)

    def _feedback_tick(self, interval_s: float) -> None:
        if not self._feedback_running or self._client.wiring is None:
            return
        for flow_id, stats in self.flow_stats.items():
            if "|v-" not in flow_id:
                continue
            loss = stats.take_window_loss()
            packet = Packet(
                src=self._client.media_address,
                dst=self._client.service_address,
                payload_bytes=64,
                kind=PacketKind.FEEDBACK,
                flow_id=flow_id,
                metadata={"loss": loss, "reporter": self._client.name},
            )
            self._client.host.send(packet)
        simulator = self._client.host.network.simulator
        simulator.schedule(interval_s, self._feedback_tick, interval_s)

    def stop_feedback_loop(self) -> None:
        """Stop the periodic loss reports."""
        self._feedback_running = False
