"""The mobile testbed's access network (Section 3.2).

"The phones connect to the Internet over a fast WiFi -- with a
symmetric upload and download bandwidth of 50 Mbps.  Each device
connects to its own WiFi realized by the Raspberry Pi, so that traffic
can be easily isolated and captured for each device."

The Raspberry-Pi AP is modelled as the phone's access link: 50 Mbps
symmetric, with a little extra queueing headroom compared to the cloud
VMs' multi-Gbps attachments.
"""

from __future__ import annotations

from ..net.link import AccessLink
from ..units import mbps

#: The testbed WiFi's symmetric bandwidth.
RESIDENTIAL_WIFI_BPS = mbps(50)


def residential_wifi_link() -> AccessLink:
    """A fresh 50/50 Mbps access link for one phone."""
    return AccessLink(
        uplink_bps=RESIDENTIAL_WIFI_BPS,
        downlink_bps=RESIDENTIAL_WIFI_BPS,
    )
