"""Emulated videoconferencing clients.

The deployment targets of Section 3.2:

* :class:`repro.clients.client.CloudVMClient` — the fully-emulated
  cloud VM of Figure 1: loopback media devices, media feeder, client
  controller (scripted UI workflow), client monitor (traffic capture +
  active probing) and desktop recorder,
* :class:`repro.clients.android.AndroidClient` — Samsung S10/J3 models
  behind a Raspberry-Pi WiFi network, with CPU, data-rate and battery
  instrumentation (Section 5),
* :mod:`repro.clients.streamer` / :mod:`repro.clients.receiver` — the
  media engines shared by both.
"""

from .android import (
    ANDROID_DEVICES,
    AndroidClient,
    AndroidDeviceSpec,
    GALAXY_J3,
    GALAXY_S10,
)
from .client import BaseClient, CloudVMClient, MEDIA_PORT
from .controller import ClientController, WorkflowStep, standard_workflow
from .cpu import CpuModel, CpuSample
from .power import BatteryModel, MonsoonMeter, PowerRailModel
from .receiver import FlowStats, ReceiverEngine
from .recorder import DesktopRecorder
from .streamer import AudioStreamer, ModelVideoStreamer, VideoStreamer
from .wifi import residential_wifi_link

__all__ = [
    "ANDROID_DEVICES",
    "AndroidClient",
    "AndroidDeviceSpec",
    "AudioStreamer",
    "BaseClient",
    "BatteryModel",
    "ClientController",
    "CloudVMClient",
    "CpuModel",
    "CpuSample",
    "DesktopRecorder",
    "FlowStats",
    "GALAXY_J3",
    "GALAXY_S10",
    "MEDIA_PORT",
    "ModelVideoStreamer",
    "MonsoonMeter",
    "PowerRailModel",
    "ReceiverEngine",
    "VideoStreamer",
    "WorkflowStep",
    "residential_wifi_link",
    "standard_workflow",
]
