"""Mobile CPU usage model (Section 5, Figure 19a, Table 4).

CPU usage of a videoconferencing client decomposes into mechanistic
terms the paper's observations let us calibrate:

* a per-platform pipeline overhead (signalling, compositing, codecs
  warm), much higher for Webex when the screen is off ("Webex still
  requires about 125%"),
* decode cost proportional to the incoming stream's bitrate (a HIGH
  stream around 1 Mbps costs roughly 60 % of a core; LOW tiles cost
  proportionally less),
* render cost for the active layout (full screen vs gallery tiles),
* camera capture cost when the device streams its own video (about
  +100 % on the S10 with its better sensor, +50 % on the J3),
* per-thumbnail costs on platforms that show previews (Meet).

The low-end J3 runs the same workload on slower cores: demand scales
up by ``slow_core_factor`` and saturates at ``throttle_cap_pct`` --
which is why all three clients converge to ~200 % on the J3 while Meet
"only grabs more resources if available" on the S10.

Usage is sampled every three seconds with Gaussian noise, exactly like
the paper's adb-based monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..units import to_mbps

#: Decode cost, percent of a core per Mbps of incoming video.
DECODE_PCT_PER_MBPS = 60.0

#: Render cost of the layouts, percent.
RENDER_FULLSCREEN_PCT = 30.0
RENDER_GALLERY_PCT = 10.0

#: Camera capture cost by device class, percent.
CAMERA_PCT = {"mobile-highend": 100.0, "mobile-lowend": 50.0}

#: Per-platform pipeline overheads, percent.
PLATFORM_OVERHEAD_PCT = {"zoom": 70.0, "webex": 70.0, "meet": 70.0}

#: Overhead that remains when the screen is off (audio-only); the
#: asymmetry is the paper's Webex finding.
SCREEN_OFF_OVERHEAD_PCT = {"zoom": 30.0, "webex": 120.0, "meet": 35.0}

#: Extra cost per rendered thumbnail/preview tile, percent.
THUMBNAIL_PCT = {"zoom": 10.0, "webex": 8.0, "meet": 12.0}

#: Gallery-mode penalty for clients whose gallery is inefficient:
#: Webex's gallery "even caus[es] a slight CPU increase on S10", and
#: Meet's approximated gallery changes nothing (no real support).
GALLERY_PENALTY_PCT = {"zoom": 0.0, "webex": 60.0, "meet": 20.0}


@dataclass(frozen=True)
class CpuSample:
    """One 3-second CPU sample."""

    time_s: float
    usage_pct: float


@dataclass
class CpuModel:
    """Analytic CPU-usage model for one device running one client.

    Attributes:
        platform: ``zoom``/``webex``/``meet``.
        device: ``mobile-highend`` (S10) or ``mobile-lowend`` (J3).
        slow_core_factor: Demand multiplier on the low-end device.
        throttle_cap_pct: Saturation ceiling on the low-end device.
        noise_pct: Std-dev of per-sample Gaussian noise.
    """

    platform: str
    device: str
    slow_core_factor: float = 1.35
    throttle_cap_pct: float = 215.0
    noise_pct: float = 9.0

    def __post_init__(self) -> None:
        if self.platform not in PLATFORM_OVERHEAD_PCT:
            raise ConfigurationError(f"unknown platform: {self.platform!r}")
        if self.device not in ("mobile-highend", "mobile-lowend"):
            raise ConfigurationError(f"unknown device: {self.device!r}")

    def demand_pct(
        self,
        incoming_video_bps: float,
        view_mode: str,
        camera_on: bool,
        screen_on: bool,
        thumbnail_count: int = 0,
    ) -> float:
        """Deterministic CPU demand for the given client state."""
        if not screen_on:
            demand = SCREEN_OFF_OVERHEAD_PCT[self.platform]
            if camera_on:
                demand += CAMERA_PCT[self.device]
            return self._device_scale(demand)
        demand = PLATFORM_OVERHEAD_PCT[self.platform]
        demand += DECODE_PCT_PER_MBPS * to_mbps(incoming_video_bps)
        if view_mode == "gallery":
            demand += RENDER_GALLERY_PCT + GALLERY_PENALTY_PCT[self.platform]
        else:
            demand += RENDER_FULLSCREEN_PCT
        demand += THUMBNAIL_PCT[self.platform] * max(0, thumbnail_count)
        if camera_on:
            demand += CAMERA_PCT[self.device]
        return self._device_scale(demand)

    def _device_scale(self, demand: float) -> float:
        if self.device == "mobile-lowend":
            return min(demand * self.slow_core_factor, self.throttle_cap_pct)
        return demand

    def sample(
        self,
        rng: np.random.Generator,
        time_s: float,
        incoming_video_bps: float,
        view_mode: str,
        camera_on: bool,
        screen_on: bool,
        thumbnail_count: int = 0,
    ) -> CpuSample:
        """One noisy sample, as the adb monitor would read it."""
        demand = self.demand_pct(
            incoming_video_bps, view_mode, camera_on, screen_on, thumbnail_count
        )
        noisy = max(0.0, demand + float(rng.normal(0.0, self.noise_pct)))
        return CpuSample(time_s=time_s, usage_pct=noisy)
