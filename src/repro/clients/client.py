"""Client base: the machine-side glue of an emulated participant.

A client owns a host, binds the media port, dispatches arriving packets
to the right engine (receiver, prober, sender feedback), and manages
its capture and devices.  :class:`CloudVMClient` adds the fully
emulated peripherals of Figure 1 (virtual camera/microphone, desktop
recorder, workflow controller).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, SessionError
from ..media.audio import AudioSource
from ..media.frames import FrameSource
from ..media.loopback import VirtualCamera, VirtualMicrophone
from ..net.address import Address
from ..net.capture import Capture
from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..platforms.base import SessionWiring, ViewContext
from .controller import ClientController
from .receiver import ReceiverEngine

#: The port every emulated client receives media on.
MEDIA_PORT = 40404


class BaseClient:
    """One emulated participant: host + media port + engines.

    Attributes:
        name: Client name; must match the host name used in wiring.
        host: The network host this client runs on.
        view: UI state used for subscription decisions.
    """

    def __init__(
        self,
        name: str,
        host: Host,
        view: Optional[ViewContext] = None,
    ) -> None:
        if name != host.name:
            raise ConfigurationError(
                f"client name {name!r} must match host name {host.name!r}"
            )
        self.name = name
        self.host = host
        self.view = view if view is not None else ViewContext()
        self.receiver = ReceiverEngine(self)
        self.capture: Optional[Capture] = None
        self.wiring: Optional[SessionWiring] = None
        self.camera: Optional[VirtualCamera] = None
        self.microphone: Optional[VirtualMicrophone] = None
        self._feedback_sinks: List[Callable[[str, float], None]] = []
        host.bind(MEDIA_PORT, self._on_packet)

    def attach_camera(self, feed: FrameSource) -> VirtualCamera:
        """Load a video feed into the client's loopback camera."""
        self.camera = VirtualCamera(feed)
        return self.camera

    def attach_microphone(self, source: AudioSource) -> VirtualMicrophone:
        """Load an audio source into the client's loopback microphone."""
        self.microphone = VirtualMicrophone(source)
        return self.microphone

    @property
    def media_address(self) -> Address:
        """Where this client receives media."""
        return self.host.address(MEDIA_PORT)

    @property
    def service_address(self) -> Address:
        """Where this client sends media (set by :meth:`join`)."""
        if self.wiring is None:
            raise SessionError(f"{self.name} has not joined a session")
        return self.wiring.service_address[self.name]

    # ----------------------------------------------------------------- #
    # Session membership.
    # ----------------------------------------------------------------- #

    def join(self, wiring: SessionWiring) -> None:
        """Enter a wired session (signals the service endpoint)."""
        if self.name not in wiring.client_names:
            raise SessionError(f"{self.name} is not part of {wiring.session_id}")
        self.wiring = wiring
        if not wiring.p2p:
            self.host.send(
                Packet(
                    src=self.media_address,
                    dst=self.service_address,
                    payload_bytes=120,
                    kind=PacketKind.SIGNALING,
                    flow_id=f"{wiring.session_id}|{self.name}|join",
                )
            )

    def leave(self) -> None:
        """Leave the current session and drop per-session state."""
        self.wiring = None
        self.receiver.reset()
        self._feedback_sinks.clear()

    # ----------------------------------------------------------------- #
    # Packet dispatch.
    # ----------------------------------------------------------------- #

    def add_feedback_sink(self, sink: Callable[[str, dict], None]) -> None:
        """Register a callback for (flow_id, report) feedback messages.

        Reports are metadata dicts: loss reports carry ``loss`` and
        ``reporter``; keyframe requests carry ``pli: True``.
        """
        self._feedback_sinks.append(sink)

    def _on_packet(self, packet: Packet, host: Host) -> None:
        if packet.kind is PacketKind.PROBE:
            # Peer-to-peer sessions are probed directly (Zoom N=2);
            # clients answer like the relay would.
            host.send(packet.reply_template(20, PacketKind.PROBE_REPLY))
            return
        if packet.kind is PacketKind.FEEDBACK:
            report = dict(packet.metadata)
            for sink in self._feedback_sinks:
                sink(packet.flow_id, report)
            return
        if packet.kind in (PacketKind.MEDIA_VIDEO, PacketKind.MEDIA_AUDIO):
            self.receiver.on_media(packet)

    # ----------------------------------------------------------------- #
    # Monitoring.
    # ----------------------------------------------------------------- #

    def start_capture(self) -> Capture:
        """Begin the tcpdump capture of the client monitor."""
        self.capture = self.host.start_capture()
        return self.capture

    def discovered_endpoints(self, port: Optional[int] = None):
        """Streaming endpoints observed in this client's capture."""
        if self.capture is None:
            raise SessionError(f"{self.name} has no running capture")
        return self.capture.remote_endpoints(port=port, media_only=True)


class CloudVMClient(BaseClient):
    """The cloud VM of Figure 1: fully emulated environment.

    Adds the scripted workflow controller on top of the base client's
    loopback devices; the desktop recorder is attached per session by
    the harness.
    """

    def __init__(
        self,
        name: str,
        host: Host,
        view: Optional[ViewContext] = None,
    ) -> None:
        super().__init__(name, host, view)
        self.controller = ClientController(self)
