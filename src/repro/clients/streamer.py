"""Media senders: codec-backed and size-modelled video, plus audio.

A sender in a wired session pushes its camera/microphone output to its
service address.  Two video streamer flavours exist:

* :class:`VideoStreamer` runs the real block-DCT codec end to end --
  used wherever received quality matters (the QoE experiments),
* :class:`ModelVideoStreamer` emits packets whose *sizes* follow the
  codec's statistical profile without encoding -- used for large
  fan-out scenarios (Table 4's N=11 sessions) where only traffic,
  not pixels, is observed.

Both respond to congestion feedback through the platform's
:class:`~repro.platforms.ratecontrol.SenderRateState`, so the
bandwidth-cap experiments exercise the same adaptation paths either
way.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from ..errors import SessionError
from ..media.audio_codec import AudioCodec, AudioCodecConfig, FRAME_DURATION_S
from ..media.frames import FrameSpec
from ..media.padding import resize_frame
from ..media.transport import fragment_frame
from ..media.video_codec import VideoCodec, VideoCodecConfig
from ..net.burst import PacketTrain
from ..net.packet import Packet, PacketKind
from ..platforms.base import PlatformModel, SessionWiring, StreamLayer
from ..platforms.ratecontrol import RateContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import BaseClient

#: Fraction of the frame interval over which fragments are paced.
PACING_FRACTION = 0.6

#: Resolution scale of the LOW simulcast layer.
LOW_LAYER_SCALE = 0.5

#: Audio frames encoded per scheduling tick (keeps event counts sane).
AUDIO_FRAMES_PER_TICK = 5

#: Pixel throughput of the paper's feeds (640x480 at 30 fps).  When
#: wire-rate normalisation is on, the codec encodes at a bitrate scaled
#: by (local pixel rate / this reference) -- the same bits-per-pixel
#: operating point as the real clients -- while packets on the wire are
#: sized at the platform's absolute rate, so captures report
#: paper-comparable Mbps and bandwidth caps bite at the right values.
REFERENCE_PIXEL_RATE = 640 * 480 * 30


class _SenderBase:
    """Shared mechanics: flow ids, sequence numbers, packet emission."""

    def __init__(self, client: "BaseClient", wiring: SessionWiring) -> None:
        if wiring is None:
            raise SessionError("sender needs a wired session")
        self.client = client
        self.wiring = wiring
        self._seq: Dict[str, int] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        self._stop_at: Optional[float] = None

    @property
    def simulator(self):
        return self.client.host.network.simulator

    def _emit(
        self,
        flow_id: str,
        payload_bytes: int,
        kind: PacketKind,
        payload=None,
        delay: float = 0.0,
        extra_metadata: Optional[dict] = None,
    ) -> None:
        seq = self._seq.get(flow_id, 0)
        self._seq[flow_id] = seq + 1
        # Hot path: every media fragment of every stream goes through
        # here, so use the validation-free constructor and the packet's
        # dedicated seq slot (no per-packet metadata dict).
        packet = Packet.fast(
            self.client.media_address,
            self.wiring.service_address[self.client.name],
            payload_bytes,
            kind,
            flow_id,
            payload=payload,
            seq=seq,
        )
        if extra_metadata:
            packet.metadata.update(extra_metadata)
        self.packets_sent += 1
        self.bytes_sent += payload_bytes
        if delay > 0:
            self.simulator.schedule(delay, self.client.host.send, packet)
        else:
            self.client.host.send(packet)

    def _emit_train(
        self,
        flow_id: str,
        kind: PacketKind,
        sizes,
        payloads,
        pace: float,
    ) -> int:
        """Emit one tick's paced packet run, in bulk when provably exact.

        A steady-state tick emits ``len(sizes)`` packets at delays
        ``index * pace`` -- an arithmetic train.  This offers the whole
        train to the network's burst commit; on refusal (or when burst
        mode is off) every packet goes through the exact legacy
        :meth:`_emit` loop, so artifacts are bit-identical either way.
        Returns the number of packets bulk-committed (0 on fallback).

        The pre-checks are ordered cheapest first: in a live session
        other hosts' events always sit inside the train window, so a
        tick pays two comparisons here and takes the exact path.
        """
        n = len(sizes)
        if n >= 2:
            host = self.client.host
            network = host.network
            if network.burst:
                simulator = self.simulator
                now = simulator.now
                last_emit = now + (n - 1) * pace
                if (
                    simulator.peek_time() > last_emit
                    and last_emit <= simulator.horizon
                ):
                    seq = self._seq.get(flow_id, 0)
                    times = now + np.arange(n) * pace
                    train = PacketTrain(
                        self.client.media_address,
                        self.wiring.service_address[self.client.name],
                        kind,
                        flow_id,
                        times,
                        sizes,
                        payloads,
                        seq,
                    )
                    if host.send_train(train):
                        self._seq[flow_id] = seq + n
                        self.packets_sent += n
                        self.bytes_sent += sum(sizes)
                        return n
        if payloads is None:
            for index, size in enumerate(sizes):
                self._emit(flow_id, size, kind, delay=index * pace)
        else:
            for index, size in enumerate(sizes):
                self._emit(
                    flow_id, size, kind,
                    payload=payloads[index], delay=index * pace,
                )
        return 0

    def _running(self) -> bool:
        return self._stop_at is None or self.simulator.now < self._stop_at


class VideoStreamer(_SenderBase):
    """Codec-backed video sender with simulcast and adaptation."""

    def __init__(
        self,
        client: "BaseClient",
        wiring: SessionWiring,
        platform: PlatformModel,
        context: RateContext,
        spec: FrameSpec,
        codec_config: Optional[VideoCodecConfig] = None,
        normalize_wire_rate: bool = True,
        codec_batch: Optional[bool] = None,
    ) -> None:
        super().__init__(client, wiring)
        if client.camera is None:
            raise SessionError(f"{client.name} has no camera attached")
        self.spec = spec
        self.context = context
        self.layers = wiring.layers_needed(client.name) or {StreamLayer.HIGH}
        rates = platform.video_rates(context)
        self.rate_state = platform.make_sender_state(context)
        self._encoder_efficiency = platform.encoder_efficiency
        config = codec_config if codec_config is not None else VideoCodecConfig()
        self._codecs: Dict[StreamLayer, VideoCodec] = {}
        self._specs: Dict[StreamLayer, FrameSpec] = {}
        self._pixel_scales: Dict[StreamLayer, float] = {}
        for layer in self.layers:
            layer_spec = (
                spec if layer is StreamLayer.HIGH else spec.scaled(LOW_LAYER_SCALE)
            )
            self._specs[layer] = layer_spec
            if normalize_wire_rate:
                pixel_scale = (
                    layer_spec.pixels * layer_spec.fps / REFERENCE_PIXEL_RATE
                )
            else:
                pixel_scale = 1.0
            self._pixel_scales[layer] = pixel_scale
            self._codecs[layer] = VideoCodec(
                layer_spec,
                config,
                target_bps=rates[layer]
                * pixel_scale
                * platform.encoder_efficiency,
                batch=codec_batch,
            )
        self._start_time = 0.0
        self._ticker = None
        self.frames_sent = 0
        self.frames_skipped = 0
        self._wire_debt_s: Dict[StreamLayer, float] = {
            layer: 0.0 for layer in self.layers
        }
        client.add_feedback_sink(self._on_feedback)

    def start(self, duration_s: float, start_delay_s: float = 0.0) -> None:
        """Begin streaming for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise SessionError("streaming duration must be positive")
        self.simulator.schedule(start_delay_s, self._begin, duration_s)

    def _begin(self, duration_s: float) -> None:
        self._start_time = self.simulator.now
        self._stop_at = self._start_time + duration_s
        # Absolute-time scheduling: multiples of the frame period from
        # the stream start, so long sessions never drift off the frame
        # clock the way accumulated relative delays would.
        self._ticker = self.simulator.schedule_periodic(
            self.spec.frame_duration(), self._tick
        )

    #: Wire-debt level (in frame intervals) beyond which the sender
    #: skips camera frames -- real-time encoders reduce frame rate
    #: rather than sustain output above the target rate.
    SKIP_DEBT_INTERVALS = 1.5

    def _tick(self) -> "bool | None":
        if not self._running():
            return False
        now = self.simulator.now
        stream_time = now - self._start_time
        camera = self.client.camera
        frame = camera.read_frame_at(stream_time)
        interval = self.spec.frame_duration()
        for layer in self.layers:
            # Pay down wire debt; skip the frame if still over budget.
            debt = max(0.0, self._wire_debt_s[layer] - interval)
            self._wire_debt_s[layer] = debt
            if debt > self.SKIP_DEBT_INTERVALS * interval:
                self.frames_skipped += 1
                continue
            layer_spec = self._specs[layer]
            layer_frame = (
                frame
                if layer is StreamLayer.HIGH
                else resize_frame(frame, layer_spec.shape)
            )
            encoded = self._codecs[layer].encode(layer_frame)
            # On the wire, the stream carries the platform's absolute
            # rate: undo the pixel-rate scaling and the encoder
            # inefficiency (inefficient bits still occupy bandwidth).
            wire_scale = self._pixel_scales[layer] * self._encoder_efficiency
            wire_bytes = max(
                encoded.size_bytes, int(encoded.size_bytes / wire_scale)
            )
            wire_bytes = self._clamp_wire_bytes(layer, encoded, wire_bytes)
            layer_rate = self._layer_wire_rate(layer)
            self._wire_debt_s[layer] += wire_bytes * 8.0 / layer_rate
            fragments = fragment_frame(encoded, wire_bytes, encoded.index)
            flow_id = self.wiring.video_flow(self.client.name, layer)
            pace = PACING_FRACTION * interval / max(len(fragments), 1)
            self._emit_train(
                flow_id,
                PacketKind.MEDIA_VIDEO,
                [fragment.payload_bytes for fragment in fragments],
                fragments,
                pace,
            )
        self.frames_sent += 1
        return None

    def _layer_wire_rate(self, layer) -> float:
        """The layer's intended absolute wire rate (after adaptation)."""
        if layer is StreamLayer.HIGH:
            return self.rate_state.current_bps
        codec = self._codecs[layer]
        return codec.rate_controller.target_bps / max(
            self._pixel_scales[layer] * self._encoder_efficiency, 1e-9
        )

    def _clamp_wire_bytes(self, layer, encoded, wire_bytes: int) -> int:
        """Cap wire size at the layer's intended (adapted) rate.

        At very low adapted rates the block codec cannot compress high
        motion below its floor; the platform's real encoder can (frame
        skips, resolution drops), so the wire must follow the adapted
        target rather than amplify the simulation codec's floor.
        """
        codec = self._codecs[layer]
        target_bps = self._layer_wire_rate(layer)
        config = codec.config
        gop = config.gop_size
        inter_share = gop / (gop - 1.0 + config.keyframe_boost) if gop > 1 else 1.0
        factor = config.keyframe_boost if encoded.keyframe else inter_share
        spec = self._specs[layer]
        budget_bytes = target_bps / spec.fps / 8.0 * factor * 1.15
        return max(64, min(wire_bytes, int(budget_bytes)))

    def _on_feedback(self, flow_id: str, report: dict) -> None:
        if flow_id != self.wiring.video_flow(self.client.name, StreamLayer.HIGH):
            return
        if report.get("pli"):
            codec = self._codecs.get(StreamLayer.HIGH)
            if codec is not None:
                codec.request_keyframe()
            return
        loss = float(report.get("loss", 0.0))
        reporter = str(report.get("reporter", "receiver"))
        new_target = self.rate_state.on_feedback(loss, reporter)
        if new_target is not None and StreamLayer.HIGH in self._codecs:
            self._codecs[StreamLayer.HIGH].rate_controller.set_target(
                new_target
                * self._pixel_scales[StreamLayer.HIGH]
                * self._encoder_efficiency
            )

    @property
    def current_target_bps(self) -> float:
        """The sender's present HIGH-layer bitrate target."""
        return self.rate_state.current_bps


class ModelVideoStreamer(_SenderBase):
    """Size-modelled video sender (no pixels, codec-like traffic).

    Frame sizes follow the codec's statistical shape: keyframes every
    ``gop`` frames at a budget boost, inter frames lognormally spread
    around the per-frame budget.  Adaptation scales the budget exactly
    as the codec-backed sender would.
    """

    def __init__(
        self,
        client: "BaseClient",
        wiring: SessionWiring,
        platform: PlatformModel,
        context: RateContext,
        spec: FrameSpec,
        rng: Optional[np.random.Generator] = None,
        gop: int = 30,
        size_sigma: float = 0.25,
    ) -> None:
        super().__init__(client, wiring)
        self.spec = spec
        self.context = context
        self.layers = wiring.layers_needed(client.name) or {StreamLayer.HIGH}
        self._rates = platform.video_rates(context)
        self.rate_state = platform.make_sender_state(context)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.gop = gop
        self.size_sigma = size_sigma
        self._frame_index = 0
        self._start_time = 0.0
        self.frames_sent = 0
        client.add_feedback_sink(self._on_feedback)

    def start(self, duration_s: float, start_delay_s: float = 0.0) -> None:
        """Begin streaming for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise SessionError("streaming duration must be positive")
        self.simulator.schedule(start_delay_s, self._begin, duration_s)

    def _begin(self, duration_s: float) -> None:
        self._start_time = self.simulator.now
        self._frame_index = 0
        self._stop_at = self._start_time + duration_s
        self._ticker = self.simulator.schedule_periodic(
            self.spec.frame_duration(), self._tick
        )

    def _layer_rate(self, layer: StreamLayer) -> float:
        base = self._rates[layer]
        if layer is StreamLayer.HIGH:
            # Adaptation rescales the HIGH layer only.
            base = self.rate_state.current_bps
        return base

    def _frame_bytes(self, layer: StreamLayer) -> int:
        budget = self._layer_rate(layer) / self.spec.fps / 8.0
        keyframe = self._frame_index % self.gop == 0
        boost = 3.0 if keyframe else 1.0
        noise = float(self.rng.lognormal(0.0, self.size_sigma))
        return max(64, int(budget * boost * noise))

    def _tick(self) -> "bool | None":
        if not self._running():
            return False
        interval = self.spec.frame_duration()
        for layer in self.layers:
            size = self._frame_bytes(layer)
            flow_id = self.wiring.video_flow(self.client.name, layer)
            mtu = 1200
            fragments = max(1, (size + mtu - 1) // mtu)
            pace = PACING_FRACTION * interval / fragments
            sizes = []
            remaining = size
            for index in range(fragments):
                chunk = min(mtu, remaining) if index < fragments - 1 else remaining
                sizes.append(max(chunk, 1))
                remaining -= chunk
            self._emit_train(flow_id, PacketKind.MEDIA_VIDEO, sizes, None, pace)
        self._frame_index += 1
        self.frames_sent += 1
        return None

    def _on_feedback(self, flow_id: str, report: dict) -> None:
        if flow_id != self.wiring.video_flow(self.client.name, StreamLayer.HIGH):
            return
        if report.get("pli"):
            return  # no codec state to refresh in the size model
        self.rate_state.on_feedback(
            float(report.get("loss", 0.0)),
            str(report.get("reporter", "receiver")),
        )


class AudioStreamer(_SenderBase):
    """Codec-backed audio sender (20 ms frames, constant bitrate)."""

    def __init__(
        self,
        client: "BaseClient",
        wiring: SessionWiring,
        config: AudioCodecConfig,
        codec_batch: Optional[bool] = None,
    ) -> None:
        super().__init__(client, wiring)
        if client.microphone is None:
            raise SessionError(f"{client.name} has no microphone attached")
        self.codec = AudioCodec(config, batch=codec_batch)
        self._start_time = 0.0
        self._ticker = None
        self.frames_sent = 0

    def start(self, duration_s: float, start_delay_s: float = 0.0) -> None:
        """Begin streaming for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise SessionError("streaming duration must be positive")
        self.simulator.schedule(start_delay_s, self._begin, duration_s)

    def _begin(self, duration_s: float) -> None:
        self._start_time = self.simulator.now
        self._stop_at = self._start_time + duration_s
        self._ticker = self.simulator.schedule_periodic(
            FRAME_DURATION_S,
            self._tick,
            index_step=AUDIO_FRAMES_PER_TICK,
        )

    def _tick(self) -> "bool | None":
        if not self._running():
            return False
        now = self.simulator.now
        stream_time = now - self._start_time
        batch = self.client.microphone.read_at(
            stream_time, AUDIO_FRAMES_PER_TICK * FRAME_DURATION_S
        )
        flow_id = self.wiring.audio_flow(self.client.name)
        frame_samples = self.codec.config.frame_samples
        # One batched encode per tick: a single DCT + quantiser fit
        # over the tick's whole frame matrix (any trailing partial
        # frame is dropped, exactly as the per-frame loop broke early).
        usable = (len(batch) // frame_samples) * frame_samples
        encoded_frames = list(self.codec.encode(batch[:usable]))
        self._emit_train(
            flow_id,
            PacketKind.MEDIA_AUDIO,
            [encoded.size_bytes for encoded in encoded_frames],
            encoded_frames,
            FRAME_DURATION_S,
        )
        self.frames_sent += len(encoded_frames)
        return None
