"""Token-bucket traffic shaping (the paper's ``tc``/``ifb`` emulation).

Section 4.4 applies artificial bandwidth caps to a cloud VM's *incoming*
traffic using Linux ``tc`` with an ``ifb`` redirect.  This module models
that device: a token-bucket rate limiter with a bounded FIFO queue.
Packets that would wait longer than the queue allows are tail-dropped,
which is what ultimately degrades video under tight caps (Figure 17).

The implementation uses a virtual-clock formulation: each accepted
packet is assigned a virtual finish time advancing at the shaped rate,
with a burst allowance letting short bursts pass unshaped -- equivalent
to a classic token bucket but O(1) per packet with no timer churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..units import bytes_to_bits, ms


@dataclass
class ShaperStats:
    """Counters exported by a shaper for analysis."""

    accepted: int = 0
    dropped: int = 0
    delayed: int = 0
    bytes_accepted: int = 0
    bytes_dropped: int = 0

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered packets that were dropped."""
        total = self.accepted + self.dropped
        return self.dropped / total if total else 0.0


@dataclass
class TokenBucketShaper:
    """Rate limiter with burst credit and a bounded queue.

    Attributes:
        rate_bps: Shaped rate in bits/second.
        burst_bytes: Bucket depth; bursts up to this size pass through
            without delay (tc tbf's ``burst``).
        max_queue_delay_s: Longest a packet may sit in the queue before
            being tail-dropped (tc tbf's ``latency``).
    """

    rate_bps: float
    burst_bytes: int = 16_000
    max_queue_delay_s: float = ms(200)
    stats: ShaperStats = field(default_factory=ShaperStats)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(f"shaper rate must be positive: {self.rate_bps}")
        if self.burst_bytes <= 0:
            raise ConfigurationError("burst_bytes must be positive")
        if self.max_queue_delay_s < 0:
            raise ConfigurationError("max_queue_delay_s must be >= 0")
        self._virtual_finish = float("-inf")

    @property
    def burst_seconds(self) -> float:
        """Time credit represented by a full bucket."""
        return bytes_to_bits(self.burst_bytes) / self.rate_bps

    def submit(self, now: float, wire_bytes: int) -> Optional[float]:
        """Offer a packet of ``wire_bytes`` at time ``now``.

        Returns the time at which the shaper releases the packet, or
        ``None`` if the queue is full and the packet is dropped.

        The drop decision uses the *pre-service* queue wait (how long
        the packet would sit before transmission starts), so it is
        independent of the packet's own size -- a DropTail queue does
        not privilege small packets once it is full.
        """
        service_time = bytes_to_bits(wire_bytes) / self.rate_bps
        start = max(now - self.burst_seconds, self._virtual_finish)
        queue_wait = max(0.0, start - now)
        if queue_wait > self.max_queue_delay_s:
            self.stats.dropped += 1
            self.stats.bytes_dropped += wire_bytes
            return None
        finish = start + service_time
        release = max(now, finish)
        self._virtual_finish = finish
        self.stats.accepted += 1
        self.stats.bytes_accepted += wire_bytes
        if release > now:
            self.stats.delayed += 1
        return release

    def reset(self) -> None:
        """Clear queue state and statistics."""
        self._virtual_finish = float("-inf")
        self.stats = ShaperStats()
