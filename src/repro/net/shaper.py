"""Token-bucket traffic shaping (the paper's ``tc``/``ifb`` emulation).

Section 4.4 applies artificial bandwidth caps to a cloud VM's *incoming*
traffic using Linux ``tc`` with an ``ifb`` redirect.  This module models
that device: a token-bucket rate limiter with a bounded FIFO queue.
Packets that would wait longer than the queue allows are tail-dropped,
which is what ultimately degrades video under tight caps (Figure 17).

The implementation uses a virtual-clock formulation: each accepted
packet is assigned a virtual finish time advancing at the shaped rate,
with a burst allowance letting short bursts pass unshaped -- equivalent
to a classic token bucket but O(1) per packet with no timer churn.

Shapers are mutable mid-flight: :meth:`TokenBucketShaper.set_rate`
rebases the virtual clock so the bits already queued drain at the new
rate (a ``tc class change`` does the same to an installed qdisc), and
counters are kept per *phase* -- :meth:`TokenBucketShaper.start_phase`
rolls the live counters into the phase history, which is how a
time-varying condition timeline gets per-phase drop statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import bytes_to_bits, ms


@dataclass
class ShaperStats:
    """Counters exported by a shaper for analysis."""

    accepted: int = 0
    dropped: int = 0
    delayed: int = 0
    bytes_accepted: int = 0
    bytes_dropped: int = 0

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered packets that were dropped."""
        total = self.accepted + self.dropped
        return self.dropped / total if total else 0.0

    def absorb(self, other: "ShaperStats") -> None:
        """Fold another counter set into this one (stats aggregation)."""
        self.accepted += other.accepted
        self.dropped += other.dropped
        self.delayed += other.delayed
        self.bytes_accepted += other.bytes_accepted
        self.bytes_dropped += other.bytes_dropped

    @classmethod
    def merged(cls, parts: "list[ShaperStats] | Tuple[ShaperStats, ...]"
               ) -> "ShaperStats":
        """One counter set summing every given part."""
        total = cls()
        for part in parts:
            total.absorb(part)
        return total

    @classmethod
    def delta(cls, current: "ShaperStats",
              baseline: Optional["ShaperStats"] = None) -> "ShaperStats":
        """Counters accumulated since a baseline snapshot.

        Counters on a shared link grow across sessions; subtracting a
        pre-session snapshot scopes them to one session's activity.
        """
        if baseline is None:
            baseline = cls()
        return cls(
            accepted=current.accepted - baseline.accepted,
            dropped=current.dropped - baseline.dropped,
            delayed=current.delayed - baseline.delayed,
            bytes_accepted=current.bytes_accepted - baseline.bytes_accepted,
            bytes_dropped=current.bytes_dropped - baseline.bytes_dropped,
        )


@dataclass
class TokenBucketShaper:
    """Rate limiter with burst credit and a bounded queue.

    Attributes:
        rate_bps: Shaped rate in bits/second.
        burst_bytes: Bucket depth; bursts up to this size pass through
            without delay (tc tbf's ``burst``).
        max_queue_delay_s: Longest a packet may sit in the queue before
            being tail-dropped (tc tbf's ``latency``).
        phase_name: Label of the counters currently accumulating in
            :attr:`stats` (a condition timeline sets this per phase).
        stats: Counters of the *current* phase.  A shaper that never
            changes phase keeps everything here, so static experiments
            read it exactly as before.
    """

    rate_bps: float
    burst_bytes: int = 16_000
    max_queue_delay_s: float = ms(200)
    phase_name: str = "all"
    stats: ShaperStats = field(default_factory=ShaperStats)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(f"shaper rate must be positive: {self.rate_bps}")
        if self.burst_bytes <= 0:
            raise ConfigurationError("burst_bytes must be positive")
        if self.max_queue_delay_s < 0:
            raise ConfigurationError("max_queue_delay_s must be >= 0")
        self._virtual_finish = float("-inf")
        self._phase_history: List[Tuple[str, ShaperStats]] = []

    @property
    def burst_seconds(self) -> float:
        """Time credit represented by a full bucket."""
        return bytes_to_bits(self.burst_bytes) / self.rate_bps

    def submit(self, now: float, wire_bytes: int) -> Optional[float]:
        """Offer a packet of ``wire_bytes`` at time ``now``.

        Returns the time at which the shaper releases the packet, or
        ``None`` if the queue is full and the packet is dropped.

        The drop decision uses the *pre-service* queue wait (how long
        the packet would sit before transmission starts), so it is
        independent of the packet's own size -- a DropTail queue does
        not privilege small packets once it is full.
        """
        service_time = bytes_to_bits(wire_bytes) / self.rate_bps
        start = max(now - self.burst_seconds, self._virtual_finish)
        queue_wait = max(0.0, start - now)
        if queue_wait > self.max_queue_delay_s:
            self.stats.dropped += 1
            self.stats.bytes_dropped += wire_bytes
            return None
        finish = start + service_time
        release = max(now, finish)
        self._virtual_finish = finish
        self.stats.accepted += 1
        self.stats.bytes_accepted += wire_bytes
        if release > now:
            self.stats.delayed += 1
        return release

    def submit_batch(
        self, times: "np.ndarray", wire_bytes: "np.ndarray"
    ) -> "Optional[np.ndarray]":
        """Offer a whole packet train; all-or-nothing vectorised debit.

        Accepts only when the bucket stays full across the train --
        the virtual clock never constrains any packet's start, which
        requires ``_virtual_finish <= times[0] - burst_seconds`` and
        each packet's service to finish before the next packet's
        credit window opens.  Under that precondition every scalar
        :meth:`submit` would have taken ``start = now - burst_seconds``
        and the array arithmetic reproduces it bit-for-bit.  Returns
        the per-packet release times, or ``None`` when the caller must
        fall back to exact per-packet submission (queueing, drops or
        any ambiguity).
        """
        burst_seconds = self.burst_seconds
        if self._virtual_finish > times[0] - burst_seconds:
            return None
        services = wire_bytes * 8.0 / self.rate_bps
        starts = times - burst_seconds
        finishes = starts + services
        if len(times) > 1 and bool(
            np.any(finishes[:-1] > times[1:] - burst_seconds)
        ):
            return None
        releases = np.maximum(times, finishes)
        self._virtual_finish = float(finishes[-1])
        n = len(times)
        self.stats.accepted += n
        self.stats.bytes_accepted += int(wire_bytes.sum())
        self.stats.delayed += int(np.count_nonzero(releases > times))
        return releases

    # ------------------------------------------------------------- #
    # Mid-flight mutation (the condition-timeline hooks).
    # ------------------------------------------------------------- #

    def queued_bits(self, now: float) -> float:
        """Bits committed to the virtual clock but not yet serviced."""
        backlog_s = self._virtual_finish - (now - self.burst_seconds)
        return max(0.0, backlog_s) * self.rate_bps

    def set_rate(
        self,
        now: float,
        rate_bps: float,
        burst_bytes: Optional[int] = None,
    ) -> None:
        """Change the shaped rate (and optionally burst) mid-flight.

        The virtual clock is rebased so the bits already queued keep
        draining -- at the *new* rate -- instead of being silently
        stretched or compressed by the rate change: the backlog is
        converted to bits under the old parameters and re-expressed as
        a virtual finish time under the new ones.
        """
        if rate_bps <= 0:
            raise ConfigurationError(f"shaper rate must be positive: {rate_bps}")
        if burst_bytes is not None and burst_bytes <= 0:
            raise ConfigurationError("burst_bytes must be positive")
        backlog_bits = self.queued_bits(now)
        self.rate_bps = rate_bps
        if burst_bytes is not None:
            self.burst_bytes = burst_bytes
        self._virtual_finish = (now - self.burst_seconds) + (
            backlog_bits / rate_bps
        )

    # ------------------------------------------------------------- #
    # Per-phase statistics.
    # ------------------------------------------------------------- #

    def start_phase(self, name: str) -> None:
        """Roll the live counters into history and relabel the shaper.

        Packets already queued keep their admission accounting in the
        finished phase (they were accepted under its conditions).
        """
        self._phase_history.append((self.phase_name, self.stats))
        self.phase_name = name
        self.stats = ShaperStats()

    def stats_by_phase(self) -> Dict[str, ShaperStats]:
        """Counters keyed by phase name, merged across re-entries."""
        phases: Dict[str, ShaperStats] = {}
        for name, stats in self._phase_history + [(self.phase_name, self.stats)]:
            phases.setdefault(name, ShaperStats()).absorb(stats)
        return phases

    def total_stats(self) -> ShaperStats:
        """Counters summed over every phase this shaper has seen."""
        return ShaperStats.merged(
            [stats for _, stats in self._phase_history] + [self.stats]
        )

    def reset(self) -> None:
        """Clear queue state and statistics (all phases)."""
        self._virtual_finish = float("-inf")
        self.stats = ShaperStats()
        self._phase_history = []
