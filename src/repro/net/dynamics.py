"""Time-varying network dynamics: scripted condition timelines.

The paper's most interesting findings come from *changing* network
conditions -- the Section 4.4 bandwidth caps and the Section 5
residential-WiFi mobile rack.  This module makes link conditions
first-class, time-varying simulation state:

* :class:`LinkConditions` -- one piecewise-constant condition set
  (bandwidth cap, link rate overrides, latency/jitter adders, loss),
* :class:`ConditionPhase` -- a named span of conditions,
* :class:`ImpulseEvent` -- a transient overlay (a handover outage, a
  cross-traffic onset) spliced on top of the phase plan,
* :class:`ConditionTimeline` -- the declarative per-host schedule; it
  *compiles* to a list of :class:`PhaseWindow` segments and is armed on
  the simulator by :func:`arm_timeline`, which mutates the host's
  :class:`~repro.net.link.AccessLink` at each boundary.

Everything is JSON-serializable (:meth:`ConditionTimeline.to_dict` /
``from_dict``), so timelines travel through campaign grids with
spec-hash integrity like any other axis value.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from ..errors import ConfigurationError
from .link import default_cap_burst

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .link import AccessLink
    from .simulator import Simulator

#: Tag wrapped around timelines used as campaign axis values, so the
#: registry can tell a serialized timeline from an ordinary dict param.
TIMELINE_TAG = "__timeline__"


@dataclass(frozen=True)
class LinkConditions:
    """One piecewise-constant set of access-network conditions.

    ``None`` rates mean "the link's base value"; an all-default
    instance is therefore the unconditioned network, and applying it
    restores a link to its constructed state.

    Attributes:
        uplink_bps / downlink_bps: Serialisation rate overrides.
        ingress_cap_bps: Token-bucket ingress cap (tc/ifb position);
            ``None`` means uncapped.
        cap_burst_bytes: Bucket depth for the cap (``None`` applies
            :func:`~repro.net.link.default_cap_burst`).
        extra_latency_s: One-way delay adder for this host's packets.
        extra_jitter_s: Scale of a random extra delay (gamma-shaped,
            like the fabric's own jitter); 0 draws nothing.
        loss_rate: Packet loss probability at this access; 0 draws
            nothing.
    """

    uplink_bps: Optional[float] = None
    downlink_bps: Optional[float] = None
    ingress_cap_bps: Optional[float] = None
    cap_burst_bytes: Optional[int] = None
    extra_latency_s: float = 0.0
    extra_jitter_s: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("uplink_bps", "downlink_bps", "ingress_cap_bps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.cap_burst_bytes is not None and self.cap_burst_bytes <= 0:
            raise ConfigurationError("cap_burst_bytes must be positive")
        if self.extra_latency_s < 0 or self.extra_jitter_s < 0:
            raise ConfigurationError("latency adders must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )

    @property
    def is_neutral(self) -> bool:
        """Whether applying this leaves a link at its base state."""
        return self == LinkConditions()

    def burst_bytes(self) -> Optional[int]:
        """The effective bucket depth for the cap (``None`` = no cap)."""
        if self.ingress_cap_bps is None:
            return None
        if self.cap_burst_bytes is not None:
            return self.cap_burst_bytes
        return default_cap_burst(self.ingress_cap_bps)

    def overlaid(self, impulse: "LinkConditions") -> "LinkConditions":
        """These conditions with an impulse's transient overlay on top.

        Rate/cap overrides take the impulse's value when it sets one;
        latency and jitter adders stack; loss combines as independent
        drop processes (``1 - (1-a)(1-b)``).
        """
        return LinkConditions(
            uplink_bps=(
                impulse.uplink_bps
                if impulse.uplink_bps is not None
                else self.uplink_bps
            ),
            downlink_bps=(
                impulse.downlink_bps
                if impulse.downlink_bps is not None
                else self.downlink_bps
            ),
            ingress_cap_bps=(
                impulse.ingress_cap_bps
                if impulse.ingress_cap_bps is not None
                else self.ingress_cap_bps
            ),
            cap_burst_bytes=(
                impulse.cap_burst_bytes
                if impulse.cap_burst_bytes is not None
                else self.cap_burst_bytes
            ),
            extra_latency_s=self.extra_latency_s + impulse.extra_latency_s,
            extra_jitter_s=self.extra_jitter_s + impulse.extra_jitter_s,
            loss_rate=1.0 - (1.0 - self.loss_rate) * (1.0 - impulse.loss_rate),
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form (defaults elided)."""
        data: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value != spec.default:
                data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkConditions":
        """Rebuild conditions persisted with :meth:`to_dict`."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown condition fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


def conditions(**kwargs: Any) -> LinkConditions:
    """Keyword sugar for :class:`LinkConditions`."""
    return LinkConditions(**kwargs)


@dataclass(frozen=True)
class ConditionPhase:
    """A named span of constant conditions within a timeline."""

    name: str
    duration_s: float
    conditions: LinkConditions = field(default_factory=LinkConditions)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a phase needs a name")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"phase {self.name!r} duration must be positive"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "conditions": self.conditions.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConditionPhase":
        try:
            return cls(
                name=data["name"],
                duration_s=float(data["duration_s"]),
                conditions=LinkConditions.from_dict(data.get("conditions", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad phase record: {exc!r}") from exc


def phase(name: str, duration_s: float, **condition_kwargs: Any) -> ConditionPhase:
    """Author a phase inline: ``phase("lte", 10, ingress_cap_bps=2e6)``."""
    return ConditionPhase(
        name=name,
        duration_s=duration_s,
        conditions=LinkConditions(**condition_kwargs),
    )


@dataclass(frozen=True)
class ImpulseEvent:
    """A transient condition overlay at a point in the timeline.

    Impulses model the paper's punctual network events -- a WiFi->LTE
    handover outage, a cross-traffic onset -- without re-authoring the
    phase plan around them: during ``[at_s, at_s + duration_s)`` the
    impulse's conditions are overlaid on whatever phase is active
    (:meth:`LinkConditions.overlaid`), and compilation splits the
    affected phase windows accordingly.
    """

    kind: str
    at_s: float
    duration_s: float
    conditions: LinkConditions = field(default_factory=LinkConditions)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("an impulse needs a kind label")
        if self.at_s < 0:
            raise ConfigurationError("impulse at_s must be >= 0")
        if self.duration_s <= 0:
            raise ConfigurationError("impulse duration must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "conditions": self.conditions.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ImpulseEvent":
        try:
            return cls(
                kind=data["kind"],
                at_s=float(data["at_s"]),
                duration_s=float(data["duration_s"]),
                conditions=LinkConditions.from_dict(data.get("conditions", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad impulse record: {exc!r}") from exc


def impulse(
    kind: str, at_s: float, duration_s: float, **condition_kwargs: Any
) -> ImpulseEvent:
    """Author an impulse inline: ``impulse("outage", 5, 0.3, loss_rate=0.999)``."""
    return ImpulseEvent(
        kind=kind,
        at_s=at_s,
        duration_s=duration_s,
        conditions=LinkConditions(**condition_kwargs),
    )


@dataclass(frozen=True)
class PhaseWindow:
    """One compiled, absolute-time segment of constant conditions."""

    name: str
    start_s: float
    end_s: float
    conditions: LinkConditions

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def clipped(self, lo: float, hi: float) -> Optional["PhaseWindow"]:
        """This window intersected with ``[lo, hi]`` (``None`` if empty)."""
        start = max(self.start_s, lo)
        end = min(self.end_s, hi)
        if end <= start:
            return None
        return replace(self, start_s=start, end_s=end)


@dataclass(frozen=True)
class ConditionTimeline:
    """A declarative per-host schedule of network conditions.

    Attributes:
        phases: The base piecewise-constant plan, in order.  Phase
            names must be unique (they key per-phase reports).
        impulses: Transient overlays spliced on top of the plan.
        start_offset_s: Arming offset relative to the media-window
            start; negative offsets reach back into the settle window
            (a cap that must already hold while clients join).
    """

    phases: Tuple[ConditionPhase, ...]
    impulses: Tuple[ImpulseEvent, ...] = ()
    start_offset_s: float = 0.0

    def __init__(
        self,
        phases: Sequence[ConditionPhase],
        impulses: Sequence[ImpulseEvent] = (),
        start_offset_s: float = 0.0,
    ) -> None:
        phases = tuple(phases)
        impulses = tuple(sorted(impulses, key=lambda i: i.at_s))
        if not phases:
            raise ConfigurationError("a timeline needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"phase names must be unique: {names}")
        total = sum(p.duration_s for p in phases)
        for event in impulses:
            if event.at_s >= total:
                raise ConfigurationError(
                    f"impulse {event.kind!r} at {event.at_s}s is past the "
                    f"timeline end ({total}s)"
                )
        object.__setattr__(self, "phases", phases)
        object.__setattr__(self, "impulses", impulses)
        object.__setattr__(self, "start_offset_s", float(start_offset_s))

    # ------------------------------------------------------------- #
    # Introspection.
    # ------------------------------------------------------------- #

    @property
    def total_duration_s(self) -> float:
        """Length of the phase plan."""
        return sum(p.duration_s for p in self.phases)

    def phase_names(self) -> List[str]:
        """Base phase names, in plan order."""
        return [p.name for p in self.phases]

    # ------------------------------------------------------------- #
    # Compilation.
    # ------------------------------------------------------------- #

    def compile(self, start_s: float) -> List[PhaseWindow]:
        """The timeline as absolute-time windows starting at ``start_s``.

        Impulse overlays split the base windows they intersect; the
        impulse segment is named ``"<phase>+<kind>"`` so per-phase
        reports keep the transient separate from its host phase.
        """
        edges: List[float] = [0.0]
        for base in self.phases:
            edges.append(edges[-1] + base.duration_s)
        boundaries = set(edges)
        for event in self.impulses:
            boundaries.add(event.at_s)
            boundaries.add(min(event.at_s + event.duration_s, edges[-1]))
        cuts = sorted(boundaries)

        windows: List[PhaseWindow] = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            base_index = self._phase_index_at(edges, lo)
            base = self.phases[base_index]
            name = base.name
            active = base.conditions
            for event in self.impulses:
                if event.at_s <= lo < event.at_s + event.duration_s:
                    active = active.overlaid(event.conditions)
                    name = f"{name}+{event.kind}"
            window = PhaseWindow(
                name=name,
                start_s=start_s + lo,
                end_s=start_s + hi,
                conditions=active,
            )
            # Merge consecutive identical segments (cuts that changed
            # nothing, e.g. an impulse boundary inside a like phase).
            if (
                windows
                and windows[-1].name == window.name
                and windows[-1].conditions == window.conditions
            ):
                windows[-1] = replace(windows[-1], end_s=window.end_s)
            else:
                windows.append(window)
        return windows

    @staticmethod
    def _phase_index_at(edges: List[float], offset: float) -> int:
        """Index of the base phase covering ``offset`` (right-open).

        Bisection over the (sorted, cumulative) edges keeps compiling a
        many-phase timeline -- e.g. a throughput trace replayed as one
        phase per record -- O(P log P) instead of O(P^2).
        """
        index = bisect.bisect_right(edges, offset) - 1
        return min(max(index, 0), len(edges) - 2)

    # ------------------------------------------------------------- #
    # Serialization.
    # ------------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form (campaign axes, stores, hashing)."""
        data: Dict[str, Any] = {
            "phases": [p.to_dict() for p in self.phases],
        }
        if self.impulses:
            data["impulses"] = [i.to_dict() for i in self.impulses]
        if self.start_offset_s:
            data["start_offset_s"] = self.start_offset_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConditionTimeline":
        """Rebuild a timeline persisted with :meth:`to_dict`."""
        try:
            return cls(
                phases=[ConditionPhase.from_dict(p) for p in data["phases"]],
                impulses=[
                    ImpulseEvent.from_dict(i) for i in data.get("impulses", ())
                ],
                start_offset_s=float(data.get("start_offset_s", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad timeline record: {exc!r}") from exc

    def as_axis_value(self) -> Dict[str, Any]:
        """The tagged form campaign grids carry as an axis value."""
        return {TIMELINE_TAG: self.to_dict()}

    @classmethod
    def coerce(cls, value: Any) -> Optional["ConditionTimeline"]:
        """A timeline from any accepted spelling (``None`` passes)."""
        if value is None or isinstance(value, ConditionTimeline):
            return value
        if isinstance(value, Mapping):
            if TIMELINE_TAG in value:
                return cls.from_dict(value[TIMELINE_TAG])
            return cls.from_dict(value)
        raise ConfigurationError(
            f"cannot interpret {type(value).__name__} as a timeline"
        )


# ----------------------------------------------------------------- #
# Authoring helpers.
# ----------------------------------------------------------------- #


def constant_timeline(
    duration_s: float,
    name: str = "steady",
    start_offset_s: float = 0.0,
    **condition_kwargs: Any,
) -> ConditionTimeline:
    """A degenerate one-phase timeline holding conditions constant.

    The static experiments (Section 4.4's fixed caps) are this: one
    phase covering the whole session.
    """
    return ConditionTimeline(
        phases=(phase(name, duration_s, **condition_kwargs),),
        start_offset_s=start_offset_s,
    )


def bandwidth_ramp_timeline(
    caps_bps: Sequence[Optional[float]],
    step_s: float,
    start_offset_s: float = 0.0,
) -> ConditionTimeline:
    """Step through a sequence of ingress caps, ``step_s`` each.

    ``None`` entries are uncapped steps, so a step-down/step-up ramp is
    simply ``(None, 1e6, 250e3, 1e6, None)``.
    """
    def label(cap: Optional[float], index: int) -> str:
        if cap is None:
            return f"p{index}-uncapped"
        if cap >= 1e6:
            return f"p{index}-{cap / 1e6:g}mbps"
        return f"p{index}-{cap / 1e3:g}kbps"

    return ConditionTimeline(
        phases=tuple(
            ConditionPhase(
                name=label(cap, index),
                duration_s=step_s,
                conditions=LinkConditions(ingress_cap_bps=cap),
            )
            for index, cap in enumerate(caps_bps)
        ),
        start_offset_s=start_offset_s,
    )


def handover_timeline(
    before_s: float,
    after_s: float,
    before: Optional[LinkConditions] = None,
    after: Optional[LinkConditions] = None,
    outage_s: float = 0.3,
    outage_loss: float = 0.999,
    start_offset_s: float = 0.0,
) -> ConditionTimeline:
    """A WiFi->LTE style handover: two regimes with a break between.

    The radio switch itself is an impulse overlaying near-total loss on
    the first ``outage_s`` of the second regime -- the Section 5 rack's
    phones dropping off WiFi before LTE attaches.
    """
    wifi = before if before is not None else LinkConditions()
    lte = after if after is not None else LinkConditions(
        ingress_cap_bps=2e6, extra_latency_s=0.04, extra_jitter_s=0.01
    )
    return ConditionTimeline(
        phases=(
            ConditionPhase("wifi", before_s, wifi),
            ConditionPhase("lte", after_s, lte),
        ),
        impulses=(
            ImpulseEvent(
                kind="handover",
                at_s=before_s,
                duration_s=outage_s,
                conditions=LinkConditions(loss_rate=outage_loss),
            ),
        ),
        start_offset_s=start_offset_s,
    )


def cross_traffic_timeline(
    duration_s: float,
    onset_s: float,
    contention_s: float,
    contended_cap_bps: float,
    start_offset_s: float = 0.0,
) -> ConditionTimeline:
    """An idle access that a competing flow squeezes for a while."""
    return ConditionTimeline(
        phases=(phase("idle", duration_s),),
        impulses=(
            ImpulseEvent(
                kind="cross-traffic",
                at_s=onset_s,
                duration_s=contention_s,
                conditions=LinkConditions(ingress_cap_bps=contended_cap_bps),
            ),
        ),
        start_offset_s=start_offset_s,
    )


# ----------------------------------------------------------------- #
# Arming on the simulator.
# ----------------------------------------------------------------- #

#: Relative slack absorbing float rounding of ``media_start + offset``:
#: a timeline reaching back exactly to the session start can land one
#: ulp before "now" when accumulated session times are not dyadic.
ARM_TOLERANCE = 1e-9


def resolve_arm_start(
    now: float, media_start_s: float, timeline: ConditionTimeline
) -> float:
    """The absolute arming time of a timeline, clamped to ``now``.

    Raises :class:`~repro.errors.ConfigurationError` when the timeline
    genuinely starts in the past; a sub-tolerance shortfall (float
    rounding of the offset arithmetic) is clamped to ``now`` instead.
    """
    start = media_start_s + timeline.start_offset_s
    if start < now:
        if now - start <= ARM_TOLERANCE * max(1.0, abs(now)):
            return now
        raise ConfigurationError(
            f"timeline would arm at {start:.3f}s, before current time "
            f"{now:.3f}s (start_offset_s too negative?)"
        )
    return start


def arm_timeline(
    simulator: "Simulator",
    link: "AccessLink",
    timeline: ConditionTimeline,
    media_start_s: float,
) -> List[PhaseWindow]:
    """Compile a timeline and schedule its boundary events.

    The timeline is armed relative to the media window: phase 0 enters
    at ``media_start_s + timeline.start_offset_s``, each subsequent
    window at its own boundary, and a final event restores the link's
    base conditions when the plan ends.  Returns the compiled windows
    (callers record them for per-phase analysis).
    """
    start = resolve_arm_start(simulator.now, media_start_s, timeline)
    windows = timeline.compile(start)
    # Announce every boundary to the link before any of them fire: the
    # packet-path fast lane refuses to fuse packets whose flight window
    # overlaps a registered change, which is what keeps dynamics
    # sessions bit-identical with the fast lane on or off.
    link.register_scheduled_changes(
        [window.start_s for window in windows] + [windows[-1].end_s]
    )
    for window in windows:
        simulator.schedule_at(
            window.start_s,
            link.apply_conditions,
            window.start_s,
            window.conditions,
            window.name,
        )
    end = windows[-1].end_s
    simulator.schedule_at(end, link.clear_conditions, end)
    return windows
