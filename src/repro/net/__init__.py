"""Network substrate: discrete-event packet simulation with geography.

This package stands in for the paper's measurement network (Azure VMs in
twelve regions, the public Internet between them, and a residential
access network for the mobile testbed).  It provides:

* :mod:`repro.net.geo` — locations and a great-circle latency model,
* :mod:`repro.net.regions` — the paper's Table 3 region registry,
* :mod:`repro.net.simulator` — the discrete-event engine,
* :mod:`repro.net.node` — hosts with ports, clocks and captures,
* :mod:`repro.net.link` — access links with serialisation and queueing,
* :mod:`repro.net.shaper` — token-bucket ingress shaping (tc/ifb),
* :mod:`repro.net.dynamics` — scripted, time-varying condition
  timelines compiled onto the simulator,
* :mod:`repro.net.capture` — tcpdump-like packet capture,
* :mod:`repro.net.routing` — the fabric that moves packets between hosts.
"""

from .address import Address, EndpointKey
from .capture import CapturedPacket, Capture, Direction
from .clock import Clock, SyncedClockFactory
from .dynamics import (
    ConditionPhase,
    ConditionTimeline,
    ImpulseEvent,
    LinkConditions,
    PhaseWindow,
    arm_timeline,
    bandwidth_ramp_timeline,
    constant_timeline,
    cross_traffic_timeline,
    handover_timeline,
)
from .geo import GeoPoint, LatencyModel, great_circle_km
from .link import AccessLink
from .node import Host
from .packet import Packet, Protocol
from .regions import Region, RegionRegistry, default_registry
from .routing import Network
from .shaper import TokenBucketShaper
from .simulator import PeriodicTask, Simulator

__all__ = [
    "AccessLink",
    "Address",
    "Capture",
    "CapturedPacket",
    "Clock",
    "ConditionPhase",
    "ConditionTimeline",
    "Direction",
    "EndpointKey",
    "GeoPoint",
    "Host",
    "ImpulseEvent",
    "LatencyModel",
    "LinkConditions",
    "Network",
    "Packet",
    "PeriodicTask",
    "PhaseWindow",
    "Protocol",
    "Region",
    "RegionRegistry",
    "Simulator",
    "SyncedClockFactory",
    "TokenBucketShaper",
    "arm_timeline",
    "bandwidth_ramp_timeline",
    "constant_timeline",
    "cross_traffic_timeline",
    "default_registry",
    "great_circle_km",
    "handover_timeline",
]
