"""Network substrate: discrete-event packet simulation with geography.

This package stands in for the paper's measurement network (Azure VMs in
twelve regions, the public Internet between them, and a residential
access network for the mobile testbed).  It provides:

* :mod:`repro.net.geo` — locations and a great-circle latency model,
* :mod:`repro.net.regions` — the paper's Table 3 region registry,
* :mod:`repro.net.simulator` — the discrete-event engine,
* :mod:`repro.net.node` — hosts with ports, clocks and captures,
* :mod:`repro.net.link` — access links with serialisation and queueing,
* :mod:`repro.net.shaper` — token-bucket ingress shaping (tc/ifb),
* :mod:`repro.net.capture` — tcpdump-like packet capture,
* :mod:`repro.net.routing` — the fabric that moves packets between hosts.
"""

from .address import Address, EndpointKey
from .capture import CapturedPacket, Capture, Direction
from .clock import Clock, SyncedClockFactory
from .geo import GeoPoint, LatencyModel, great_circle_km
from .link import AccessLink
from .node import Host
from .packet import Packet, Protocol
from .regions import Region, RegionRegistry, default_registry
from .routing import Network
from .shaper import TokenBucketShaper
from .simulator import Simulator

__all__ = [
    "AccessLink",
    "Address",
    "Capture",
    "CapturedPacket",
    "Clock",
    "Direction",
    "EndpointKey",
    "GeoPoint",
    "Host",
    "LatencyModel",
    "Network",
    "Packet",
    "Protocol",
    "Region",
    "RegionRegistry",
    "Simulator",
    "SyncedClockFactory",
    "TokenBucketShaper",
    "default_registry",
    "great_circle_km",
]
