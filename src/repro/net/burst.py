"""Packet trains: the unit of work of the burst event core.

A :class:`PacketTrain` describes a homogeneous run of packets a sender
wants to emit on an arithmetic time grid -- the steady-state shape every
media streamer produces (paced video fragments, audio frame batches).
The network may accept a whole train in one array-level *burst commit*
(:meth:`~repro.net.routing.Network.transmit_train`), replacing hundreds
of heap events with a handful of numpy expressions, or refuse it
entirely, in which case the caller falls back to the exact per-packet
emission loop.

Acceptance is strictly all-or-nothing: a train is only taken in bulk
when the simulator can prove the vectorised arithmetic is bit-identical
to the per-packet cascade (stable fusion plan, quiet links, no queueing
interleave, no competing heap events inside the train's window).  That
contract is what lets burst mode default on without perturbing any
artifact -- see the equivalence suites.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .address import Address
from .packet import PacketKind


class PacketTrain:
    """A homogeneous run of packets on an arithmetic emission grid.

    Attributes:
        src: Source transport address (same for every packet).
        dst: Destination transport address (same for every packet).
        kind: Packet kind shared by the whole train.
        flow_id: Flow identifier shared by the whole train.
        times: Absolute emission times, one per packet, ascending.
        payload_sizes: Layer-7 payload byte counts, one per packet.
        payloads: Opaque per-packet payload objects (or ``None`` for
            size-modelled flows).
        seq_start: Per-flow sequence number of the first packet; packet
            ``i`` carries ``seq_start + i``.
    """

    __slots__ = ("src", "dst", "kind", "flow_id", "times",
                 "payload_sizes", "payloads", "seq_start")

    def __init__(
        self,
        src: Address,
        dst: Address,
        kind: PacketKind,
        flow_id: str,
        times: np.ndarray,
        payload_sizes: Sequence[int],
        payloads: Optional[List[Any]] = None,
        seq_start: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.flow_id = flow_id
        self.times = times
        self.payload_sizes = payload_sizes
        self.payloads = payloads
        self.seq_start = seq_start

    def __len__(self) -> int:
        return len(self.payload_sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketTrain({self.src}->{self.dst}, {self.kind.value}, "
            f"n={len(self.payload_sizes)}, flow={self.flow_id!r})"
        )
