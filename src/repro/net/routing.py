"""The network fabric: moves packets between hosts.

:class:`Network` ties the pieces together -- a simulator, a latency
model, an IP allocator and the set of hosts.  Transmitting a packet
walks the same pipeline a real packet would:

1. serialisation onto the sender's uplink (queueing behind earlier
   packets),
2. propagation across the wide area (geo distance, route inflation,
   per-packet jitter, optional random loss),
3. the receiver's ingress shaper, if a bandwidth cap is installed
   (Section 4.4's tc/ifb position) -- packets may be delayed or
   tail-dropped here,
4. serialisation on the receiver's downlink, then delivery to the
   bound port handler.

All randomness flows through one seeded generator, so experiments are
reproducible end to end (design goal D3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError, RoutingError
from .address import IpAllocator
from .clock import Clock, PERFECT_CLOCK
from .geo import GeoPoint, LatencyModel
from .link import AccessLink
from .node import Host
from .packet import Packet
from .simulator import Simulator


class Network:
    """A geographic packet network with attached hosts.

    Attributes:
        simulator: The event loop everything runs on.
        latency_model: Distance -> delay model for host pairs.
        base_loss_rate: Probability that any wide-area traversal loses
            the packet (independent of shaper drops).  Default 0: the
            paper's cloud paths are effectively loss-free at the rates
            measured; residential experiments may raise it.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency_model: Optional[LatencyModel] = None,
        rng: Optional[np.random.Generator] = None,
        base_loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= base_loss_rate < 1.0:
            raise ConfigurationError(f"loss rate out of range: {base_loss_rate}")
        self.simulator = simulator if simulator is not None else Simulator()
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.base_loss_rate = base_loss_rate
        self._hosts_by_ip: Dict[str, Host] = {}
        self._hosts_by_name: Dict[str, Host] = {}
        self._ip_allocator = IpAllocator()
        self.packets_lost = 0
        self.packets_shaper_dropped = 0
        self.packets_condition_lost = 0

    # ----------------------------------------------------------------- #
    # Topology.
    # ----------------------------------------------------------------- #

    def add_host(
        self,
        name: str,
        location: GeoPoint,
        link: Optional[AccessLink] = None,
        clock: Clock = PERFECT_CLOCK,
        tier: str = "client",
    ) -> Host:
        """Create a host, allocate it an address and attach it.

        Raises :class:`~repro.errors.ConfigurationError` on duplicate
        host names; experiments address hosts by name.
        """
        if name in self._hosts_by_name:
            raise ConfigurationError(f"duplicate host name: {name!r}")
        ip = self._ip_allocator.allocate(tier)
        host = Host(
            name=name,
            ip=ip,
            location=location,
            network=self,
            link=link,
            clock=clock,
        )
        self._hosts_by_ip[ip] = host
        self._hosts_by_name[name] = host
        return host

    def host_by_ip(self, ip: str) -> Host:
        """Look up a host by address."""
        try:
            return self._hosts_by_ip[ip]
        except KeyError:
            raise RoutingError(f"no host with ip {ip!r}") from None

    def host_by_name(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise RoutingError(f"no host named {name!r}") from None

    def hosts(self) -> list[Host]:
        """All attached hosts, in attach order."""
        return list(self._hosts_by_name.values())

    # ----------------------------------------------------------------- #
    # Transmission pipeline.
    # ----------------------------------------------------------------- #

    def transmit(self, packet: Packet) -> None:
        """Entry point used by :meth:`Host.send`."""
        source = self.host_by_ip(packet.src.ip)
        if packet.dst.ip not in self._hosts_by_ip:
            raise RoutingError(f"no route to {packet.dst.ip!r}")
        departure = source.link.reserve_uplink(self.simulator.now, packet.wire_bytes)
        self.simulator.schedule_at(departure, self._propagate, packet)

    def _propagate(self, packet: Packet) -> None:
        if self.base_loss_rate > 0 and self.rng.random() < self.base_loss_rate:
            self.packets_lost += 1
            return
        source = self.host_by_ip(packet.src.ip)
        destination = self.host_by_ip(packet.dst.ip)
        # Scripted egress loss (e.g. a handover outage at the sender's
        # access).  The draw only happens when a timeline has set a
        # loss rate, so static sessions consume no randomness here.
        if source.link.loss_rate > 0 and self.rng.random() < source.link.loss_rate:
            self.packets_condition_lost += 1
            return
        delay = self.one_way_delay(source, destination, sample_jitter=True)
        self.simulator.schedule(delay, self._arrive, packet, destination)

    def _arrive(self, packet: Packet, destination: Host) -> None:
        now = self.simulator.now
        # Scripted ingress loss, checked at arrival so packets already
        # in flight when a phase flips are dropped by the new regime.
        if (
            destination.link.loss_rate > 0
            and self.rng.random() < destination.link.loss_rate
        ):
            self.packets_condition_lost += 1
            return
        release = now
        shaper = destination.link.ingress_shaper
        if shaper is not None:
            shaped = shaper.submit(now, packet.wire_bytes)
            if shaped is None:
                self.packets_shaper_dropped += 1
                return
            release = shaped
        delivery = destination.link.reserve_downlink(release, packet.wire_bytes)
        self.simulator.schedule_at(delivery, destination.deliver, packet)

    # ----------------------------------------------------------------- #
    # Path properties.
    # ----------------------------------------------------------------- #

    def one_way_delay(
        self, a: Host, b: Host, sample_jitter: bool = False
    ) -> float:
        """One-way wide-area delay between two hosts.

        With ``sample_jitter`` a random per-packet jitter component is
        added, drawn from a gamma distribution (always positive, long
        tail) scaled by the latency model's jitter fraction.

        Scripted access conditions contribute too: each endpoint's
        link-level latency adder extends the path, and link-level
        jitter scales draw extra gamma components (both are exact
        no-ops -- no rng consumed -- while the adders are zero, which
        is what keeps static sessions bit-identical).
        """
        base = self.latency_model.one_way_delay_s(a.location, b.location)
        base += a.link.extra_latency_s + b.link.extra_latency_s
        if not sample_jitter:
            return base
        scale = self.latency_model.jitter_scale_s(a.location, b.location)
        if scale > 0:
            base += float(self.rng.gamma(shape=2.0, scale=scale / 2.0))
        for link in (a.link, b.link):
            if link.extra_jitter_s > 0:
                base += float(
                    self.rng.gamma(shape=2.0, scale=link.extra_jitter_s / 2.0)
                )
        return base

    def nominal_rtt(self, a: Host, b: Host) -> float:
        """Jitter-free round-trip time between two hosts."""
        return 2.0 * self.one_way_delay(a, b, sample_jitter=False)
